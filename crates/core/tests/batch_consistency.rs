//! The batching determinism net: cross-client online batching on the
//! reactor must change *when* inferences run, never *what* they
//! compute.
//!
//! Three properties are pinned down end to end, over real TCP against a
//! live [`ReactorServer`]:
//!
//! * **bit-for-bit identity** — N clients served through the batch
//!   coalescer reconstruct logits whose f64 bit patterns are identical
//!   to what the same inputs get from sequential, unbatched serving.
//!   This is the dealt protocol's determinism theorem surfacing at the
//!   serving layer: reconstruction cancels every mask, so the logits
//!   are an exact fixed-point function of the input alone — fusing the
//!   server's compute across members cannot perturb a single bit
//!   (DESIGN.md §10);
//! * **ledger exactness** — every batch member consumes exactly one
//!   pooled material set: the deployment-wide consumed total equals the
//!   client count, with nothing dealt inline;
//! * **drain serves, never sheds** — a partial batch still waiting for
//!   its window when the server drains is flushed and *served*: the
//!   queued clients get real logits, the drain flush shows in the
//!   metrics, and the active-connection gauge returns to zero.

use c2pi_core::reactor::{ReactorClient, ReactorConfig, ReactorServer};
use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
use c2pi_nn::Sequential;
use c2pi_pi::engine::{specs_of, PiConfig};
use c2pi_pi::{PiSession, SessionCore, SharedPiSession};
use c2pi_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_prefix() -> Sequential {
    let mut s = Sequential::new();
    s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
    s.push(Relu::new());
    s.push(MaxPool2d::new(2, 2));
    s
}

fn shared_session() -> SharedPiSession {
    PiSession::new(&specs_of(&tiny_prefix()), [1, 8, 8], PiConfig::default()).unwrap().into_shared()
}

fn server_core() -> Arc<SessionCore> {
    Arc::clone(shared_session().core())
}

fn inputs(n: usize) -> Vec<Tensor> {
    (0..n).map(|t| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 1000 + t as u64)).collect()
}

/// The f32 bit patterns of a logits tensor — the comparison that makes
/// "identical" mean identical, not approximately equal.
fn bits(logits: &Tensor) -> Vec<u32> {
    logits.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Satellite 1: N clients through the coalescer reconstruct logits
/// bit-for-bit identical to sequential unbatched serving of the same
/// inputs, and the ledger shows exactly N sets consumed either way.
///
/// Bit-identity is a claim about (input, material) pairs: the dealt
/// protocol's truncations make the reconstruction's low bits depend on
/// the masks, so member *i* must consume the *same* material set in
/// both runs. One worker and one shard make consumption follow the
/// serialized seed stream, and deposits are gated one at a time on the
/// `batch_pending` gauge so batch position equals request order.
#[test]
fn coalesced_logits_are_bit_identical_to_sequential_serving() {
    const N: usize = 4;
    let xs = inputs(N);
    let solo = ReactorConfig {
        workers: 1,
        shards: 1,
        queue_depth: 2 * N,
        pool_low: 0,
        pool_high: 0,
        ..Default::default()
    };

    // Reference: an unbatched reactor serves the inputs one at a time,
    // consuming material sets 0..N of the seed stream in order.
    let reference: Vec<Vec<u32>> = {
        let server = ReactorServer::bind(server_core(), "127.0.0.1:0", solo.clone()).unwrap();
        server.preprocess(N).unwrap();
        let client = ReactorClient::new(shared_session());
        let got: Vec<Vec<u32>> = xs
            .iter()
            .map(|x| {
                let r = client.infer(server.local_addr(), x).unwrap();
                assert_eq!(r.batch, 1, "unbatched serving must report solo runs");
                bits(&r.logits)
            })
            .collect();
        let ledger = server.pool().ledger();
        assert_eq!(ledger.consumed, N as u64);
        assert_eq!(ledger.generated_inline, 0);
        server.drain().unwrap();
        got
    };

    // Batched: the same inputs join one fused run of N. Client i is
    // released only after client i-1 is visibly queued in the
    // collector, so batch position i gets material set i — the exact
    // pairing the reference used. The Nth deposit fills the batch.
    let server = ReactorServer::bind(
        server_core(),
        "127.0.0.1:0",
        ReactorConfig { batch_window: Duration::from_secs(30), max_batch: N, ..solo },
    )
    .unwrap();
    server.preprocess(N).unwrap();
    let addr = server.local_addr();
    let session = shared_session();
    let batched: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            let session = session.clone();
            handles.push(scope.spawn(move || {
                let client = ReactorClient::new(session);
                let r = client.infer(addr, x).unwrap();
                assert_eq!(r.batch, N, "every member must report the fused batch size");
                bits(&r.logits)
            }));
            if i < N - 1 {
                let deadline = Instant::now() + Duration::from_secs(10);
                while server.metrics_snapshot().batch_pending < (i + 1) as u64 {
                    assert!(Instant::now() < deadline, "client {i} never reached the collector");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (batched, reference)) in batched.iter().zip(&reference).enumerate() {
        assert_eq!(batched, reference, "client {i}: fused logits must be bit-identical");
    }
    let ledger = server.pool().ledger();
    assert_eq!(ledger.consumed, N as u64, "one material set per member, exactly");
    assert_eq!(ledger.generated_inline, 0, "the reactor never deals inline");

    // Server-side bookkeeping trails the last client reply by a beat;
    // settle before asserting the counters.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics_snapshot().served < N as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.served, N as u64);
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.shed, 0, "nothing may be shed on the way into a fused run");
    assert_eq!(snap.batches, 1, "one fused run served the whole wave");
    assert_eq!(snap.coalesced, N as u64);
    assert_eq!(snap.flushes, (1, 0, 0), "the filling deposit flushed it, not the window");
    assert_eq!(snap.batch_size.sum_members, N as u64);
    assert_eq!(snap.batch_pending, 0);
    server.drain().unwrap();
}

/// Satellite 3: a partial batch still waiting for its window at drain
/// time is flushed and served — the admitted clients get real logits,
/// never a shed — and the active gauge returns to zero.
#[test]
fn drain_serves_the_partial_batch_instead_of_shedding_it() {
    const K: usize = 2;
    let xs = inputs(K);
    let server = ReactorServer::bind(
        server_core(),
        "127.0.0.1:0",
        ReactorConfig {
            workers: 2,
            pool_low: 0,
            pool_high: 0,
            // A window far longer than the test: only drain can flush.
            batch_window: Duration::from_secs(30),
            max_batch: 8,
            ..Default::default()
        },
    )
    .unwrap();
    server.preprocess(K).unwrap();
    let addr = server.local_addr();
    let session = shared_session();

    std::thread::scope(|scope| {
        let handles: Vec<_> = xs
            .iter()
            .map(|x| {
                let session = session.clone();
                scope.spawn(move || {
                    let client = ReactorClient::new(session);
                    let r = client.infer(addr, x).unwrap();
                    let plain = tiny_prefix().forward_eval(x).unwrap();
                    for (a, b) in r.logits.as_slice().iter().zip(plain.as_slice()) {
                        assert!((a - b).abs() < 0.02, "{a} vs {b}");
                    }
                })
            })
            .collect();
        // Let both requests reach the collector and queue (the window
        // is 30s; nothing else can flush them). Metrics-visible state:
        // both connections admitted, none served or shed yet.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = server.metrics_snapshot();
            if snap.active >= K as u64 || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(server.served(), 0, "the window must still be holding the batch");

        // Drain flushes the partial batch to a worker ahead of the
        // shutdown markers; both blocked clients complete.
        server.drain().unwrap();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// A concurrent wave bigger than any batch: every client is served
/// (stock covers the wave), flushes partition the wave without loss or
/// duplication, and the wave's logits all verify against the plaintext
/// model.
#[test]
fn a_32_client_wave_partitions_into_batches_without_loss() {
    const CLIENTS: usize = 32;
    let server = ReactorServer::bind(
        server_core(),
        "127.0.0.1:0",
        ReactorConfig {
            workers: 4,
            shards: 4,
            max_clients: 2 * CLIENTS,
            queue_depth: CLIENTS,
            pool_low: 0,
            pool_high: 0,
            batch_window: Duration::from_millis(250),
            max_batch: 4,
            ..Default::default()
        },
    )
    .unwrap();
    server.preprocess(CLIENTS).unwrap();
    let addr = server.local_addr();
    let session = shared_session();
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 77);
    let plain = tiny_prefix().forward_eval(&x).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let session = session.clone();
            let (x, plain) = (&x, &plain);
            scope.spawn(move || {
                let client = ReactorClient::new(session)
                    .with_connect_timeout(Duration::from_secs(60))
                    .with_retries(20);
                let r = client.infer(addr, x).unwrap();
                assert!(r.batch >= 1 && r.batch <= 4);
                for (a, b) in r.logits.as_slice().iter().zip(plain.as_slice()) {
                    assert!((a - b).abs() < 0.02, "{a} vs {b}");
                }
            });
        }
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut snap = server.metrics_snapshot();
    while (snap.served < CLIENTS as u64 || snap.active > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        snap = server.metrics_snapshot();
    }
    assert_eq!(snap.served, CLIENTS as u64, "every client of the wave served");
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.active, 0, "no connection leaks after the wave");
    // The flushes partition the wave: batch-size histogram members plus
    // solo serves account for every inference exactly once.
    assert!(snap.batches >= (CLIENTS / 4) as u64, "32 members at max_batch 4 need ≥ 8 flushes");
    assert_eq!(snap.batch_size.count, snap.batches);
    let consumed: u64 = snap.shards.iter().map(|s| s.consumed).sum();
    assert_eq!(consumed, CLIENTS as u64);
    server.drain().unwrap();
}
