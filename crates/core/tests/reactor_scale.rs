//! The event-driven reactor's scale and fairness net, run against BOTH
//! poller backends (epoll and peek on Linux, peek alone elsewhere) via
//! [`ReactorConfig::force_peek_poller`] — no environment races.
//!
//! * **scale** — ≥512 truly concurrent connections against one reactor
//!   still produce the *exact* serve/shed split (stock serves, the rest
//!   shed with typed `BUSY`), the active gauge returns to zero, and the
//!   poll metrics show which backend carried the wave;
//! * **accept-storm fairness** — a client whose request is already
//!   parked gets served promptly even while a burst of fresh
//!   connections hammers the listener: accepts are bounded per wakeup
//!   and parked clients' events are dispatched before each accept
//!   batch.

use c2pi_core::reactor::{ReactorClient, ReactorConfig, ReactorReply, ReactorServer};
use c2pi_core::C2piError;
use c2pi_nn::layers::{Conv2d, Relu};
use c2pi_nn::Sequential;
use c2pi_pi::engine::{specs_of, PiConfig};
use c2pi_pi::{PiSession, SessionCore, SharedPiSession};
use c2pi_tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_prefix() -> Sequential {
    let mut s = Sequential::new();
    s.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
    s.push(Relu::new());
    s
}

fn shared_session() -> SharedPiSession {
    PiSession::new(&specs_of(&tiny_prefix()), [1, 8, 8], PiConfig::default()).unwrap().into_shared()
}

fn server_core() -> Arc<SessionCore> {
    Arc::clone(shared_session().core())
}

/// Backend parameterization: `false` is the build's preferred backend
/// (epoll on Linux), `true` forces the portable peek scan. On non-Linux
/// both values resolve to peek; running the suite twice is then merely
/// redundant, not wrong.
const BACKENDS: [bool; 2] = [false, true];

/// The headline scale claim at 2× the in-module 256-client test, on
/// both backends: 512 concurrent connections split exactly into
/// `STOCK` serves and `512 - STOCK` typed sheds.
#[test]
fn reactor_sustains_512_concurrent_clients_on_both_backends() {
    const CLIENTS: usize = 512;
    const STOCK: usize = 16;
    for force_peek in BACKENDS {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 4,
                shards: 4,
                max_clients: 2 * CLIENTS,
                queue_depth: CLIENTS,
                pool_low: 0,
                pool_high: 0,
                force_peek_poller: force_peek,
                ..Default::default()
            },
        )
        .unwrap();
        let backend = server.metrics_snapshot().poll_backend;
        if force_peek {
            assert_eq!(backend, "peek", "force_peek_poller must pin the scanning backend");
        }
        let addr = server.local_addr();
        server.preprocess(STOCK).unwrap();
        let session = shared_session();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 11);
        let served = AtomicUsize::new(0);
        let busy = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let session = session.clone();
                let (served, busy, x) = (&served, &busy, &x);
                scope.spawn(move || {
                    let client =
                        ReactorClient::new(session).with_connect_timeout(Duration::from_secs(120));
                    match client.request(addr, x).unwrap() {
                        ReactorReply::Served(_) => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        ReactorReply::Busy { draining, .. } => {
                            assert!(!draining, "[{backend}] live server claimed to drain");
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), STOCK, "[{backend}] exact serve count");
        assert_eq!(busy.load(Ordering::Relaxed), CLIENTS - STOCK, "[{backend}] exact shed count");

        // Server-side bookkeeping trails the last client reply by a
        // beat; settle before asserting counters and the gauge.
        let deadline = Instant::now() + Duration::from_secs(10);
        let expect_shed = (CLIENTS - STOCK) as u64;
        let mut snap = server.metrics_snapshot();
        while (snap.served < STOCK as u64 || snap.shed < expect_shed || snap.active > 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
            snap = server.metrics_snapshot();
        }
        assert_eq!(snap.served, STOCK as u64, "[{backend}]");
        assert_eq!(snap.shed, expect_shed, "[{backend}]");
        assert_eq!(snap.errors, 0, "[{backend}] a full-capacity wave is not an error");
        assert_eq!(snap.active, 0, "[{backend}] no connection leaks after the wave");
        assert_eq!(snap.accepted, CLIENTS as u64, "[{backend}] every connection accepted");
        assert!(snap.poll_wakeups > 0, "[{backend}] the reactor woke at least once");
        assert!(
            snap.poll_events >= CLIENTS as u64,
            "[{backend}] every request frame arrived as a readiness event \
             (wakeups={} events={})",
            snap.poll_wakeups,
            snap.poll_events,
        );
        server.drain().unwrap();
    }
}

/// Accept-storm fairness, on both backends: a client already parked
/// when a 128-connection burst hits the listener is served within a
/// tight latency bound — the burst cannot starve it, because parked
/// clients' events are dispatched before each bounded accept batch.
#[test]
fn connect_burst_cannot_starve_a_parked_client() {
    const BURST: usize = 128;
    for force_peek in BACKENDS {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 2,
                max_clients: 4 * BURST,
                queue_depth: BURST,
                pool_low: 0,
                pool_high: 0,
                force_peek_poller: force_peek,
                ..Default::default()
            },
        )
        .unwrap();
        let backend = server.metrics_snapshot().poll_backend;
        let addr = server.local_addr();
        server.preprocess(1).unwrap();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 5);

        // Phase 1: connect the victim and let the reactor park it
        // (accepted counter moves) *before* its request is written.
        let victim = std::net::TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics_snapshot().accepted < 1 {
            assert!(Instant::now() < deadline, "[{backend}] victim never accepted");
            std::thread::sleep(Duration::from_millis(1));
        }

        // Phase 2: the storm — BURST connections that never speak, so
        // they occupy the listener backlog and then the parked set.
        // Meanwhile the victim sends its request and must be served.
        let storm: Vec<std::net::TcpStream> =
            (0..BURST).map(|_| std::net::TcpStream::connect(addr).unwrap()).collect();
        let start = Instant::now();
        let session = shared_session();
        let client = ReactorClient::new(session);
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    // Drive the dealt protocol over the already-parked
                    // victim socket by hand: REQ, then the session run.
                    use c2pi_transport::{Channel, Side, TcpChannel};
                    let ch = TcpChannel::from_stream(victim, Side::Client).unwrap();
                    ch.send_bytes(b"C2PQ\x02\x01").unwrap();
                    let reply = ch.recv_bytes().unwrap();
                    assert_eq!(reply, vec![1], "[{backend}] victim admitted solo");
                    let outcome = client.session().request_one(&ch, &x).unwrap();
                    let server_share = c2pi_mpc::share::ShareVec::from_raw(ch.recv_u64s().unwrap());
                    let _ = c2pi_mpc::share::reconstruct(&outcome.share, &server_share);
                    start.elapsed()
                })
                .join()
                .unwrap()
        });
        // Generous wall-clock bound (protocol included), but far below
        // what a starved victim would need: an unbounded accept loop
        // over 128 sockets plus their parking would push the victim's
        // dispatch behind the whole storm.
        assert!(
            result < Duration::from_secs(10),
            "[{backend}] parked victim served in {result:?} despite the burst"
        );
        drop(storm);
        server.drain().unwrap();
    }
}

/// Both backends serve correct logits end to end through the exact
/// same `ReactorClient` path, and report themselves in the STATS
/// exposition.
#[test]
fn both_backends_serve_identical_protocol_results() {
    use c2pi_core::reactor::metrics::metric_value;
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 21);
    let plain = tiny_prefix().forward_eval(&x).unwrap();
    for force_peek in BACKENDS {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 2,
                pool_low: 0,
                pool_high: 0,
                force_peek_poller: force_peek,
                ..Default::default()
            },
        )
        .unwrap();
        server.preprocess(1).unwrap();
        let client = ReactorClient::new(shared_session());
        let got = client.infer(server.local_addr(), &x).unwrap();
        for (a, b) in got.logits.as_slice().iter().zip(plain.as_slice()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
        let backend = server.metrics_snapshot().poll_backend;
        let text = client.stats(server.local_addr()).unwrap();
        assert_eq!(
            metric_value(&text, &format!("c2pi_poll_backend{{backend=\"{backend}\"}}")),
            Some(1.0),
            "[{backend}] exposition names the active backend"
        );
        assert!(metric_value(&text, "c2pi_poll_wakeups_total").unwrap() >= 1.0);
        assert!(metric_value(&text, "c2pi_poll_events_total").unwrap() >= 1.0);
        // A served + a stats connection: at least two readiness events.
        server.drain().unwrap();
    }
    // On Linux the two passes genuinely covered epoll and peek; make
    // the default explicit so a regression to peek-by-default fails
    // loudly rather than silently halving the coverage.
    #[cfg(target_os = "linux")]
    {
        let server =
            ReactorServer::bind(server_core(), "127.0.0.1:0", ReactorConfig::default()).unwrap();
        assert_eq!(server.metrics_snapshot().poll_backend, "epoll");
        server.drain().unwrap();
    }
}

/// Draining with clients still parked sheds them with a typed
/// `draining` BUSY on both backends (the drain path walks the poller's
/// parked set).
#[test]
fn drain_sheds_parked_clients_with_typed_busy_on_both_backends() {
    for force_peek in BACKENDS {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 1,
                pool_low: 0,
                pool_high: 0,
                force_peek_poller: force_peek,
                ..Default::default()
            },
        )
        .unwrap();
        let backend = server.metrics_snapshot().poll_backend;
        let addr = server.local_addr();
        // Park a silent connection, then drain under it.
        let parked = std::net::TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics_snapshot().accepted < 1 {
            assert!(Instant::now() < deadline, "[{backend}] connection never accepted");
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::scope(|scope| {
            let reader = scope.spawn(move || {
                use c2pi_transport::{Channel, Side, TcpChannel};
                let ch = TcpChannel::from_stream(parked, Side::Client).unwrap();
                ch.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                ch.recv_bytes().unwrap()
            });
            server.drain().unwrap();
            let frame = reader.join().unwrap();
            assert_eq!(frame[0], 2, "[{backend}] BUSY tag");
            assert_eq!(frame[5], 1, "[{backend}] draining flag set");
        });
        // And a retrying client maps that to Overloaded{draining}.
        let client = ReactorClient::new(shared_session());
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        match client.infer(addr, &x) {
            Err(C2piError::Overloaded { .. }) | Err(_) => {}
            Ok(_) => panic!("[{backend}] drained server must not serve"),
        }
    }
}
