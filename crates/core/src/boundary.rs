//! Algorithm 1 — crypto-clear boundary searching.
//!
//! Phase 1 sweeps the candidate boundaries from the tail of the model
//! toward the head, attacking each with the supplied IDPA, and stops at
//! the last layer where the attack still succeeds; the candidate after
//! it is the potential boundary. Phase 2 then verifies that adding the
//! defense noise at the boundary keeps accuracy within the agreed
//! budget, pushing the boundary later until it does.
//!
//! [`search_boundary`] is the original single-attack entry point, kept
//! as a deprecated shim: the walk itself now lives in
//! [`crate::planner`], which generalises it to configurable probe
//! panels, arbitrary defenses and cost-ranked deployments. New code
//! should build a [`crate::planner::DeploymentPlanner`].

use crate::defense::Defense;
use crate::planner::{gate_accuracy, probe_one, ProbeGate};
use crate::{C2piError, Result};
use c2pi_attacks::Idpa;
use c2pi_data::Dataset;
use c2pi_nn::{BoundaryId, Model};
use serde::{Deserialize, Serialize};

/// Boundary-search parameters (the inputs of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryConfig {
    /// SSIM failure threshold `σ` (0.3 in the paper's main results, 0.2
    /// for the stricter Table I column).
    pub ssim_threshold: f32,
    /// Maximum tolerated accuracy drop `δ` relative to baseline (the
    /// paper uses 2.5%).
    pub max_accuracy_drop: f32,
    /// Defense noise magnitude `λ` (0.1 in the paper's experiments).
    pub noise: f32,
    /// Number of images used per attack evaluation.
    pub eval_images: usize,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for BoundaryConfig {
    fn default() -> Self {
        BoundaryConfig {
            ssim_threshold: 0.3,
            max_accuracy_drop: 0.025,
            noise: 0.1,
            eval_images: 8,
            seed: 47,
        }
    }
}

/// One phase-1 probe: the attack's average SSIM at a candidate boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsimProbe {
    /// Candidate boundary.
    pub id: BoundaryId,
    /// Average SSIM the IDPA achieved there.
    pub avg_ssim: f32,
}

/// One phase-2 probe: noised accuracy at a candidate boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyProbe {
    /// Candidate boundary.
    pub id: BoundaryId,
    /// Accuracy with noise injected at this boundary.
    pub accuracy: f32,
}

/// Full record of a boundary search (the raw material of Figure 8 and
/// Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundaryTrace {
    /// Phase-1 probes, in the (tail-to-head) order they were taken.
    pub ssim_probes: Vec<SsimProbe>,
    /// Phase-2 probes, in the (head-to-tail) order they were taken.
    pub accuracy_probes: Vec<AccuracyProbe>,
    /// Noise-free baseline accuracy.
    pub baseline_accuracy: f32,
    /// The returned boundary layer.
    pub boundary: BoundaryId,
    /// Noised accuracy at the returned boundary.
    pub boundary_accuracy: f32,
    /// The defense phase 2 evaluated (recorded so downstream reports
    /// carry the same label the evaluation used).
    pub defense: Defense,
    /// Master seed of the defense draws (the
    /// [`crate::defense::defense_seed`] stream).
    pub seed: u64,
}

/// Runs Algorithm 1 over the given candidate boundaries (defaults to the
/// post-ReLU cut of every convolution when `candidates` is empty).
///
/// `attacker_data` trains the IDPA (the server's own data); `eval_data`
/// measures recovery SSIM and accuracy.
///
/// The walk is the planner's single-probe machinery with the paper's
/// uniform-noise defense; build a
/// [`crate::planner::DeploymentPlanner`] to sweep probe *panels* and
/// get cost-ranked deployments instead of a bare boundary.
///
/// # Errors
///
/// Returns an error when the model has no candidates, datasets are
/// empty, or the attack fails.
#[deprecated(
    since = "0.3.0",
    note = "use `c2pi_core::planner::DeploymentPlanner`, which generalises this walk \
            to probe panels and cost-ranked deployments"
)]
pub fn search_boundary(
    model: &mut Model,
    attack: &mut dyn Idpa,
    attacker_data: &Dataset,
    eval_data: &Dataset,
    candidates: &[BoundaryId],
    cfg: &BoundaryConfig,
) -> Result<BoundaryTrace> {
    let candidates: Vec<BoundaryId> = if candidates.is_empty() {
        (1..=model.num_convs()).map(BoundaryId::relu).collect()
    } else {
        candidates.to_vec()
    };
    if candidates.is_empty() {
        return Err(C2piError::NoBoundary("model has no candidate boundaries".into()));
    }
    let defense = Defense::Uniform { magnitude: cfg.noise };
    // ---- Phase 1 (lines 1-6): sweep from the tail until the attack
    // succeeds (avg_ssim >= sigma). ----
    let (ssim_probes, first_safe) = probe_one(
        model,
        attack,
        attacker_data,
        eval_data,
        &candidates,
        ProbeGate {
            defense,
            ssim_threshold: cfg.ssim_threshold,
            eval_images: cfg.eval_images,
            seed: cfg.seed,
        },
    )?;
    // Attack succeeding even at the tail degenerates to (almost) full
    // PI, as in the original algorithm.
    let b_idx = first_safe.unwrap_or(candidates.len() - 1);
    // ---- Phase 2 (lines 8-12): push later until accuracy is OK. ----
    let (baseline, accuracy_probes, chosen_idx, acc) = gate_accuracy(
        model,
        &candidates,
        b_idx,
        defense,
        cfg.max_accuracy_drop,
        eval_data,
        cfg.seed,
    )?;
    Ok(BoundaryTrace {
        ssim_probes,
        accuracy_probes,
        baseline_accuracy: baseline,
        boundary: candidates[chosen_idx],
        boundary_accuracy: acc,
        defense,
        seed: cfg.seed,
    })
}

#[cfg(test)]
#[allow(deprecated)] // the shim's behaviour contract is what's under test
mod tests {
    use super::*;
    use c2pi_attacks::Result as AttackResult;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};
    use c2pi_tensor::Tensor;

    /// A scripted fake IDPA: returns a reconstruction whose SSIM is high
    /// for conv ids below `succeeds_until` and pure noise afterwards —
    /// lets us test Algorithm 1's control flow deterministically.
    struct ScriptedAttack {
        succeeds_until: usize,
        probes: Vec<usize>,
        reference: Tensor,
    }

    impl Idpa for ScriptedAttack {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn prepare(
            &mut self,
            _model: &mut Model,
            id: BoundaryId,
            _train: &Dataset,
            _noise: f32,
        ) -> AttackResult<()> {
            self.probes.push(id.conv_id);
            Ok(())
        }
        fn recover(
            &mut self,
            model: &mut Model,
            id: BoundaryId,
            _activation: &Tensor,
        ) -> AttackResult<Tensor> {
            let [c, h, w] = model.input_shape();
            if id.conv_id <= self.succeeds_until {
                // "Perfect" recovery: return a structured image close to
                // the dataset's first image so SSIM is high.
                Ok(self.reference.clone())
            } else {
                Ok(Tensor::rand_uniform(&[1, c, h, w], 0.0, 1.0, 999 + id.conv_id as u64))
            }
        }
    }

    impl ScriptedAttack {
        fn new(succeeds_until: usize, reference: Tensor) -> Self {
            ScriptedAttack { succeeds_until, probes: Vec::new(), reference }
        }
    }

    fn setup() -> (Model, Dataset) {
        let model = alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap();
        let data = SynthDataset::generate(&SynthConfig {
            classes: 3,
            per_class: 3,
            pixel_noise: 0.02,
            ..Default::default()
        })
        .into_dataset();
        (model, data)
    }

    #[test]
    fn phase1_stops_at_first_success_from_tail() {
        let (mut model, data) = setup();
        let reference = data.images()[0].clone();
        let mut attack = ScriptedAttack::new(4, reference);
        let cfg = BoundaryConfig {
            eval_images: 1,
            noise: 0.0,
            max_accuracy_drop: 1.0, // accept any accuracy: isolate phase 1
            ..Default::default()
        };
        let trace = search_boundary(&mut model, &mut attack, &data, &data, &[], &cfg).unwrap();
        // Attack succeeds through conv 4 => boundary is conv 5's relu.
        assert_eq!(trace.boundary, BoundaryId::relu(5));
        // Phase 1 probed from the tail (7) down to 4.
        assert_eq!(attack.probes, vec![7, 6, 5, 4]);
        assert_eq!(trace.ssim_probes.len(), 4);
        // The trace records the defense and seed the walk evaluated.
        assert_eq!(trace.defense, Defense::Uniform { magnitude: cfg.noise });
        assert_eq!(trace.seed, cfg.seed);
    }

    #[test]
    fn attack_that_never_succeeds_yields_earliest_boundary() {
        let (mut model, data) = setup();
        let reference = data.images()[0].clone();
        let mut attack = ScriptedAttack::new(0, reference);
        let cfg = BoundaryConfig {
            eval_images: 1,
            noise: 0.0,
            max_accuracy_drop: 1.0,
            ..Default::default()
        };
        let trace = search_boundary(&mut model, &mut attack, &data, &data, &[], &cfg).unwrap();
        assert_eq!(trace.boundary, BoundaryId::relu(1));
    }

    #[test]
    fn attack_succeeding_everywhere_pushes_boundary_to_tail() {
        let (mut model, data) = setup();
        let reference = data.images()[0].clone();
        let mut attack = ScriptedAttack::new(99, reference);
        let cfg = BoundaryConfig {
            eval_images: 1,
            noise: 0.0,
            max_accuracy_drop: 1.0,
            ..Default::default()
        };
        let trace = search_boundary(&mut model, &mut attack, &data, &data, &[], &cfg).unwrap();
        assert_eq!(trace.boundary, BoundaryId::relu(7)); // degenerates to full PI
        assert_eq!(trace.ssim_probes.len(), 1); // stopped immediately
    }

    #[test]
    fn phase2_pushes_boundary_when_accuracy_tanked() {
        let (mut model, data) = setup();
        let reference = data.images()[0].clone();
        let mut attack = ScriptedAttack::new(2, reference);
        // Huge noise destroys accuracy everywhere; impossible drop budget
        // of -1 (target above baseline) forces phase 2 to walk to the
        // tail.
        let cfg = BoundaryConfig {
            eval_images: 2,
            noise: 100.0,
            max_accuracy_drop: -1.0,
            ..Default::default()
        };
        let trace = search_boundary(&mut model, &mut attack, &data, &data, &[], &cfg).unwrap();
        assert_eq!(trace.boundary, BoundaryId::relu(7));
        assert!(trace.accuracy_probes.len() >= 2);
    }

    #[test]
    fn explicit_candidates_are_respected() {
        let (mut model, data) = setup();
        let reference = data.images()[0].clone();
        let mut attack = ScriptedAttack::new(0, reference);
        let cands = vec![BoundaryId::relu(2), BoundaryId::relu(5)];
        let cfg = BoundaryConfig {
            eval_images: 1,
            noise: 0.0,
            max_accuracy_drop: 1.0,
            ..Default::default()
        };
        let trace = search_boundary(&mut model, &mut attack, &data, &data, &cands, &cfg).unwrap();
        assert_eq!(trace.boundary, BoundaryId::relu(2));
    }
}
