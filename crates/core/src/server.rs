//! Concurrent multi-client PI serving: a TCP accept loop over one
//! shared session.
//!
//! [`PiServer`] is the serving layer the paper implies but never builds:
//! many concurrent online inferences drawing from **one** shared
//! material pool that a background dealer keeps topped up. Thread map,
//! in paper phases:
//!
//! * the **accept thread** does no cryptography — it hands each
//!   connection to a worker, bounded by
//!   [`PiServerConfig::worker_cap`];
//! * each **worker thread** runs the *online phase* server party
//!   ([`SharedPiSession::serve_one`]): it takes one material set from
//!   the shared [`c2pi_pi::MaterialPool`], deals the set's seed to the
//!   client (the trusted-dealer stand-in delivering the client's half),
//!   runs the interactive protocol, and reveals the server's share of
//!   the result;
//! * the **replenisher thread** runs the *offline phase*
//!   ([`c2pi_pi::Replenisher`]): input-independent correlated-randomness
//!   generation whenever the pool falls below
//!   [`PiServerConfig::pool_low`], refilled to
//!   [`PiServerConfig::pool_high`].
//!
//! [`PiClient`] is the matching one-call client: connect, receive the
//! dealt seed, run the client party, reconstruct the prediction from
//! the revealed share.
//!
//! ```no_run
//! use c2pi_core::server::{PiClient, PiServer, PiServerConfig};
//! use c2pi_nn::layers::{Conv2d, Relu};
//! use c2pi_nn::Sequential;
//! use c2pi_pi::engine::{specs_of, PiConfig};
//! use c2pi_pi::PiSession;
//! use c2pi_tensor::Tensor;
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! let mut prefix = Sequential::new();
//! prefix.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
//! prefix.push(Relu::new());
//! let session =
//!     PiSession::new(&specs_of(&prefix), [1, 8, 8], PiConfig::default())?.into_shared();
//! // Bind port 0: the kernel picks a free port, no fixed-port races.
//! let server = PiServer::bind(session.clone(), "127.0.0.1:0", PiServerConfig::default())?;
//! let addr = server.local_addr();
//!
//! // Any number of clients, from this or another process:
//! let client = PiClient::new(session); // identical specs + config
//! let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 1);
//! let result = client.infer(addr, &x)?;
//! println!("prediction {}", result.prediction);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::{C2piError, Result};
use c2pi_pi::{PartyOutcome, RestoreReport, SharedPiSession};
use c2pi_tensor::Tensor;
use c2pi_transport::{Channel, Side, TcpChannel, TcpListenerTransport};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of a [`PiServer`].
#[derive(Debug, Clone)]
pub struct PiServerConfig {
    /// Maximum connections served concurrently; further accepts queue
    /// until a worker finishes. Size this to the machine's cores — each
    /// worker runs one online protocol party.
    pub worker_cap: usize,
    /// Low watermark: when pooled material drops below this, the
    /// background replenisher wakes up. `0` disables replenishment
    /// (every pool miss then pays the dealer inline, visible in the
    /// ledger).
    pub pool_low: usize,
    /// High watermark the replenisher refills to.
    pub pool_high: usize,
    /// Per-read timeout on client connections. A stalled or malicious
    /// client that connects and goes silent would otherwise occupy a
    /// worker slot (and one consumed material set) forever; after this
    /// long without a frame the worker errors out and frees its slot.
    pub client_timeout: Duration,
    /// Path of the persistent [`c2pi_pi::MaterialStore`]. When set,
    /// [`PiServer::bind`] warm-boots the pool from whatever a previous
    /// process left there (restored sets are served without
    /// re-preprocessing), every deal/consume is persisted from then on,
    /// and a graceful shutdown flushes the log. `None` (default) keeps
    /// the pool in memory only.
    pub persist_path: Option<PathBuf>,
}

impl Default for PiServerConfig {
    fn default() -> Self {
        PiServerConfig {
            worker_cap: 4,
            pool_low: 2,
            pool_high: 8,
            client_timeout: Duration::from_secs(60),
            persist_path: None,
        }
    }
}

/// Counting semaphore bounding concurrent workers.
struct WorkerSlots {
    free: Mutex<usize>,
    freed: Condvar,
}

impl WorkerSlots {
    fn new(cap: usize) -> Self {
        WorkerSlots { free: Mutex::new(cap.max(1)), freed: Condvar::new() }
    }

    fn acquire(&self) {
        let mut free = self.free.lock().expect("worker slot mutex poisoned");
        while *free == 0 {
            free = self.freed.wait(free).expect("worker slot mutex poisoned");
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().expect("worker slot mutex poisoned") += 1;
        self.freed.notify_one();
    }
}

/// A running multi-client PI server: accept loop + bounded workers +
/// background pool replenisher over one [`SharedPiSession`]. See the
/// [module docs](crate::server) for the thread/phase map.
#[derive(Debug)]
pub struct PiServer {
    addr: SocketAddr,
    session: SharedPiSession,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    accept_handle: Option<JoinHandle<()>>,
    replenisher: Option<c2pi_pi::Replenisher>,
    warm_boot: Option<RestoreReport>,
}

impl PiServer {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back
    /// with [`PiServer::local_addr`]) and starts the accept loop plus,
    /// when `cfg.pool_low > 0`, the background replenisher.
    ///
    /// When `cfg.persist_path` is set, the pool's [`c2pi_pi::MaterialStore`]
    /// is attached first: the pool warm-boots from whatever a previous
    /// process persisted (summary in [`PiServer::warm_boot`]) before any
    /// replenishment or serving starts.
    ///
    /// # Errors
    ///
    /// Returns transport errors when binding fails, and store errors
    /// (I/O, corruption, a file from a different deployment) when the
    /// persistence path cannot be attached.
    pub fn bind(
        session: SharedPiSession,
        addr: impl ToSocketAddrs,
        cfg: PiServerConfig,
    ) -> Result<Self> {
        let warm_boot = match &cfg.persist_path {
            Some(path) => Some(session.pool().attach_store(path).map_err(C2piError::Pi)?),
            None => None,
        };
        let listener = TcpListenerTransport::bind(addr).map_err(|e| C2piError::Pi(e.into()))?;
        let addr = listener.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let replenisher =
            (cfg.pool_low > 0).then(|| session.spawn_replenisher(cfg.pool_low, cfg.pool_high));
        let accept_session = session.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_served = Arc::clone(&served);
        let accept_errors = Arc::clone(&errors);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(
                &listener,
                &accept_session,
                cfg,
                &accept_shutdown,
                &accept_served,
                &accept_errors,
            );
        });
        Ok(PiServer {
            addr,
            session,
            shutdown,
            served,
            errors,
            accept_handle: Some(accept_handle),
            replenisher,
            warm_boot,
        })
    }

    /// What the warm boot from `cfg.persist_path` restored; `None` when
    /// the server runs without persistence.
    pub fn warm_boot(&self) -> Option<&RestoreReport> {
        self.warm_boot.as_ref()
    }

    /// The actually-bound address (real port even for a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The actually-bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The shared session this server serves (same pool and ledger).
    pub fn session(&self) -> &SharedPiSession {
        &self.session
    }

    /// Inferences served successfully so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Connections that ended in an error (protocol, transport or a
    /// client gone away mid-inference).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains in-flight workers, joins the accept loop
    /// and stops the replenisher. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Idempotent: an explicit shutdown() is followed by Drop, and
        // the wake-up connect must not run again against a port the
        // listener has already released.
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept call with a throwaway connection. An
        // unspecified bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so aim the wake-up at loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let woke = TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok();
        if let Some(handle) = self.accept_handle.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake-up could not connect, leak the accept thread
            // rather than deadlock shutdown; it exits on its next
            // accepted connection.
        }
        // Dropping the replenisher stops and joins its thread.
        self.replenisher.take();
        // Graceful drain: flush the persistent store so the unconsumed
        // material survives the restart with a durable final snapshot.
        // Best-effort — shutdown must not fail on a full disk.
        let _ = self.session.pool().flush_store();
    }
}

impl Drop for PiServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListenerTransport,
    session: &SharedPiSession,
    cfg: PiServerConfig,
    shutdown: &Arc<AtomicBool>,
    served: &Arc<AtomicU64>,
    errors: &Arc<AtomicU64>,
) {
    let slots = Arc::new(WorkerSlots::new(cfg.worker_cap));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let ch = match listener.accept(Side::Server) {
            _ if shutdown.load(Ordering::SeqCst) => break,
            Ok(ch) => ch,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                errors.fetch_add(1, Ordering::SeqCst);
                // Back off: a persistent accept failure (e.g. fd
                // exhaustion) must not busy-spin a core.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // A silent client must not hold a worker slot (and a consumed
        // material set) forever — in either direction: reads stall when
        // the client stops sending, writes when it stops draining.
        if ch.set_read_timeout(Some(cfg.client_timeout)).is_err()
            || ch.set_write_timeout(Some(cfg.client_timeout)).is_err()
        {
            errors.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        slots.acquire();
        let session = session.clone();
        let slots_worker = Arc::clone(&slots);
        let served = Arc::clone(served);
        let errors = Arc::clone(errors);
        workers.push(std::thread::spawn(move || {
            match serve_connection(&session, &ch) {
                Ok(_) => served.fetch_add(1, Ordering::SeqCst),
                Err(_) => errors.fetch_add(1, Ordering::SeqCst),
            };
            slots_worker.release();
        }));
        // Reap finished workers so the vector stays bounded.
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// One worker's whole job: online server party plus the full-PI reveal
/// (the server sends its share, so only the client learns the result).
fn serve_connection(session: &SharedPiSession, ch: &TcpChannel) -> Result<PartyOutcome> {
    let outcome = session.serve_one(ch).map_err(C2piError::Pi)?;
    ch.send_u64s(outcome.share.as_raw()).map_err(|e| C2piError::Pi(e.into()))?;
    Ok(outcome)
}

/// Result of one [`PiClient`] request: the reconstructed logits of the
/// crypto prefix, the argmax prediction, and the client party's cost
/// report.
#[derive(Debug, Clone)]
pub struct ClientInference {
    /// Reconstructed boundary activation (the logits under full PI).
    pub logits: Tensor,
    /// `argmax` of the logits.
    pub prediction: usize,
    /// How many clients shared the fused protocol run that served this
    /// inference. `1` everywhere except a coalescing
    /// [`crate::reactor::ReactorServer`], which reports the batch size
    /// from its `OK` frame.
    pub batch: usize,
    /// The client party's outcome (share, dims, report).
    pub outcome: PartyOutcome,
}

/// The client side of the dealt serving contract: connects to a
/// [`PiServer`], runs one online inference per call, reconstructs the
/// result from the server's revealed share.
///
/// Must be built over a session compiled from **identical** specs and
/// configuration as the server's (only the per-inference seed travels
/// on the wire). Cloneable and `&self` throughout — one `PiClient` can
/// drive many threads of concurrent requests.
#[derive(Debug, Clone)]
pub struct PiClient {
    session: SharedPiSession,
    connect_timeout: Duration,
}

impl PiClient {
    /// Wraps a shared session compiled identically to the server's.
    pub fn new(session: SharedPiSession) -> Self {
        PiClient { session, connect_timeout: Duration::from_secs(10) }
    }

    /// How long [`PiClient::infer`] keeps retrying the TCP connect
    /// (covers server processes still racing to bind).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// The wrapped session.
    pub fn session(&self) -> &SharedPiSession {
        &self.session
    }

    /// Runs one private inference against the server at `addr`:
    /// connect, receive the dealt seed, run the client party, receive
    /// the revealed server share, reconstruct.
    ///
    /// # Errors
    ///
    /// Returns transport errors (server unreachable, connection lost)
    /// and the engine/shape errors of the client party.
    pub fn infer(&self, addr: impl ToSocketAddrs + Clone, x: &Tensor) -> Result<ClientInference> {
        let ch = TcpChannel::connect_retry(addr, Side::Client, self.connect_timeout)
            .map_err(|e| C2piError::Pi(e.into()))?;
        let outcome = self.session.request_one(&ch, x).map_err(C2piError::Pi)?;
        let server_share = c2pi_mpc::share::ShareVec::from_raw(
            ch.recv_u64s().map_err(|e| C2piError::Pi(e.into()))?,
        );
        let raw = c2pi_mpc::share::reconstruct(&outcome.share, &server_share);
        let fp = self.session.config().fixed;
        let logits = fp.decode_tensor(&raw, &outcome.dims).map_err(C2piError::Tensor)?;
        let prediction = logits.argmax().unwrap_or(0);
        Ok(ClientInference { logits, prediction, batch: 1, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
    use c2pi_nn::Sequential;
    use c2pi_pi::engine::{specs_of, PiConfig};
    use c2pi_pi::PiSession;

    fn tiny_prefix() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s
    }

    fn shared_session() -> SharedPiSession {
        PiSession::new(&specs_of(&tiny_prefix()), [1, 8, 8], PiConfig::default())
            .unwrap()
            .into_shared()
    }

    #[test]
    fn server_serves_concurrent_clients_with_correct_predictions() {
        let serve_session = shared_session();
        serve_session.preprocess(2).unwrap();
        let server = PiServer::bind(
            serve_session,
            "127.0.0.1:0",
            PiServerConfig { worker_cap: 3, pool_low: 2, pool_high: 6, ..Default::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        let clients = 3;
        let iters = 2;
        std::thread::scope(|scope| {
            for t in 0..clients {
                scope.spawn(move || {
                    let client = PiClient::new(shared_session());
                    for i in 0..iters {
                        let x =
                            Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, (100 * t + i) as u64);
                        let got = client.infer(addr, &x).unwrap();
                        let plain = tiny_prefix().forward_eval(&x).unwrap();
                        for (a, b) in got.logits.as_slice().iter().zip(plain.as_slice()) {
                            assert!((a - b).abs() < 0.02, "{a} vs {b}");
                        }
                    }
                });
            }
        });
        // The served counter trails each client's last byte by a beat;
        // settle before asserting.
        let want = (clients * iters) as u64;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.served() < want && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.served(), want);
        assert_eq!(server.errors(), 0);
        let ledger = server.session().ledger();
        assert_eq!(ledger.consumed, (clients * iters) as u64);
        assert_eq!(
            ledger.generated_offline + ledger.generated_inline,
            ledger.consumed + ledger.available
        );
        server.shutdown();
    }

    #[test]
    fn server_shutdown_is_idempotent_and_port_is_ephemeral() {
        let session = shared_session();
        let server = PiServer::bind(session, "127.0.0.1:0", PiServerConfig::default()).unwrap();
        assert_ne!(server.port(), 0);
        assert_eq!(server.served(), 0);
        server.shutdown(); // explicit shutdown; Drop must cope with it too
    }

    #[test]
    fn silent_client_times_out_and_frees_the_worker() {
        let session = shared_session();
        session.preprocess(2).unwrap();
        let server = PiServer::bind(
            session,
            "127.0.0.1:0",
            PiServerConfig {
                worker_cap: 1,
                pool_low: 0,
                pool_high: 0,
                client_timeout: Duration::from_millis(200),
                persist_path: None,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        // A raw connection that never sends a frame: it receives the
        // dealt seed, then goes silent.
        let _silent = std::net::TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.errors() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.errors(), 1, "silent client must time out");
        // The freed worker slot serves a real client afterwards. The
        // client can observe its result before the worker thread bumps
        // the counter (the reveal is the last protocol frame), so poll
        // rather than assert immediately.
        let client = PiClient::new(shared_session());
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 7);
        client.infer(addr, &x).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.served() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.served(), 1);
        server.shutdown();
    }

    #[test]
    fn server_warm_boots_from_persisted_store_without_repreprocessing() {
        let path =
            std::env::temp_dir().join(format!("c2pi-server-warmboot-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = PiServerConfig {
            worker_cap: 2,
            pool_low: 0,
            pool_high: 0,
            persist_path: Some(path.clone()),
            ..Default::default()
        };
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 55);

        // First life: bind (attaches the store), preprocess 3, serve 1,
        // graceful shutdown (flushes).
        {
            let session = shared_session();
            let server = PiServer::bind(session.clone(), "127.0.0.1:0", cfg.clone()).unwrap();
            assert_eq!(server.warm_boot().unwrap().restored, 0);
            session.preprocess(3).unwrap();
            let client = PiClient::new(shared_session());
            client.infer(server.local_addr(), &x).unwrap();
            server.shutdown();
        }

        // Second life: same deployment, same path — the two unconsumed
        // sets must come back and serve without any new generation.
        let session = shared_session();
        let server = PiServer::bind(session.clone(), "127.0.0.1:0", cfg).unwrap();
        let boot = server.warm_boot().unwrap();
        assert_eq!(boot.restored, 2, "unconsumed material survives the restart");
        let client = PiClient::new(shared_session());
        client.infer(server.local_addr(), &x).unwrap();
        client.infer(server.local_addr(), &x).unwrap();
        let ledger = session.ledger();
        assert_eq!(ledger.generated_offline, 3, "never re-preprocessed");
        assert_eq!(ledger.generated_inline, 0, "restored sets covered all serving");
        assert_eq!(ledger.consumed, 3);
        assert_eq!(ledger.restored, 2);
        assert_eq!(
            ledger.generated_offline + ledger.generated_inline,
            ledger.consumed + ledger.available
        );
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn client_surfaces_unreachable_server() {
        let client =
            PiClient::new(shared_session()).with_connect_timeout(Duration::from_millis(200));
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        // A bound-then-dropped listener guarantees a dead port.
        let addr = {
            let l = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
            l.local_addr()
        };
        assert!(client.infer(addr, &x).is_err());
    }
}
