//! # c2pi-core
//!
//! The paper's primary contribution: **C2PI**, crypto-clear two-party
//! private inference.
//!
//! * [`planner`] — the deployment planner: generalises Algorithm 1 to
//!   a configurable IDPA probe panel, prices every allowed boundary ×
//!   backend under mem/LAN/WAN network models, and emits a ranked
//!   [`planner::DeploymentPlan`] that plugs back into the builder
//!   ([`session::C2piBuilder::plan`]) and into
//!   [`server::PiServerConfig`] sizing;
//! * [`boundary`] — Algorithm 1's original single-attack form (now a
//!   deprecated shim over the planner's probe machinery);
//! * [`defense`] — boundary defenses beyond uniform noise, with the one
//!   [`defense::defense_seed`] stream every evaluator and the serving
//!   session share;
//! * [`noise`] — the uniform-noise share defense and the
//!   noised-activation accuracy evaluation (Figures 6–7);
//! * [`session`] — the serving API: the [`session::C2pi`] builder
//!   compiles a deployment into a long-lived [`session::C2piSession`]
//!   with an explicit offline/online phase split (`preprocess` ahead of
//!   traffic, `infer`/`infer_batch` online);
//! * [`pipeline`] — the end-to-end flow of Figure 2, plus the deprecated
//!   pre-session `C2piPipeline` shims;
//! * [`server`] — concurrent multi-client serving: the [`server::PiServer`]
//!   TCP accept loop spawns bounded workers over one shared session
//!   whose material pool a background dealer keeps topped up, and
//!   [`server::PiClient`] is the matching one-call client;
//! * [`reactor`] — serving at scale: the [`reactor::ReactorServer`]
//!   multiplexes thousands of connections over a readiness loop and a
//!   fixed worker set drawing from per-core material shards, sheds
//!   overload with typed backpressure frames, and answers `STATS`
//!   requests with Prometheus-style metrics.
//!
//! ```
//! use c2pi_core::session::C2pi;
//! use c2pi_nn::model::{alexnet, ZooConfig};
//! use c2pi_nn::BoundaryId;
//! use c2pi_pi::cheetah;
//! use c2pi_tensor::Tensor;
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! // A width-reduced model keeps this example fast; swap in
//! // `vgg16(&ZooConfig::default())` for the paper's scale.
//! let model = alexnet(&ZooConfig { width_div: 32, image_size: 16, ..Default::default() })?;
//! let mut session = C2pi::builder(model)
//!     .split_at(BoundaryId::relu(2))
//!     .noise(0.1)
//!     .backend(cheetah())
//!     .build()?;
//! session.preprocess(1)?; // offline, input-independent
//! let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
//! let result = session.infer(&x)?; // online
//! assert!(result.report.comm_mb() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Where should the boundary sit? Let the planner decide — see
//! [`planner`] for the full attack-calibrated pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod defense;
pub mod error;
pub mod noise;
pub mod pipeline;
pub mod planner;
pub mod reactor;
pub mod server;
pub mod session;
pub mod split_learning;

pub use boundary::{BoundaryConfig, BoundaryTrace};
pub use defense::{defense_seed, Defense};
pub use error::C2piError;
pub use pipeline::{plain_prediction, InferenceResult, Split};
pub use planner::{DeploymentPlan, DeploymentPlanner, PlanChoice, PlannerConfig};
pub use reactor::{ReactorClient, ReactorConfig, ReactorReply, ReactorServer};
pub use server::{ClientInference, PiClient, PiServer, PiServerConfig};
pub use session::{C2pi, C2piBuilder, C2piSession};

#[allow(deprecated)]
pub use boundary::search_boundary;

#[allow(deprecated)]
pub use pipeline::{C2piPipeline, PipelineConfig};

/// Convenience result alias for C2PI operations.
pub type Result<T> = std::result::Result<T, C2piError>;
