//! # c2pi-core
//!
//! The paper's primary contribution: **C2PI**, crypto-clear two-party
//! private inference.
//!
//! * [`boundary`] — Algorithm 1: sweep the model from tail to head with
//!   an IDPA until recovery starts to succeed, then push the boundary
//!   later until the noised-input accuracy drop is acceptable;
//! * [`noise`] — the uniform-noise share defense and the
//!   noised-activation accuracy evaluation (Figures 6–7);
//! * [`pipeline`] — the end-to-end flow of Figure 2: run the crypto
//!   layers under a PI engine, let the client noise and reveal its
//!   share, and let the server finish the clear layers alone.
//!
//! ```no_run
//! use c2pi_core::pipeline::{C2piPipeline, PipelineConfig};
//! use c2pi_nn::model::{vgg16, ZooConfig};
//! use c2pi_nn::BoundaryId;
//! use c2pi_tensor::Tensor;
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! let model = vgg16(&ZooConfig::default())?;
//! let mut pipe = C2piPipeline::new(model, BoundaryId::relu(9), PipelineConfig::default())?;
//! let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 1);
//! let result = pipe.infer(&x)?;
//! println!("prediction: {}, comm: {:.1} MB", result.prediction, result.report.comm_mb());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod defense;
pub mod error;
pub mod noise;
pub mod pipeline;
pub mod split_learning;

pub use boundary::{search_boundary, BoundaryConfig, BoundaryTrace};
pub use error::C2piError;
pub use pipeline::{C2piPipeline, InferenceResult, PipelineConfig};

/// Convenience result alias for C2PI operations.
pub type Result<T> = std::result::Result<T, C2piError>;
