//! # c2pi-core
//!
//! The paper's primary contribution: **C2PI**, crypto-clear two-party
//! private inference.
//!
//! * [`boundary`] — Algorithm 1: sweep the model from tail to head with
//!   an IDPA until recovery starts to succeed, then push the boundary
//!   later until the noised-input accuracy drop is acceptable;
//! * [`noise`] — the uniform-noise share defense and the
//!   noised-activation accuracy evaluation (Figures 6–7);
//! * [`session`] — the serving API: the [`session::C2pi`] builder
//!   compiles a deployment into a long-lived [`session::C2piSession`]
//!   with an explicit offline/online phase split (`preprocess` ahead of
//!   traffic, `infer`/`infer_batch` online);
//! * [`pipeline`] — the end-to-end flow of Figure 2, plus the deprecated
//!   pre-session `C2piPipeline` shims;
//! * [`server`] — concurrent multi-client serving: the [`server::PiServer`]
//!   TCP accept loop spawns bounded workers over one shared session
//!   whose material pool a background dealer keeps topped up, and
//!   [`server::PiClient`] is the matching one-call client.
//!
//! ```no_run
//! use c2pi_core::session::C2pi;
//! use c2pi_nn::model::{vgg16, ZooConfig};
//! use c2pi_nn::BoundaryId;
//! use c2pi_pi::cheetah;
//! use c2pi_tensor::Tensor;
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! let model = vgg16(&ZooConfig::default())?;
//! let mut session = C2pi::builder(model)
//!     .split_at(BoundaryId::relu(9))
//!     .noise(0.1)
//!     .backend(cheetah())
//!     .build()?;
//! session.preprocess(8)?; // offline, input-independent
//! let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 1);
//! let result = session.infer(&x)?; // online
//! println!("prediction: {}, comm: {:.1} MB", result.prediction, result.report.comm_mb());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod defense;
pub mod error;
pub mod noise;
pub mod pipeline;
pub mod server;
pub mod session;
pub mod split_learning;

pub use boundary::{search_boundary, BoundaryConfig, BoundaryTrace};
pub use error::C2piError;
pub use pipeline::{plain_prediction, InferenceResult, Split};
pub use server::{ClientInference, PiClient, PiServer, PiServerConfig};
pub use session::{C2pi, C2piBuilder, C2piSession};

#[allow(deprecated)]
pub use pipeline::{C2piPipeline, PipelineConfig};

/// Convenience result alias for C2PI operations.
pub type Result<T> = std::result::Result<T, C2piError>;
