//! The session-based C2PI serving API: a fluent builder plus a
//! long-lived [`C2piSession`] with an explicit offline/online split.
//!
//! ```no_run
//! use c2pi_core::session::C2pi;
//! use c2pi_nn::model::{vgg16, ZooConfig};
//! use c2pi_nn::BoundaryId;
//! use c2pi_pi::cheetah;
//! use c2pi_tensor::Tensor;
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! let model = vgg16(&ZooConfig::default())?;
//! let mut session = C2pi::builder(model)
//!     .split_at(BoundaryId::relu(9))
//!     .noise(0.1)
//!     .backend(cheetah())
//!     .build()?;
//! session.preprocess(16)?; // offline: correlated randomness for 16 images
//! let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 1);
//! let result = session.infer(&x)?; // online only
//! println!("prediction {}, online {:.1} ms", result.prediction,
//!          result.report.online_seconds * 1e3);
//! # Ok(())
//! # }
//! ```

use crate::defense::{defense_seed, Defense};
use crate::pipeline::{InferenceResult, Split};
use crate::{C2piError, Result};
use c2pi_mpc::share::ShareVec;
use c2pi_mpc::FixedPoint;
use c2pi_nn::{BoundaryId, Model, Sequential};
use c2pi_pi::engine::{specs_of, PiConfig};
use c2pi_pi::report::PreprocessLedger;
use c2pi_pi::{IntoBackend, PiSession};
use c2pi_tensor::Tensor;
use c2pi_transport::{TrafficSnapshot, Transport};
use std::sync::Arc;

/// Entry point of the builder API.
pub struct C2pi;

impl C2pi {
    /// Starts configuring a C2PI deployment of `model`. Defaults:
    /// full PI (no clear segment), Cheetah backend, noise λ = 0.1.
    pub fn builder(model: Model) -> C2piBuilder {
        C2piBuilder {
            model,
            split: Split::Full,
            defense: Defense::Uniform { magnitude: 0.1 },
            noise_seed: 53,
            pi: PiConfig::default(),
            backend: None,
            transport: None,
        }
    }
}

/// Fluent configuration for a [`C2piSession`].
pub struct C2piBuilder {
    model: Model,
    split: Split,
    defense: Defense,
    noise_seed: u64,
    pi: PiConfig,
    backend: Option<std::sync::Arc<dyn c2pi_pi::PiBackendImpl>>,
    transport: Option<Arc<dyn Transport>>,
}

impl C2piBuilder {
    /// Splits the model at `boundary`: layers up to and including it run
    /// under MPC, the rest in the clear on the server (C2PI proper).
    pub fn split_at(mut self, boundary: BoundaryId) -> Self {
        self.split = Split::At(boundary);
        self
    }

    /// Runs every layer under MPC (the conventional full-PI baseline).
    pub fn full_pi(mut self) -> Self {
        self.split = Split::Full;
        self
    }

    /// Sets the split directly.
    pub fn split(mut self, split: Split) -> Self {
        self.split = split;
        self
    }

    /// Defense noise magnitude λ added to the client's share before the
    /// reveal (ignored for [`Split::Full`]). Sugar for
    /// `defense(Defense::Uniform { magnitude: lambda })`.
    pub fn noise(mut self, lambda: f32) -> Self {
        self.defense = Defense::Uniform { magnitude: lambda };
        self
    }

    /// The boundary defense the client applies to its share before the
    /// reveal (ignored for [`Split::Full`]). Must be *additive*
    /// ([`Defense::additive_delta`]): the client holds only a share, so
    /// it can add a perturbation but cannot quantise or drop values it
    /// never sees — [`C2piBuilder::build`] rejects non-additive
    /// defenses for split deployments.
    pub fn defense(mut self, defense: Defense) -> Self {
        self.defense = defense;
        self
    }

    /// Master seed for the client's defense draws. Per-inference seeds
    /// come from the shared [`defense_seed`] stream, the same
    /// derivation the accuracy evaluators and the deployment planner
    /// use.
    pub fn noise_seed(mut self, seed: u64) -> Self {
        self.noise_seed = seed;
        self
    }

    /// Applies a deployment-planner choice: boundary, backend and
    /// defense in one call (see [`crate::planner::DeploymentPlanner`]).
    pub fn plan(mut self, choice: &crate::planner::PlanChoice) -> Self {
        self.split = Split::At(choice.boundary);
        self.defense = choice.defense;
        self.noise_seed = choice.defense_seed;
        self.backend = Some(choice.backend.engine());
        self
    }

    /// Protocol backend: a [`c2pi_pi::PiBackend`] tag or any
    /// `Arc<dyn PiBackendImpl>` (e.g. [`c2pi_pi::cheetah()`],
    /// [`c2pi_pi::delphi()`], or a custom implementation).
    pub fn backend<B: IntoBackend>(mut self, backend: B) -> Self {
        self.backend = Some(backend.into_backend());
        self
    }

    /// Transport the two party loops talk over: the in-memory default,
    /// [`c2pi_transport::SimTransport`] for in-line LAN/WAN latency, or
    /// [`c2pi_transport::TcpLoopbackTransport`] for real TCP framing —
    /// any [`Transport`] implementation, including an
    /// `Arc<dyn Transport>`.
    pub fn transport<T: Transport + 'static>(mut self, transport: T) -> Self {
        self.transport = Some(Arc::new(transport));
        self
    }

    /// Fixed-point format for the crypto phase.
    pub fn fixed(mut self, fp: FixedPoint) -> Self {
        self.pi.fixed = fp;
        self
    }

    /// Master seed for the dealer's per-inference seed stream.
    pub fn dealer_seed(mut self, seed: u64) -> Self {
        self.pi.dealer_seed = seed;
        self
    }

    /// Maximum elements per garbled-circuit batch (GC backends).
    pub fn gc_chunk(mut self, chunk: usize) -> Self {
        self.pi.gc_chunk = chunk;
        self
    }

    /// Full engine configuration override (backend tag included, unless
    /// [`C2piBuilder::backend`] was also called).
    pub fn pi_config(mut self, cfg: PiConfig) -> Self {
        self.pi = cfg;
        self
    }

    /// Compiles the deployment into a ready-to-serve session.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown boundaries or crypto prefixes the
    /// engine cannot execute.
    pub fn build(self) -> Result<C2piSession> {
        let (crypto, clear) = match self.split {
            Split::At(boundary) => {
                if self.defense.additive_delta(&[1], 0).is_none() {
                    return Err(C2piError::BadConfig(format!(
                        "defense {} is not additive: the client cannot apply it to its share",
                        self.defense.label()
                    )));
                }
                self.model.split_at(boundary).map_err(C2piError::Nn)?
            }
            Split::Full => (self.model.seq().clone(), Sequential::new()),
        };
        let backend = self.backend.unwrap_or_else(|| self.pi.backend.engine());
        let input_shape = self.model.input_shape();
        let mut pi = PiSession::with_backend(&specs_of(&crypto), input_shape, self.pi, backend)
            .map_err(C2piError::Pi)?;
        if let Some(transport) = self.transport {
            pi = pi.with_transport(transport);
        }
        Ok(C2piSession {
            pi,
            clear,
            split: self.split,
            defense: self.defense,
            defense_master: self.noise_seed,
            inferences: 0,
        })
    }
}

/// A long-lived C2PI deployment of one model: a [`PiSession`] for the
/// crypto prefix plus the server's clear suffix and the client's noise
/// stream. Create it with [`C2pi::builder`].
#[derive(Debug)]
pub struct C2piSession {
    pi: PiSession,
    clear: Sequential,
    split: Split,
    defense: Defense,
    defense_master: u64,
    inferences: u64,
}

impl C2piSession {
    /// Offline phase: generates correlated randomness for `n` future
    /// inferences (see [`PiSession::preprocess`]).
    ///
    /// # Errors
    ///
    /// Propagates dealer errors.
    pub fn preprocess(&mut self, n: usize) -> Result<()> {
        self.pi.preprocess(n).map_err(C2piError::Pi)
    }

    /// The split position.
    pub fn split(&self) -> Split {
        self.split
    }

    /// The boundary defense this session applies before the reveal.
    pub fn defense(&self) -> Defense {
        self.defense
    }

    /// The defense's report label (e.g. `uniform(0.100)`).
    pub fn defense_label(&self) -> String {
        self.defense.label()
    }

    /// Number of layers executed under MPC.
    pub fn crypto_layer_count(&self) -> usize {
        self.pi.step_count()
    }

    /// Number of layers the server executes in the clear.
    pub fn clear_layer_count(&self) -> usize {
        self.clear.len()
    }

    /// The engine name of the active backend.
    pub fn backend_name(&self) -> &'static str {
        self.pi.backend_name()
    }

    /// Label of the active transport (`mem`, `sim-wan`, `tcp-loopback`).
    pub fn transport_label(&self) -> String {
        self.pi.transport_label()
    }

    /// Current consumed-vs-generated preprocessing ledger.
    pub fn ledger(&self) -> PreprocessLedger {
        self.pi.ledger()
    }

    /// Online phase: one private inference on a `[1, c, h, w]` input.
    ///
    /// # Errors
    ///
    /// Returns engine or shape errors.
    pub fn infer(&mut self, x: &Tensor) -> Result<InferenceResult> {
        let noise_seed = defense_seed(self.defense_master, self.inferences as usize);
        self.inferences += 1;
        let fp = self.pi.config().fixed;
        let outcome = self.pi.infer(x).map_err(C2piError::Pi)?;
        let mut report = outcome.report.clone();
        match self.split {
            Split::Full => {
                // The server sends its share to the client, who learns
                // only the inference output (one reveal flight).
                let raw =
                    c2pi_mpc::share::reconstruct(&outcome.client_share, &outcome.server_share);
                let logits = fp.decode_tensor(&raw, &outcome.dims)?;
                report.online = report.online.plus(&TrafficSnapshot {
                    bytes_client_to_server: 0,
                    bytes_server_to_client: (outcome.server_share.len() * 8) as u64,
                    messages: 1,
                    flights: 1,
                });
                let prediction = logits.argmax().unwrap_or(0);
                Ok(InferenceResult { logits, prediction, revealed_activation: None, report })
            }
            Split::At(_) => {
                // Client applies the additive defense to its share and
                // reveals it (Figure 2c). The delta is the same tensor
                // `Defense::apply` would add to the activation, drawn
                // from the same seed stream the accuracy evaluators use.
                let delta =
                    self.defense.additive_delta(&outcome.dims, noise_seed).ok_or_else(|| {
                        C2piError::BadConfig(format!(
                            "defense {} is not additive",
                            self.defense.label()
                        ))
                    })?;
                let noise_ring: Vec<u64> = fp.encode_tensor(&delta);
                let noised_share = ShareVec::from_raw(
                    outcome
                        .client_share
                        .as_raw()
                        .iter()
                        .zip(noise_ring.iter())
                        .map(|(&s, &d)| s.wrapping_add(d))
                        .collect(),
                );
                report.online = report.online.plus(&TrafficSnapshot {
                    bytes_client_to_server: (noised_share.len() * 8) as u64,
                    bytes_server_to_client: 0,
                    messages: 1,
                    flights: 1,
                });
                // Server reconstructs M_l(x) + Δ and finishes alone, on
                // the immutable (cache-free) forward path.
                let raw = c2pi_mpc::share::reconstruct(&noised_share, &outcome.server_share);
                let act = fp.decode_tensor(&raw, &outcome.dims)?;
                let logits = self.clear.forward_eval(&act)?;
                let prediction = logits.argmax().unwrap_or(0);
                Ok(InferenceResult { logits, prediction, revealed_activation: Some(act), report })
            }
        }
    }

    /// Online phase over a batch: one result per input. Preprocess at
    /// least `xs.len()` material sets first to keep the whole batch off
    /// the dealer's critical path (check
    /// [`PreprocessLedger::generated_inline`] afterwards).
    ///
    /// # Errors
    ///
    /// Fails on the first erroring inference.
    pub fn infer_batch(&mut self, xs: &[Tensor]) -> Result<Vec<InferenceResult>> {
        xs.iter().map(|x| self.infer(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::plain_prediction;
    use c2pi_nn::model::{alexnet, ZooConfig};
    use c2pi_pi::{cheetah, delphi, PiBackend};

    fn tiny_model() -> Model {
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap()
    }

    #[test]
    fn builder_session_matches_plaintext_without_noise() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
        let plain = plain_prediction(&model, &x).unwrap();
        let mut session = C2pi::builder(model)
            .split_at(BoundaryId::relu(3))
            .noise(0.0)
            .backend(cheetah())
            .build()
            .unwrap();
        session.preprocess(2).unwrap();
        let res = session.infer(&x).unwrap();
        assert_eq!(res.prediction, plain);
        assert!(res.revealed_activation.is_some());
        assert!(session.clear_layer_count() > 0);
        assert_eq!(res.report.preprocessing.generated_inline, 0);
        assert_eq!(session.ledger().available, 1);
    }

    #[test]
    fn full_pi_builder_runs_and_batches() {
        let model = tiny_model();
        let xs: Vec<Tensor> =
            (0..2).map(|s| Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, s)).collect();
        let expected: Vec<usize> =
            xs.iter().map(|x| plain_prediction(&tiny_model(), x).unwrap()).collect();
        let mut session = C2pi::builder(model).full_pi().noise(0.0).build().unwrap();
        session.preprocess(xs.len()).unwrap();
        let results = session.infer_batch(&xs).unwrap();
        assert_eq!(results.len(), 2);
        for (res, want) in results.iter().zip(&expected) {
            assert_eq!(res.prediction, *want);
            assert!(res.revealed_activation.is_none());
        }
        let ledger = session.ledger();
        assert_eq!(ledger.consumed, 2);
        assert_eq!(ledger.generated_inline, 0);
    }

    #[test]
    fn backend_accepts_tag_and_impl() {
        let a = C2pi::builder(tiny_model())
            .split_at(BoundaryId::relu(2))
            .backend(PiBackend::Delphi)
            .build()
            .unwrap();
        assert_eq!(a.backend_name(), "delphi");
        let b = C2pi::builder(tiny_model())
            .split_at(BoundaryId::relu(2))
            .backend(delphi())
            .build()
            .unwrap();
        assert_eq!(b.backend_name(), "delphi");
    }

    #[test]
    fn per_inference_noise_is_forked_not_repeated() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 9);
        let mut session =
            C2pi::builder(model).split_at(BoundaryId::relu(3)).noise(0.5).build().unwrap();
        let a = session.infer(&x).unwrap().revealed_activation.unwrap();
        let b = session.infer(&x).unwrap().revealed_activation.unwrap();
        // Same input, same session: the revealed activations differ
        // because each inference draws fresh noise.
        assert!(a.sub(&b).unwrap().map(f32::abs).max() > 1e-4);
    }

    #[test]
    fn unknown_boundary_is_rejected() {
        let err = C2pi::builder(tiny_model()).split_at(BoundaryId::conv(99)).build();
        assert!(err.is_err());
    }

    #[test]
    fn transports_are_interchangeable_at_the_builder() {
        use c2pi_transport::{NetModel, SimTransport, TcpLoopbackTransport};
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 4);
        let mut mem = C2pi::builder(tiny_model()).full_pi().noise(0.0).build().unwrap();
        assert_eq!(mem.transport_label(), "mem");
        let want = mem.infer(&x).unwrap();
        let mut tcp = C2pi::builder(tiny_model())
            .full_pi()
            .noise(0.0)
            .transport(TcpLoopbackTransport)
            .build()
            .unwrap();
        assert_eq!(tcp.transport_label(), "tcp-loopback");
        let got = tcp.infer(&x).unwrap();
        assert_eq!(got.prediction, want.prediction);
        assert_eq!(got.logits.as_slice(), want.logits.as_slice());
        let mut sim = C2pi::builder(tiny_model())
            .full_pi()
            .noise(0.0)
            .transport(SimTransport::new(NetModel::custom("fast", 1e12, 1e-6)))
            .build()
            .unwrap();
        let got = sim.infer(&x).unwrap();
        assert_eq!(got.logits.as_slice(), want.logits.as_slice());
    }
}
