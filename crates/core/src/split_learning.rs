//! Split-learning (SL) support — the paper's §II notes that DINA *"also
//! helps address the privacy issue in split learning"*, the setting the
//! IDPAs were originally defined in (He et al. 2019).
//!
//! In SL the **edge** holds both the input and the first `l` layers
//! `M₁`; the **cloud** holds the remaining layers `M₂`. The edge sends
//! `M₁(x)` in the clear (optionally defended), and the *cloud* is the
//! curious party. This module models that deployment so the same IDPAs
//! can score it — the dual of C2PI where the prefix runs locally instead
//! of under MPC.

use crate::defense::Defense;
use crate::Result;
use c2pi_nn::{BoundaryId, Model, Sequential};
use c2pi_tensor::Tensor;

/// A split-learning deployment: edge-side prefix, cloud-side suffix.
#[derive(Debug)]
pub struct SplitDeployment {
    edge: Sequential,
    cloud: Sequential,
    cut: BoundaryId,
    defense: Defense,
    query_count: u64,
}

/// What one SL inference produces.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// Output logits (computed by the cloud, returned to the edge).
    pub logits: Tensor,
    /// Argmax class.
    pub prediction: usize,
    /// The (defended) smashed data the cloud observed — IDPA target.
    pub smashed: Tensor,
    /// Bytes the edge uploaded for this query (4 bytes per activation).
    pub upload_bytes: u64,
}

impl SplitDeployment {
    /// Splits a model at `cut` into edge and cloud halves.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown cut points.
    pub fn new(model: &Model, cut: BoundaryId, defense: Defense) -> Result<Self> {
        let (edge, cloud) = model.split_at(cut)?;
        Ok(SplitDeployment { edge, cloud, cut, defense, query_count: 0 })
    }

    /// The cut position.
    pub fn cut(&self) -> BoundaryId {
        self.cut
    }

    /// The configured defense.
    pub fn defense(&self) -> Defense {
        self.defense
    }

    /// Number of layers running on the edge.
    pub fn edge_layer_count(&self) -> usize {
        self.edge.len()
    }

    /// Runs one collaborative inference.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn infer(&mut self, x: &Tensor) -> Result<SplitResult> {
        self.query_count += 1;
        let act = self.edge.forward(x, false)?;
        self.edge.clear_cache();
        let smashed = self.defense.apply(&act, 0x51AB_0000 ^ self.query_count);
        let logits = self.cloud.forward(&smashed, false)?;
        self.cloud.clear_cache();
        Ok(SplitResult {
            prediction: logits.argmax().unwrap_or(0),
            upload_bytes: (smashed.len() * 4) as u64,
            smashed,
            logits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_attacks::dina::{Dina, DinaConfig};
    use c2pi_attacks::Idpa;
    use c2pi_data::metrics::ssim;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn setup() -> (Model, c2pi_data::Dataset) {
        let model = alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap();
        let data =
            SynthDataset::generate(&SynthConfig { classes: 3, per_class: 3, ..Default::default() })
                .into_dataset();
        (model, data)
    }

    #[test]
    fn split_inference_matches_monolithic_model() {
        let (model, data) = setup();
        let mut mono = model.clone();
        let mut sl = SplitDeployment::new(&model, BoundaryId::relu(3), Defense::None).unwrap();
        for x in data.images().iter().take(3) {
            let expect = mono.forward(x).unwrap().argmax().unwrap();
            let got = sl.infer(x).unwrap();
            assert_eq!(got.prediction, expect);
        }
    }

    #[test]
    fn earlier_cut_means_less_edge_compute_more_upload() {
        let (model, data) = setup();
        let x = &data.images()[0];
        let mut early = SplitDeployment::new(&model, BoundaryId::relu(1), Defense::None).unwrap();
        let mut late = SplitDeployment::new(&model, BoundaryId::relu(5), Defense::None).unwrap();
        assert!(early.edge_layer_count() < late.edge_layer_count());
        let eb = early.infer(x).unwrap().upload_bytes;
        let lb = late.infer(x).unwrap().upload_bytes;
        // Deeper activations are smaller for this pooled architecture.
        assert!(eb > lb, "early upload {eb} vs late {lb}");
    }

    #[test]
    fn cloud_can_attack_undefended_smashed_data() {
        // The SL threat the IDPAs were built for: an early, undefended
        // cut leaks the input to a trained inversion attack.
        let (mut model, data) = setup();
        let cut = BoundaryId::relu(1);
        let mut dina = Dina::new(DinaConfig { epochs: 40, ..Default::default() });
        dina.prepare(&mut model, cut, &data, 0.0).unwrap();
        let mut sl = SplitDeployment::new(&model, cut, Defense::None).unwrap();
        let x = &data.images()[0];
        let res = sl.infer(x).unwrap();
        let rec = dina.recover(&mut model, cut, &res.smashed).unwrap();
        let s = ssim(x, &rec).unwrap();
        assert!(s > 0.25, "early-cut SL should leak, SSIM {s}");
    }

    #[test]
    fn defense_degrades_the_cloud_attack() {
        let (mut model, data) = setup();
        let cut = BoundaryId::relu(1);
        let mut dina = Dina::new(DinaConfig { epochs: 20, ..Default::default() });
        dina.prepare(&mut model, cut, &data, 0.0).unwrap();
        let x = &data.images()[0];
        let mut score = |defense| {
            let mut sl = SplitDeployment::new(&model.clone(), cut, defense).unwrap();
            let res = sl.infer(x).unwrap();
            let mut m = model.clone();
            let rec = dina.recover(&mut m, cut, &res.smashed).unwrap();
            ssim(x, &rec).unwrap()
        };
        let clean = score(Defense::None);
        let noisy = score(Defense::Gaussian { std: 3.0 });
        assert!(noisy < clean, "defense should hurt the attack: {noisy} !< {clean}");
    }
}
