//! Readiness-driven serving: one reactor thread multiplexing every
//! connection over a fixed worker set, per-core material shards with
//! work stealing, typed backpressure, and a stats endpoint.
//!
//! [`crate::server::PiServer`] spawns a thread per connection and
//! blocks it for the whole protocol; fine for tens of clients, fatal at
//! thousands (a stack and a scheduler slot per idle socket). The
//! reactor inverts that:
//!
//! * the **reactor thread** owns a nonblocking listener and a
//!   [`polling::Poller`] — on Linux a real epoll instance by default.
//!   The listener, every parked connection, and the poller's notify
//!   handle share **one** poller wait, so the thread is genuinely
//!   event-driven: it sleeps until an accept, a request frame, or a
//!   notify actually arrives (no periodic polling), wakes in O(ready)
//!   work, admits new connections (bounded per wakeup and by
//!   [`ReactorConfig::max_clients`]), parks them until their request
//!   frame arrives, and dispatches readable connections into a
//!   **bounded** queue. It never runs cryptography, so one thread
//!   multiplexes thousands of idle sockets;
//! * a fixed set of **worker threads** pulls connections off the queue
//!   and runs the online server party end to end. Worker *w* draws
//!   material from shard *w mod shards* of a
//!   [`c2pi_pi::ShardedMaterialPool`] — its own lock in steady state,
//!   work-stealing from siblings when its shard runs dry;
//! * one **replenisher per shard** keeps the shards topped up
//!   (offline phase, input-independent).
//!
//! **Cross-client batching** (off by default) adds one stage between
//! request parsing and protocol dispatch: a [`batch::BatchCollector`].
//! With [`ReactorConfig::batch_window`] and [`ReactorConfig::max_batch`]
//! set, concurrent `infer` requests arriving within the window coalesce
//! into one fused protocol run
//! ([`c2pi_pi::SessionCore::serve_batch_prepared`]): the k members
//! share every round trip's compute, each still consumes exactly one
//! pooled material set, and each gets its own per-member wire content
//! back — results are bit-for-bit what k sequential runs on the same
//! material would produce (DESIGN.md §10). A batch flushes when it
//! fills (`Full`), when its oldest member has waited the window
//! (`Window` — the reactor arms its poller timeout with the batch
//! deadline, and a deposit that opens a new window notifies the poller
//! to re-arm, so the flush fires when due rather than on a polling
//! tick), or at drain (`Drain` — a queued request was admitted and is
//! *served*, never shed). With the default `max_batch = 1` the
//! collector is disabled and serving takes the exact unbatched code
//! path.
//!
//! **Backpressure is explicit.** Whenever the server cannot serve — all
//! shards empty, dispatch queue full, `max_clients` reached, or the
//! server is draining — the client gets a typed `BUSY` frame carrying a
//! suggested retry delay and a draining flag, never a hang or a silent
//! close. [`ReactorClient::infer`] honours it with a bounded retry
//! loop and surfaces exhaustion as [`C2piError::Overloaded`].
//!
//! **Observability is a frame away.** A `STATS` request returns a
//! Prometheus-style text exposition ([`metrics`]): served/shed/steal
//! counters, per-shard pool depths, and online-latency histograms.
//!
//! ## Wire protocol
//!
//! Framing is the transport's usual 4-byte little-endian length prefix.
//! The client speaks first (a connection that never speaks costs the
//! reactor one poller slot, not a thread):
//!
//! ```text
//! client → server   REQ   = "C2PQ" ‖ version(u8) ‖ kind(u8: 1=infer, 2=stats)
//! server → client   OK    = [1]            solo admit: the dealt contract
//!                                          runs (DealtSeed frame, protocol,
//!                                          revealed server share)
//!                   OK    = [1] ‖ batch(u16 LE)
//!                                          batch admit: same contract, and
//!                                          the frame reports how many
//!                                          members share the fused run
//!                   BUSY  = [2] ‖ retry_ms(u32 LE) ‖ draining(u8)
//!                   STATS = [3] ‖ Prometheus-style UTF-8 text
//! ```
//!
//! After `OK` the byte stream is exactly the classic dealt serving
//! contract ([`c2pi_pi::SessionCore::serve_prepared`] /
//! [`c2pi_pi::SharedPiSession::request_one`]); the reactor adds one
//! request/response exchange in front, nothing inside.
//!
//! **Determinism.** Sharding never touches material *content*: every
//! shard draws from the one serialized [`c2pi_pi::SeedAllocator`], so a
//! sharded deployment consumes a prefix of the same seed stream an
//! unsharded session walks, and concurrent results are a bit-for-bit
//! permutation of the sequential run's (DESIGN.md §8).
//!
//! ```no_run
//! use c2pi_core::reactor::{ReactorClient, ReactorConfig, ReactorServer};
//! use c2pi_nn::layers::{Conv2d, Relu};
//! use c2pi_nn::Sequential;
//! use c2pi_pi::engine::{specs_of, PiConfig};
//! use c2pi_pi::PiSession;
//! use c2pi_tensor::Tensor;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! let mut prefix = Sequential::new();
//! prefix.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
//! prefix.push(Relu::new());
//! let session =
//!     PiSession::new(&specs_of(&prefix), [1, 8, 8], PiConfig::default())?.into_shared();
//! let server = ReactorServer::bind(
//!     Arc::clone(session.core()),
//!     "127.0.0.1:0",
//!     ReactorConfig { workers: 4, ..Default::default() },
//! )?;
//! let client = ReactorClient::new(session); // identical specs + config
//! let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 1);
//! let result = client.infer(server.local_addr(), &x)?;
//! println!("prediction {}", result.prediction);
//! println!("{}", client.stats(server.local_addr())?);
//! server.drain()?;
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod metrics;

use crate::server::ClientInference;
use crate::{C2piError, Result};
use batch::{BatchCollector, Deposit, FlushReason};
use c2pi_pi::SharedPiSession;
use c2pi_pi::{PoolTake, Replenisher, RestoreReport, SessionCore, ShardedMaterialPool};
use c2pi_tensor::Tensor;
use c2pi_transport::{Channel, Side, TcpChannel, TcpListenerTransport, TransportError};
use metrics::{MetricsSnapshot, ReactorMetrics, ShardSnapshot};
use polling::{Backend, Poller};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request-frame magic: "C2PI request", version-gated.
const REQ_MAGIC: [u8; 4] = *b"C2PQ";
/// Wire-protocol version of the REQ/OK/BUSY/STATS envelope. Version 2
/// added the batch-capable `OK` form (`[1] ‖ batch(u16 LE)`).
const PROTO_VERSION: u8 = 2;
/// REQ kind: run one online inference.
const KIND_INFER: u8 = 1;
/// REQ kind: return the metrics exposition.
const KIND_STATS: u8 = 2;
/// Reply tag: request admitted, dealt contract follows.
const TAG_OK: u8 = 1;
/// Reply tag: shed with backpressure (retry_ms u32 LE + draining u8).
const TAG_BUSY: u8 = 2;
/// Reply tag: metrics exposition follows as UTF-8 text.
const TAG_STATS: u8 = 3;

/// How many pending accepts the reactor admits per wakeup. The bound is
/// a fairness device: a connect storm cannot monopolize the loop,
/// because parked clients' events are dispatched before each accept
/// batch and the level-triggered listener registration re-surfaces the
/// rest of the backlog on the next wakeup.
const ACCEPT_BATCH: usize = 64;
/// Poller key the listener is registered under: one below the poller's
/// own reserved key ([`polling::RESERVED_KEY`]); client-key allocation
/// wraps before reaching either.
const LISTENER_KEY: usize = usize::MAX - 1;
/// Wait-timeout ceiling on an event-driven backend (epoll). Accepts,
/// client readiness, and notifies all arrive as events there, so this
/// is a pure safety net, not a duty cycle.
const SAFETY_TICK_EVENT: Duration = Duration::from_millis(50);
/// Wait-timeout ceiling on a scanning backend (peek). That backend
/// cannot observe listener readiness — it reports the listener
/// "assumed-ready" only when a wait returns — so this tick is the
/// accept-latency bound, matching the old `POLL_TICK` cadence.
const SAFETY_TICK_SCAN: Duration = Duration::from_millis(5);

fn pi_err(e: TransportError) -> C2piError {
    C2piError::Pi(e.into())
}

/// Tuning knobs of a [`ReactorServer`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads running online protocol parties. Size to cores;
    /// clamped to at least 1.
    pub workers: usize,
    /// Material-pool shards. `0` (default) means one per worker —
    /// worker *w* homes on shard *w mod shards*.
    pub shards: usize,
    /// Hard cap on connections the reactor tracks at once (parked,
    /// queued or in service). Accepts beyond it are shed immediately
    /// with a `BUSY` frame: bounded memory under any client count.
    pub max_clients: usize,
    /// Dispatch-queue depth between reactor and workers. `0` (default)
    /// means `2 × workers`. A readable connection that finds the queue
    /// full is shed, not parked — queueing hides overload, shedding
    /// reports it.
    pub queue_depth: usize,
    /// Per-shard low watermark waking that shard's replenisher. `0`
    /// disables replenishment (the reactor never deals inline, so a
    /// drained deployment then sheds until `preprocess` is called).
    pub pool_low: usize,
    /// Per-shard high watermark the replenisher refills to.
    pub pool_high: usize,
    /// Read *and* write timeout on every served connection — a silent
    /// or stalled client frees its worker after this long.
    pub client_timeout: Duration,
    /// Suggested backoff carried in `BUSY` frames. Scale to roughly one
    /// material-generation interval so a retrying client finds stock.
    pub retry_after: Duration,
    /// Coalescing window for cross-client batching: how long the first
    /// member of a forming batch may wait for company before the batch
    /// is flushed anyway. `Duration::ZERO` (default) disables
    /// coalescing entirely — serving takes the exact unbatched path.
    /// The reactor arms its poller timeout with the window deadline, so
    /// the flush fires when due.
    pub batch_window: Duration,
    /// Cross-client batch-size cap: at most this many concurrent
    /// `infer` requests fuse into one protocol run. `1` (default)
    /// disables coalescing, identically to a zero window. Each member
    /// still consumes exactly one pooled material set.
    pub max_batch: usize,
    /// Base path for persistent material stores; shard `i` persists to
    /// `<base>.shard<i>`. When set, [`ReactorServer::bind`] warm-boots
    /// every shard from its segment and [`ReactorServer::drain`]
    /// flushes them all. `None` keeps material in memory only.
    pub persist_path: Option<PathBuf>,
    /// Force the portable peek poller backend even where a kernel
    /// multiplexer is available — the in-process equivalent of the
    /// `POLLING_FORCE_PEEK=1` environment switch (which still applies
    /// when this is `false`). The test suite uses it to run the full
    /// reactor stack against both backends in one process without
    /// racing on the environment.
    pub force_peek_poller: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 4,
            shards: 0,
            max_clients: 1024,
            queue_depth: 0,
            pool_low: 2,
            pool_high: 8,
            client_timeout: Duration::from_secs(60),
            retry_after: Duration::from_millis(50),
            batch_window: Duration::ZERO,
            max_batch: 1,
            persist_path: None,
            force_peek_poller: false,
        }
    }
}

/// What the reactor hands a worker.
enum Job {
    /// A connection whose request frame is (at least partly) buffered.
    Conn(TcpStream),
    /// A coalesced batch the collector flushed on its window deadline
    /// or at drain — `Full` flushes never pass through the queue, the
    /// depositing worker serves them in place.
    Batch(Vec<TcpChannel>, FlushReason),
    /// Drain: finish queued work, then exit. Enqueued once per worker
    /// *behind* all in-flight jobs, so FIFO order makes drain graceful.
    Shutdown,
}

/// State every thread of the serving surface shares.
struct Shared {
    core: Arc<SessionCore>,
    pool: Arc<ShardedMaterialPool>,
    metrics: Arc<ReactorMetrics>,
    workers: usize,
    max_clients: usize,
    client_timeout: Duration,
    retry_after: Duration,
    collector: BatchCollector<TcpChannel>,
    /// The reactor's readiness poller. Workers hold it to notify the
    /// reactor when a deposit opens a new batch window (so it re-arms
    /// its wait timeout); snapshots read its backend and counters.
    poller: Arc<Poller>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.metrics.draining.load(Ordering::SeqCst)
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let depths = self.pool.depths();
        let ledgers = self.pool.shard_ledgers();
        let shards = depths
            .iter()
            .zip(&ledgers)
            .map(|(&depth, l)| ShardSnapshot {
                depth,
                consumed: l.consumed,
                generated_offline: l.generated_offline,
                restored: l.restored,
            })
            .collect();
        let mut snap =
            MetricsSnapshot::gather(&self.metrics, self.workers, self.pool.steals(), shards);
        snap.batch_pending = self.collector.pending() as u64;
        snap.poll_backend = self.poller.backend().name();
        snap.poll_wakeups = self.poller.wakeups();
        snap.poll_events = self.poller.events_reported();
        snap
    }

    /// Sheds one connection with a best-effort `BUSY` frame.
    /// `counted_active` says whether the connection was admitted into
    /// the active gauge (queue-full and drain sheds) or turned away at
    /// the door (`max_clients` sheds).
    fn shed(&self, stream: TcpStream, counted_active: bool) {
        self.metrics.add(&self.metrics.shed);
        let frame = busy_frame(self.retry_after, self.draining());
        // Best-effort: the client may already be gone, and a shed must
        // never block the reactor — short write timeout, errors ignored.
        let _ = stream.set_nonblocking(false);
        if let Ok(ch) = TcpChannel::from_stream(stream, Side::Server) {
            let _ = ch.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = ch.send_bytes(&frame);
        }
        if counted_active {
            self.metrics.connection_done();
        }
    }

    /// Sheds one already-admitted connection that has progressed to a
    /// [`TcpChannel`] (its REQ was parsed and it entered the batching
    /// stage): best-effort `BUSY` frame, shed counter, active gauge.
    fn shed_channel(&self, ch: &TcpChannel, draining: bool) {
        self.metrics.add(&self.metrics.shed);
        let _ = ch.send_bytes(&busy_frame(self.retry_after, draining));
        self.metrics.connection_done();
    }
}

fn req_frame(kind: u8) -> [u8; 6] {
    [REQ_MAGIC[0], REQ_MAGIC[1], REQ_MAGIC[2], REQ_MAGIC[3], PROTO_VERSION, kind]
}

fn parse_req(frame: &[u8]) -> Option<u8> {
    if frame.len() != 6 || frame[..4] != REQ_MAGIC || frame[4] != PROTO_VERSION {
        return None;
    }
    matches!(frame[5], KIND_INFER | KIND_STATS).then_some(frame[5])
}

fn busy_frame(retry_after: Duration, draining: bool) -> [u8; 6] {
    let ms = (retry_after.as_millis().min(u32::MAX as u128) as u32).to_le_bytes();
    [TAG_BUSY, ms[0], ms[1], ms[2], ms[3], u8::from(draining)]
}

/// A running readiness-driven PI server. See the [module docs](self)
/// for the thread map and wire protocol.
#[derive(Debug)]
pub struct ReactorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    warm_boot: Option<RestoreReport>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    replenishers: Vec<Replenisher>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("workers", &self.workers).finish()
    }
}

impl ReactorServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the reactor
    /// thread, `cfg.workers` worker threads, and — when
    /// `cfg.pool_low > 0` — one replenisher per shard. When
    /// `cfg.persist_path` is set, every shard warm-boots from its
    /// `<base>.shard<i>` store segment first.
    ///
    /// `core` must be compiled from the same specs and config the
    /// clients use (the usual dealt-contract requirement).
    ///
    /// # Errors
    ///
    /// Transport errors when binding fails; store errors (I/O,
    /// corruption, foreign deployment) when the persistence segments
    /// cannot be attached.
    pub fn bind(
        core: Arc<SessionCore>,
        addr: impl ToSocketAddrs,
        cfg: ReactorConfig,
    ) -> Result<Self> {
        let workers = cfg.workers.max(1);
        let shards = if cfg.shards == 0 { workers } else { cfg.shards };
        let pool = Arc::new(ShardedMaterialPool::new(Arc::clone(&core), shards));
        let warm_boot = match &cfg.persist_path {
            Some(base) => Some(pool.attach_stores(base).map_err(C2piError::Pi)?),
            None => None,
        };
        let listener = TcpListenerTransport::bind(addr).map_err(pi_err)?;
        listener.set_nonblocking(true).map_err(pi_err)?;
        let addr = listener.local_addr();
        let poller_err =
            |e: std::io::Error| C2piError::BadConfig(format!("readiness poller unavailable: {e}"));
        let poller =
            if cfg.force_peek_poller { Poller::with_backend(Backend::Peek) } else { Poller::new() }
                .map_err(poller_err)?;
        // Register the listener up front so accepts arrive as events
        // through the same wait as client readiness and notifies; a
        // failure here surfaces as a bind error, not a dead server.
        poller.add_listener(listener.as_tcp_listener(), LISTENER_KEY).map_err(poller_err)?;
        let poller = Arc::new(poller);
        let shared = Arc::new(Shared {
            core,
            pool: Arc::clone(&pool),
            metrics: Arc::new(ReactorMetrics::default()),
            workers,
            max_clients: cfg.max_clients.max(1),
            client_timeout: cfg.client_timeout,
            retry_after: cfg.retry_after,
            collector: BatchCollector::new(cfg.batch_window, cfg.max_batch.max(1)),
            poller: Arc::clone(&poller),
        });
        let queue_depth = if cfg.queue_depth == 0 { workers * 2 } else { cfg.queue_depth };
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(w, &rx, &shared))
            })
            .collect();
        let reactor = {
            let poller = Arc::clone(&poller);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reactor_loop(&listener, &poller, &tx, &shared))
        };
        let replenishers = if cfg.pool_low > 0 {
            pool.spawn_replenishers(cfg.pool_low, cfg.pool_high)
        } else {
            Vec::new()
        };
        Ok(ReactorServer {
            addr,
            shared,
            poller,
            warm_boot,
            reactor: Some(reactor),
            workers: worker_handles,
            replenishers,
        })
    }

    /// The actually-bound address (real port even for a port-0 bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The actually-bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The sharded material pool this server serves from.
    pub fn pool(&self) -> &Arc<ShardedMaterialPool> {
        &self.shared.pool
    }

    /// The shared session core (plan + config + backend).
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.shared.core
    }

    /// What the warm boot from `cfg.persist_path` restored; `None`
    /// without persistence.
    pub fn warm_boot(&self) -> Option<&RestoreReport> {
        self.warm_boot.as_ref()
    }

    /// Offline phase: deals material for `n` future inferences,
    /// round-robin across shards.
    ///
    /// # Errors
    ///
    /// Propagates dealer and store errors.
    pub fn preprocess(&self, n: usize) -> Result<()> {
        self.shared.pool.preprocess(n).map_err(C2piError::Pi)
    }

    /// Point-in-time metrics (same data the `STATS` frame serves).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// Inferences served to completion so far.
    pub fn served(&self) -> u64 {
        self.shared.metrics.served.load(Ordering::Relaxed)
    }

    /// Requests shed with `BUSY` frames so far.
    pub fn shed(&self) -> u64 {
        self.shared.metrics.shed.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, answer parked connections with
    /// `BUSY(draining)`, finish every queued and in-flight inference,
    /// stop the replenishers, then flush every shard's store segment.
    /// Also runs on drop (ignoring flush errors there).
    ///
    /// # Errors
    ///
    /// Propagates store-flush I/O failures — the one step whose failure
    /// means persisted material may be missing its durable snapshot.
    pub fn drain(mut self) -> Result<()> {
        self.drain_inner()
    }

    fn drain_inner(&mut self) -> Result<()> {
        // Idempotent: explicit drain() is followed by Drop.
        if self.shared.metrics.draining.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        // Wake the reactor out of its poll sleep so it observes the
        // flag now, not a tick later.
        self.poller.notify();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        // The reactor enqueued one Shutdown per worker behind all
        // outstanding jobs; joining the workers is the in-flight drain.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Dropping a Replenisher stops and joins its thread.
        self.replenishers.clear();
        self.shared.pool.shutdown();
        self.shared.pool.flush_stores().map_err(C2piError::Pi)
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        let _ = self.drain_inner();
    }
}

/// The reactor thread: one poller wait multiplexing accepts, parked
/// client readiness, and notifies — accept, park, dispatch, shed; no
/// cryptography, no periodic polling.
fn reactor_loop(
    listener: &TcpListenerTransport,
    poller: &Poller,
    tx: &SyncSender<Job>,
    shared: &Shared,
) {
    let mut parked: HashMap<usize, TcpStream> = HashMap::new();
    let mut next_key = 0usize;
    let mut events = Vec::new();
    let safety_tick =
        if poller.backend().event_driven() { SAFETY_TICK_EVENT } else { SAFETY_TICK_SCAN };
    while !shared.draining() {
        // Sleep until something actually happens: a parked client's
        // request frame, a pending accept, or a notify (a worker opened
        // a batch window, or drain wants the flag observed). The
        // timeout covers the armed batch deadline, capped by the
        // backend's safety tick.
        let timeout = match shared.collector.next_deadline() {
            Some(deadline) => deadline.saturating_duration_since(Instant::now()).min(safety_tick),
            None => safety_tick,
        };
        events.clear();
        let result = match poller.wait(&mut events, Some(timeout)) {
            Ok(result) => result,
            Err(_) => {
                // A failing wait (epoll state corruption) would spin
                // this loop hot; count it and back off instead.
                shared.metrics.add(&shared.metrics.errors);
                std::thread::sleep(safety_tick);
                continue;
            }
        };
        if shared.draining() {
            break;
        }
        // A pure notify only re-arms the wait timeout (the deposit that
        // sent it updated the collector's deadline): nothing is
        // readable, so skip the dispatch/accept/flush work entirely.
        if result.notified && result.added == 0 {
            continue;
        }
        // Dispatch parked clients BEFORE accepting: a connect storm
        // must not starve a client whose request is already waiting.
        let mut accept_ready = false;
        for event in &events {
            if event.key == LISTENER_KEY {
                accept_ready = true;
                continue;
            }
            let Some(stream) = parked.remove(&event.key) else { continue };
            poller.delete(event.key);
            match tx.try_send(Job::Conn(stream)) {
                Ok(()) => {}
                Err(TrySendError::Full(Job::Conn(stream))) => shared.shed(stream, true),
                Err(_) => return, // workers gone; nothing left to serve
            }
        }
        // Admit new connections, bounded per wakeup and by the client
        // cap. A backlog deeper than the batch is not lost: the
        // level-triggered listener registration reports it again on the
        // next wait, after parked clients have had their turn.
        if accept_ready {
            for _ in 0..ACCEPT_BATCH {
                match listener.try_accept() {
                    Ok(Some(stream)) => {
                        shared.metrics.add(&shared.metrics.accepted);
                        let active = shared.metrics.active.load(Ordering::Relaxed);
                        if active >= shared.max_clients as u64 {
                            shared.shed(stream, false);
                            continue;
                        }
                        let key = next_key;
                        next_key = next_key.wrapping_add(1);
                        if next_key >= LISTENER_KEY {
                            next_key = 0; // skip the reserved keys
                        }
                        shared.metrics.active.fetch_add(1, Ordering::Relaxed);
                        if poller.add(&stream, key).is_err() {
                            shared.metrics.add(&shared.metrics.errors);
                            shared.metrics.connection_done();
                            continue;
                        }
                        parked.insert(key, stream);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        shared.metrics.add(&shared.metrics.errors);
                        break;
                    }
                }
            }
        }
        // Batch deadline: a forming batch whose oldest member has
        // waited the full window stops waiting for company.
        if let Some(batch) = shared.collector.take_due(Instant::now()) {
            match tx.try_send(Job::Batch(batch, FlushReason::Window)) {
                Ok(()) => {}
                Err(TrySendError::Full(Job::Batch(batch, _))) => {
                    // Queue full is overload: report it, don't hide it.
                    for ch in &batch {
                        shared.shed_channel(ch, shared.draining());
                    }
                }
                Err(_) => return,
            }
        }
    }
    // Drain: parked connections have not cost material yet — answer
    // them honestly and close.
    poller.delete(LISTENER_KEY);
    for (key, stream) in parked.drain() {
        poller.delete(key);
        shared.shed(stream, true);
    }
    // A partially-formed batch was *admitted* — close the collector and
    // serve the remainder ahead of the shutdown markers (FIFO), so
    // drain never abandons a queued request.
    let rest = shared.collector.close();
    if !rest.is_empty() {
        // Blocking send: drain must deliver this batch even if the
        // queue is momentarily full of in-flight work.
        if let Err(mpsc::SendError(Job::Batch(batch, _))) =
            tx.send(Job::Batch(rest, FlushReason::Drain))
        {
            for ch in &batch {
                shared.shed_channel(ch, true);
            }
        }
    }
    // FIFO behind every dispatched job: workers finish real work first.
    for _ in 0..shared.workers {
        if tx.send(Job::Shutdown).is_err() {
            break;
        }
    }
}

/// One worker thread: pull a job, run it to completion. All
/// active-gauge accounting happens inside the handlers — a connection
/// that joins a forming batch stays active until its batch is served.
fn worker_loop(worker: usize, rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = { rx.lock().expect("dispatch queue mutex poisoned").recv() };
        match job {
            Ok(Job::Conn(stream)) => serve_connection(worker, stream, shared),
            Ok(Job::Batch(chs, reason)) => serve_batch(worker, chs, reason, shared),
            Ok(Job::Shutdown) | Err(_) => break,
        }
    }
}

/// The whole life of one admitted connection: parse REQ, then serve an
/// inference (dealt contract + revealed share), answer STATS, deposit
/// into the batch collector, or shed. Every terminal path retires the
/// connection from the active gauge; the one non-terminal outcome — the
/// request queued in the collector — leaves it active for the flush.
fn serve_connection(worker: usize, stream: TcpStream, shared: &Shared) {
    // Poller registration switched the shared file description to
    // nonblocking; protocol I/O is blocking with timeouts.
    if stream.set_nonblocking(false).is_err() {
        shared.metrics.add(&shared.metrics.errors);
        shared.metrics.connection_done();
        return;
    }
    let ch = match TcpChannel::from_stream(stream, Side::Server) {
        Ok(ch) => ch,
        Err(_) => {
            shared.metrics.add(&shared.metrics.errors);
            shared.metrics.connection_done();
            return;
        }
    };
    if ch.set_read_timeout(Some(shared.client_timeout)).is_err()
        || ch.set_write_timeout(Some(shared.client_timeout)).is_err()
    {
        shared.metrics.add(&shared.metrics.errors);
        shared.metrics.connection_done();
        return;
    }
    // The readiness event may have been an EOF: the peer connected and
    // left. That is a hangup, not a protocol error.
    let req = match ch.recv_bytes() {
        Ok(frame) => frame,
        Err(_) => {
            shared.metrics.add(&shared.metrics.hangups);
            shared.metrics.connection_done();
            return;
        }
    };
    let Some(kind) = parse_req(&req) else {
        shared.metrics.add(&shared.metrics.errors);
        shared.metrics.connection_done();
        return;
    };
    match kind {
        KIND_STATS => {
            let text = shared.snapshot().render_prometheus();
            let mut frame = Vec::with_capacity(1 + text.len());
            frame.push(TAG_STATS);
            frame.extend_from_slice(text.as_bytes());
            match ch.send_bytes(&frame) {
                Ok(()) => shared.metrics.add(&shared.metrics.stats_served),
                Err(_) => shared.metrics.add(&shared.metrics.errors),
            }
            shared.metrics.connection_done();
        }
        _ if shared.collector.enabled() => {
            match shared.collector.deposit(ch, Instant::now()) {
                // Waiting for company; the armed window deadline or a
                // filling deposit will flush it. Still active, by
                // design. The reactor may be asleep with no deadline
                // armed (this deposit could have opened the window), so
                // wake it to re-arm its wait timeout.
                Deposit::Queued => shared.poller.notify(),
                // This deposit filled the batch (or raced the drain
                // close): serve it right here, on this worker.
                Deposit::Flush(chs, reason) => serve_batch(worker, chs, reason, shared),
            }
        }
        _ => {
            serve_infer_one(worker, &ch, shared);
            shared.metrics.connection_done();
        }
    }
}

/// The unbatched infer path: one pooled material set, one
/// [`c2pi_pi::SessionCore::serve_prepared`] run, solo `OK` frame. This
/// is the *only* serving code when coalescing is disabled — identical
/// to the pre-batching reactor, not merely equivalent.
fn serve_infer_one(worker: usize, ch: &TcpChannel, shared: &Shared) {
    match shared.pool.try_take(worker) {
        Ok(PoolTake::Material(material)) => {
            if ch.send_bytes(&[TAG_OK]).is_err() {
                // The material is consumed (ledger-exact) but the
                // client is gone; the set is lost to this error.
                shared.metrics.add(&shared.metrics.errors);
                return;
            }
            let start = Instant::now();
            let served = shared
                .core
                .serve_prepared(ch, *material)
                .map_err(C2piError::Pi)
                .and_then(|share| ch.send_u64s(share.as_raw()).map_err(pi_err));
            match served {
                Ok(()) => {
                    shared.metrics.latency.record(start.elapsed());
                    shared.metrics.add(&shared.metrics.served);
                }
                Err(_) => shared.metrics.add(&shared.metrics.errors),
            }
        }
        // Starved or shutting down: typed backpressure, no block,
        // no inline dealing.
        Ok(PoolTake::Empty) => {
            shared.metrics.add(&shared.metrics.shed);
            let frame = busy_frame(shared.retry_after, shared.draining());
            let _ = ch.send_bytes(&frame);
        }
        Ok(PoolTake::ShutDown) => {
            shared.metrics.add(&shared.metrics.shed);
            let _ = ch.send_bytes(&busy_frame(shared.retry_after, true));
        }
        Err(_) => shared.metrics.add(&shared.metrics.errors),
    }
}

/// Serves one flushed batch: takes one material set per member (partial
/// stock sheds the uncovered tail with typed backpressure, never
/// silently), announces the fused run with the batch-capable `OK`
/// frame, and runs [`c2pi_pi::SessionCore::serve_batch_prepared`] over
/// all members at once. A batch of one takes [`serve_infer_one`] — the
/// exact solo path.
///
/// Failure granularity is the batch: if any member errors
/// mid-protocol, the whole fused run fails and every member's material
/// is lost (counted per member in `errors`). That is the documented
/// price of fusing rounds; see DESIGN.md §10.
fn serve_batch(worker: usize, chs: Vec<TcpChannel>, reason: FlushReason, shared: &Shared) {
    let k = chs.len();
    if k == 0 {
        return;
    }
    shared.metrics.record_batch(k, reason);
    if k == 1 {
        serve_infer_one(worker, &chs[0], shared);
        shared.metrics.connection_done();
        return;
    }
    let (materials, shut) = match shared.pool.try_take_n(worker, k) {
        Ok(took) => took,
        Err(_) => {
            for _ in 0..k {
                shared.metrics.add(&shared.metrics.errors);
                shared.metrics.connection_done();
            }
            return;
        }
    };
    // Members the stock does not cover are shed, in arrival order from
    // the back — the earliest arrivals (who waited longest) get served.
    let m = materials.len();
    for ch in &chs[m..] {
        shared.shed_channel(ch, shut || shared.draining());
    }
    if m == 0 {
        return;
    }
    let members = &chs[..m];
    let size = (m as u16).to_le_bytes();
    let start = Instant::now();
    let result = members
        .iter()
        .try_for_each(|ch| ch.send_bytes(&[TAG_OK, size[0], size[1]]).map_err(pi_err))
        .and_then(|()| {
            let eps: Vec<&dyn Channel> = members.iter().map(|ch| ch as &dyn Channel).collect();
            shared.core.serve_batch_prepared(&eps, materials).map_err(C2piError::Pi)
        })
        .and_then(|shares| {
            members
                .iter()
                .zip(&shares)
                .try_for_each(|(ch, share)| ch.send_u64s(share.as_raw()).map_err(pi_err))
        });
    match result {
        Ok(()) => {
            // Every member waited for the whole fused run; each records
            // the batch's wall-clock latency.
            let elapsed = start.elapsed();
            for _ in 0..m {
                shared.metrics.latency.record(elapsed);
                shared.metrics.add(&shared.metrics.served);
            }
        }
        Err(_) => {
            for _ in 0..m {
                shared.metrics.add(&shared.metrics.errors);
            }
        }
    }
    for _ in 0..m {
        shared.metrics.connection_done();
    }
}

/// One reply from a [`ReactorServer`] to an inference request.
#[derive(Debug)]
pub enum ReactorReply {
    /// The inference ran; the reconstructed result.
    Served(Box<ClientInference>),
    /// The server shed the request with a typed backpressure frame.
    Busy {
        /// The server's suggested backoff before retrying.
        retry_after: Duration,
        /// Whether the server is draining (retries against it are
        /// pointless; target another replica).
        draining: bool,
    },
}

/// Client for a [`ReactorServer`]: speaks the REQ/OK/BUSY/STATS
/// envelope, then the classic dealt contract. Must wrap a session
/// compiled from **identical** specs and config as the server's.
/// Cloneable and `&self` throughout.
#[derive(Debug, Clone)]
pub struct ReactorClient {
    session: SharedPiSession,
    connect_timeout: Duration,
    retries: usize,
}

impl ReactorClient {
    /// Wraps a shared session compiled identically to the server's.
    pub fn new(session: SharedPiSession) -> Self {
        ReactorClient { session, connect_timeout: Duration::from_secs(10), retries: 8 }
    }

    /// How long [`ReactorClient::request`] keeps retrying the TCP
    /// connect (covers server processes still racing to bind).
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// How many `BUSY` replies [`ReactorClient::infer`] absorbs
    /// (sleeping the server-suggested backoff between attempts) before
    /// giving up with [`C2piError::Overloaded`]. Zero disables retries.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// The wrapped session.
    pub fn session(&self) -> &SharedPiSession {
        &self.session
    }

    /// One request, no retries: connect, send REQ, and either run the
    /// dealt contract to a reconstructed result or report the server's
    /// backpressure verbatim.
    ///
    /// # Errors
    ///
    /// Transport errors, protocol-envelope violations, and the engine
    /// errors of the client party. A `BUSY` reply is **not** an error
    /// here — it returns [`ReactorReply::Busy`].
    pub fn request(&self, addr: impl ToSocketAddrs + Clone, x: &Tensor) -> Result<ReactorReply> {
        let ch =
            TcpChannel::connect_retry(addr, Side::Client, self.connect_timeout).map_err(pi_err)?;
        ch.send_bytes(&req_frame(KIND_INFER)).map_err(pi_err)?;
        let reply = ch.recv_bytes().map_err(pi_err)?;
        match reply.as_slice() {
            // Solo admit, or batch admit carrying how many members
            // share the fused run. The dealt contract after the frame
            // is identical either way — fusing never changes any
            // member's wire content.
            [TAG_OK] | [TAG_OK, _, _] => {
                let batch = match reply.as_slice() {
                    [_, lo, hi] => usize::from(u16::from_le_bytes([*lo, *hi])).max(1),
                    _ => 1,
                };
                let outcome = self.session.request_one(&ch, x).map_err(C2piError::Pi)?;
                let server_share =
                    c2pi_mpc::share::ShareVec::from_raw(ch.recv_u64s().map_err(pi_err)?);
                let raw = c2pi_mpc::share::reconstruct(&outcome.share, &server_share);
                let fp = self.session.config().fixed;
                let logits = fp.decode_tensor(&raw, &outcome.dims).map_err(C2piError::Tensor)?;
                let prediction = logits.argmax().unwrap_or(0);
                Ok(ReactorReply::Served(Box::new(ClientInference {
                    logits,
                    prediction,
                    batch,
                    outcome,
                })))
            }
            [TAG_BUSY, a, b, c, d, draining] => Ok(ReactorReply::Busy {
                retry_after: Duration::from_millis(u64::from(u32::from_le_bytes([*a, *b, *c, *d]))),
                draining: *draining != 0,
            }),
            other => Err(C2piError::BadConfig(format!(
                "unexpected reactor reply ({} bytes, tag {:?})",
                other.len(),
                other.first()
            ))),
        }
    }

    /// One private inference with backpressure handling: on `BUSY`,
    /// sleeps the server-suggested backoff and retries up to the
    /// configured budget; a draining server short-circuits the loop.
    ///
    /// # Errors
    ///
    /// [`C2piError::Overloaded`] when every attempt was shed; otherwise
    /// as [`ReactorClient::request`].
    pub fn infer(&self, addr: impl ToSocketAddrs + Clone, x: &Tensor) -> Result<ClientInference> {
        let mut last_busy = None;
        for attempt in 0..=self.retries {
            match self.request(addr.clone(), x)? {
                ReactorReply::Served(result) => return Ok(*result),
                ReactorReply::Busy { retry_after, draining } => {
                    last_busy = Some((retry_after, draining));
                    if draining {
                        break;
                    }
                    if attempt < self.retries {
                        std::thread::sleep(retry_after);
                    }
                }
            }
        }
        let (retry_after, draining) =
            last_busy.expect("loop ran at least once and every arm either returned or set it");
        Err(C2piError::Overloaded { retry_after, draining })
    }

    /// Fetches the server's Prometheus-style metrics exposition.
    ///
    /// # Errors
    ///
    /// Transport errors, or a malformed reply.
    pub fn stats(&self, addr: impl ToSocketAddrs + Clone) -> Result<String> {
        let ch =
            TcpChannel::connect_retry(addr, Side::Client, self.connect_timeout).map_err(pi_err)?;
        ch.send_bytes(&req_frame(KIND_STATS)).map_err(pi_err)?;
        let reply = ch.recv_bytes().map_err(pi_err)?;
        match reply.split_first() {
            Some((&TAG_STATS, text)) => String::from_utf8(text.to_vec())
                .map_err(|_| C2piError::BadConfig("stats reply is not UTF-8".into())),
            _ => Err(C2piError::BadConfig("unexpected reply to a STATS request".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::metrics::metric_value;
    use super::*;
    use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
    use c2pi_nn::Sequential;
    use c2pi_pi::engine::{specs_of, PiConfig};
    use c2pi_pi::PiSession;

    fn tiny_prefix() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s
    }

    fn shared_session() -> SharedPiSession {
        PiSession::new(&specs_of(&tiny_prefix()), [1, 8, 8], PiConfig::default())
            .unwrap()
            .into_shared()
    }

    fn server_core() -> Arc<SessionCore> {
        Arc::clone(shared_session().core())
    }

    #[test]
    fn reactor_serves_concurrent_clients_with_correct_predictions() {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 3,
                shards: 2,
                pool_low: 2,
                pool_high: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let clients = 3;
        let iters = 2;
        std::thread::scope(|scope| {
            for t in 0..clients {
                scope.spawn(move || {
                    let client = ReactorClient::new(shared_session());
                    for i in 0..iters {
                        let x =
                            Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, (100 * t + i) as u64);
                        let got = client.infer(addr, &x).unwrap();
                        let plain = tiny_prefix().forward_eval(&x).unwrap();
                        for (a, b) in got.logits.as_slice().iter().zip(plain.as_slice()) {
                            assert!((a - b).abs() < 0.02, "{a} vs {b}");
                        }
                    }
                });
            }
        });
        let snap = server.metrics_snapshot();
        assert_eq!(snap.served, (clients * iters) as u64);
        assert_eq!(snap.errors, 0);
        assert_eq!(snap.shards.len(), 2);
        let ledger = server.pool().ledger();
        assert!(ledger.consumed >= (clients * iters) as u64);
        assert_eq!(
            ledger.generated_offline + ledger.generated_inline,
            ledger.consumed + ledger.available
        );
        assert_eq!(ledger.generated_inline, 0, "the reactor never deals inline");
        server.drain().unwrap();
    }

    #[test]
    fn starved_pool_sheds_with_busy_and_retry_succeeds_after_restock() {
        // pool_low = 0: no replenisher, the pool only holds what we deal.
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 2,
                pool_low: 0,
                pool_high: 0,
                retry_after: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let client = ReactorClient::new(shared_session()).with_retries(1);
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 9);

        // Starved: the typed frame comes back, then the retry budget
        // runs out as Overloaded (not a hang, not a connection reset).
        match client.request(addr, &x).unwrap() {
            ReactorReply::Busy { retry_after, draining } => {
                assert_eq!(retry_after, Duration::from_millis(5));
                assert!(!draining);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        match client.infer(addr, &x) {
            Err(C2piError::Overloaded { draining: false, .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(server.shed() >= 3, "one request + two infer attempts shed");

        // Restock → the same client's retry loop now succeeds. The
        // served counter trails the client's last byte by a beat;
        // settle before asserting.
        server.preprocess(1).unwrap();
        client.infer(addr, &x).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.served() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.served(), 1);
        server.drain().unwrap();
    }

    #[test]
    fn stats_endpoint_reports_counters_and_shard_depths() {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 2,
                shards: 2,
                pool_low: 0,
                pool_high: 0,
                ..Default::default()
            },
        )
        .unwrap();
        server.preprocess(3).unwrap();
        let client = ReactorClient::new(shared_session());
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 3);
        client.infer(server.local_addr(), &x).unwrap();
        let text = client.stats(server.local_addr()).unwrap();
        assert_eq!(metric_value(&text, "c2pi_served_total"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_workers"), Some(2.0));
        assert_eq!(metric_value(&text, "c2pi_draining"), Some(0.0));
        let d0 = metric_value(&text, "c2pi_shard_pool_depth{shard=\"0\"}").unwrap();
        let d1 = metric_value(&text, "c2pi_shard_pool_depth{shard=\"1\"}").unwrap();
        assert_eq!(d0 + d1, 2.0, "3 dealt, 1 consumed");
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"+Inf\"}"),
            Some(1.0)
        );
        let snap = server.metrics_snapshot();
        assert_eq!(snap.stats_served, 1);
        server.drain().unwrap();
    }

    #[test]
    fn drain_flushes_segmented_stores_for_a_warm_boot() {
        let base =
            std::env::temp_dir().join(format!("c2pi-reactor-drain-{}.bin", std::process::id()));
        for i in 0..2 {
            let _ = std::fs::remove_file(ShardedMaterialPool::segment_path(&base, i));
        }
        let cfg = ReactorConfig {
            workers: 2,
            shards: 2,
            pool_low: 0,
            pool_high: 0,
            persist_path: Some(base.clone()),
            ..Default::default()
        };
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 55);

        // First life: deal 3, serve 1, drain (flushes both segments).
        {
            let server = ReactorServer::bind(server_core(), "127.0.0.1:0", cfg.clone()).unwrap();
            assert_eq!(server.warm_boot().unwrap().restored, 0);
            server.preprocess(3).unwrap();
            let client = ReactorClient::new(shared_session());
            client.infer(server.local_addr(), &x).unwrap();
            server.drain().unwrap();
        }

        // Second life: the two unconsumed sets come back across the
        // segments and serve without any new generation.
        let server = ReactorServer::bind(server_core(), "127.0.0.1:0", cfg).unwrap();
        assert_eq!(server.warm_boot().unwrap().restored, 2);
        let client = ReactorClient::new(shared_session());
        client.infer(server.local_addr(), &x).unwrap();
        client.infer(server.local_addr(), &x).unwrap();
        let ledger = server.pool().ledger();
        assert_eq!(ledger.generated_offline, 3, "never re-preprocessed");
        assert_eq!(ledger.generated_inline, 0);
        assert_eq!(ledger.consumed, 3);
        assert_eq!(ledger.restored, 2);
        server.drain().unwrap();
        for i in 0..2 {
            std::fs::remove_file(ShardedMaterialPool::segment_path(&base, i)).unwrap();
        }
    }

    #[test]
    fn draining_server_tells_clients_not_to_retry() {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig { workers: 1, pool_low: 0, pool_high: 0, ..Default::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        server.drain().unwrap();
        // The listener is gone after drain; a fresh connect must fail
        // fast rather than be served.
        let client =
            ReactorClient::new(shared_session()).with_connect_timeout(Duration::from_millis(200));
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        assert!(client.request(addr, &x).is_err());
    }

    #[test]
    fn malformed_requests_are_counted_not_fatal() {
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig { workers: 1, pool_low: 0, pool_high: 0, ..Default::default() },
        )
        .unwrap();
        let ch =
            TcpChannel::connect_retry(server.local_addr(), Side::Client, Duration::from_secs(5))
                .unwrap();
        ch.send_bytes(b"not a request").unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics_snapshot().errors == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = server.metrics_snapshot();
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.served, 0);
        // The server still serves well-formed traffic afterwards.
        server.preprocess(1).unwrap();
        let client = ReactorClient::new(shared_session());
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 4);
        client.infer(server.local_addr(), &x).unwrap();
        server.drain().unwrap();
    }

    /// The headline capacity claim: 256 truly concurrent client
    /// connections against one reactor, all in flight at once. The pool
    /// holds 32 sets, so the wave splits exactly into 32 serves and 224
    /// typed sheds, the active-connection gauge returns to zero (no
    /// connection leaks), and the server stays fully live afterwards.
    #[test]
    fn reactor_sustains_256_concurrent_clients() {
        use std::sync::atomic::AtomicUsize;
        const CLIENTS: usize = 256;
        const STOCK: usize = 32;
        let server = ReactorServer::bind(
            server_core(),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 4,
                shards: 4,
                max_clients: 2 * CLIENTS,
                queue_depth: CLIENTS,
                pool_low: 0,
                pool_high: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        server.preprocess(STOCK).unwrap();
        let session = shared_session();
        let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 9);
        let served = AtomicUsize::new(0);
        let busy = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let session = session.clone();
                let (served, busy, x) = (&served, &busy, &x);
                scope.spawn(move || {
                    let client =
                        ReactorClient::new(session).with_connect_timeout(Duration::from_secs(60));
                    match client.request(addr, x).unwrap() {
                        ReactorReply::Served(_) => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        ReactorReply::Busy { draining, .. } => {
                            assert!(!draining, "a live server must not claim to drain");
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), STOCK, "every pooled set served once");
        assert_eq!(busy.load(Ordering::Relaxed), CLIENTS - STOCK, "the rest shed with BUSY");

        // Server-side bookkeeping trails the last client reply by a
        // beat; settle before asserting the counters and the gauge.
        let deadline = Instant::now() + Duration::from_secs(5);
        let expect_shed = (CLIENTS - STOCK) as u64;
        let mut snap = server.metrics_snapshot();
        while (snap.served < STOCK as u64 || snap.shed < expect_shed || snap.active > 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
            snap = server.metrics_snapshot();
        }
        assert_eq!(snap.served, STOCK as u64);
        assert_eq!(snap.shed, expect_shed);
        assert_eq!(snap.errors, 0, "a full-capacity wave is not an error");
        assert_eq!(snap.active, 0, "no connection leaks after the wave");
        assert_eq!(snap.shards.len(), 4);
        let consumed: u64 = snap.shards.iter().map(|s| s.consumed).sum();
        assert_eq!(consumed, STOCK as u64, "shard consumption sums to the served total");

        // The wave left the server healthy: restock and serve again.
        server.preprocess(1).unwrap();
        let client = ReactorClient::new(shared_session());
        client.infer(addr, &x).unwrap();
        server.drain().unwrap();
    }
}
