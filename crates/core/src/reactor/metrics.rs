//! The reactor's observability surface: lock-free counters, an
//! online-latency histogram, and the Prometheus-style text exposition
//! served on the `STATS` frame.
//!
//! Counters are plain relaxed atomics — serving workers bump them on
//! the hot path, so nothing here takes a lock or allocates. The
//! rendered exposition follows the Prometheus text format closely
//! enough to scrape (`# HELP`/`# TYPE` comments, `_total` counters,
//! cumulative `_bucket{le=…}` histogram lines), and closely enough to
//! grep in CI, which is the consumer this repo actually has.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in milliseconds. Chosen to bracket
/// the measured online latencies (Cheetah ~22 ms, Delphi ~67 ms in
/// memory; hundreds of ms under load or simulated WAN).
pub const LATENCY_BUCKETS_MS: [u64; 13] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// Fixed-bucket latency histogram (log-spaced bounds plus +Inf).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// One counter per bound in [`LATENCY_BUCKETS_MS`] plus a final
    /// +Inf bucket. Non-cumulative internally; the exposition
    /// accumulates.
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let ms = latency.as_millis() as u64;
        let at =
            LATENCY_BUCKETS_MS.iter().position(|&b| ms <= b).unwrap_or(LATENCY_BUCKETS_MS.len());
        self.buckets[at].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is +Inf.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_seconds: f64,
}

/// Shared serving counters, updated lock-free by the reactor and every
/// worker.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    /// Connections accepted by the reactor.
    pub(crate) accepted: AtomicU64,
    /// Inferences served to completion.
    pub(crate) served: AtomicU64,
    /// Requests shed with a typed backpressure frame (pool starved,
    /// dispatch queue full, or draining).
    pub(crate) shed: AtomicU64,
    /// Connections that failed mid-protocol.
    pub(crate) errors: AtomicU64,
    /// Connections closed by the peer before a request arrived.
    pub(crate) hangups: AtomicU64,
    /// `STATS` requests answered.
    pub(crate) stats_served: AtomicU64,
    /// Connections currently registered, queued or in service.
    pub(crate) active: AtomicU64,
    /// Whether the server is draining (set once, never cleared).
    pub(crate) draining: AtomicBool,
    /// Online latency of served inferences (take → share revealed).
    pub(crate) latency: LatencyHistogram,
}

impl ReactorMetrics {
    pub(crate) fn add(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_done(&self) {
        // `active` can transiently race to 0 during shutdown teardown;
        // saturate rather than wrap.
        let _ = self
            .active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }
}

/// One shard's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Ready material sets pooled right now.
    pub depth: usize,
    /// Material consumed through this shard (its own takes plus steals
    /// against it).
    pub consumed: u64,
    /// Sets dealt offline into this shard.
    pub generated_offline: u64,
    /// Sets restored from this shard's store segment at warm boot.
    pub restored: u64,
}

/// Point-in-time view of the whole serving surface — what the `STATS`
/// frame carries, rendered by [`MetricsSnapshot::render_prometheus`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Worker threads.
    pub workers: usize,
    /// Connections accepted.
    pub accepted: u64,
    /// Inferences served.
    pub served: u64,
    /// Requests shed with backpressure frames.
    pub shed: u64,
    /// Mid-protocol failures.
    pub errors: u64,
    /// Peer hang-ups before a request.
    pub hangups: u64,
    /// `STATS` requests answered.
    pub stats_served: u64,
    /// Connections currently registered, queued or in service.
    pub active: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Cross-shard work steals.
    pub steals: u64,
    /// Material restored from store segments at warm boot.
    pub restored: u64,
    /// Per-shard pool state.
    pub shards: Vec<ShardSnapshot>,
    /// Online-latency histogram of served inferences.
    pub latency: HistogramSnapshot,
}

impl MetricsSnapshot {
    pub(crate) fn gather(
        metrics: &ReactorMetrics,
        workers: usize,
        steals: u64,
        shards: Vec<ShardSnapshot>,
    ) -> MetricsSnapshot {
        let restored = shards.iter().map(|s| s.restored).sum();
        MetricsSnapshot {
            workers,
            accepted: metrics.accepted.load(Ordering::Relaxed),
            served: metrics.served.load(Ordering::Relaxed),
            shed: metrics.shed.load(Ordering::Relaxed),
            errors: metrics.errors.load(Ordering::Relaxed),
            hangups: metrics.hangups.load(Ordering::Relaxed),
            stats_served: metrics.stats_served.load(Ordering::Relaxed),
            active: metrics.active.load(Ordering::Relaxed),
            draining: metrics.draining.load(Ordering::Relaxed),
            steals,
            restored,
            shards,
            latency: metrics.latency.snapshot(),
        }
    }

    /// Total pooled material across shards.
    pub fn pooled(&self) -> usize {
        self.shards.iter().map(|s| s.depth).sum()
    }

    /// Renders the Prometheus-style text exposition.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("c2pi_accepted_total", "Connections accepted by the reactor.", self.accepted);
        counter("c2pi_served_total", "Online inferences served to completion.", self.served);
        counter("c2pi_shed_total", "Requests shed with typed backpressure frames.", self.shed);
        counter("c2pi_errors_total", "Connections that failed mid-protocol.", self.errors);
        counter("c2pi_hangups_total", "Peers gone before sending a request.", self.hangups);
        counter("c2pi_stats_requests_total", "STATS requests answered.", self.stats_served);
        counter("c2pi_pool_steals_total", "Cross-shard work-stealing takes.", self.steals);
        counter(
            "c2pi_pool_restored_total",
            "Material restored from store segments.",
            self.restored,
        );
        let _ = writeln!(
            out,
            "# HELP c2pi_active_connections Connections registered, queued or in service."
        );
        let _ = writeln!(out, "# TYPE c2pi_active_connections gauge");
        let _ = writeln!(out, "c2pi_active_connections {}", self.active);
        let _ =
            writeln!(out, "# HELP c2pi_draining Whether the server is draining (1) or live (0).");
        let _ = writeln!(out, "# TYPE c2pi_draining gauge");
        let _ = writeln!(out, "c2pi_draining {}", u64::from(self.draining));
        let _ = writeln!(out, "# HELP c2pi_workers Serving worker threads.");
        let _ = writeln!(out, "# TYPE c2pi_workers gauge");
        let _ = writeln!(out, "c2pi_workers {}", self.workers);
        let _ = writeln!(out, "# HELP c2pi_shard_pool_depth Ready material sets pooled per shard.");
        let _ = writeln!(out, "# TYPE c2pi_shard_pool_depth gauge");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "c2pi_shard_pool_depth{{shard=\"{i}\"}} {}", s.depth);
        }
        let _ = writeln!(out, "# HELP c2pi_shard_consumed_total Material consumed per shard.");
        let _ = writeln!(out, "# TYPE c2pi_shard_consumed_total counter");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "c2pi_shard_consumed_total{{shard=\"{i}\"}} {}", s.consumed);
        }
        let _ = writeln!(
            out,
            "# HELP c2pi_online_latency_seconds Online latency of served inferences."
        );
        let _ = writeln!(out, "# TYPE c2pi_online_latency_seconds histogram");
        let mut cumulative = 0u64;
        for (bound_ms, n) in LATENCY_BUCKETS_MS.iter().zip(&self.latency.buckets) {
            cumulative += n;
            let _ = writeln!(
                out,
                "c2pi_online_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                *bound_ms as f64 / 1000.0
            );
        }
        let _ = writeln!(
            out,
            "c2pi_online_latency_seconds_bucket{{le=\"+Inf\"}} {}",
            self.latency.count
        );
        let _ = writeln!(out, "c2pi_online_latency_seconds_sum {:.6}", self.latency.sum_seconds);
        let _ = writeln!(out, "c2pi_online_latency_seconds_count {}", self.latency.count);
        out
    }
}

/// Looks up one sample in a Prometheus-style exposition: the value on
/// the line whose metric name (labels included) is exactly `name`.
/// The CI smoke harness greps the text; tests use this to assert on it.
pub fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_accumulate_in_the_exposition() {
        let metrics = ReactorMetrics::default();
        metrics.latency.record(Duration::from_millis(3)); // ≤5ms bucket
        metrics.latency.record(Duration::from_millis(30)); // ≤50ms bucket
        metrics.latency.record(Duration::from_secs(60)); // +Inf
        let snap = MetricsSnapshot::gather(&metrics, 2, 0, vec![]);
        let text = snap.render_prometheus();
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"0.002\"}"),
            Some(0.0)
        );
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"0.005\"}"),
            Some(1.0)
        );
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"0.05\"}"),
            Some(2.0)
        );
        assert_eq!(metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"10\"}"), Some(2.0));
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"+Inf\"}"),
            Some(3.0)
        );
        assert_eq!(metric_value(&text, "c2pi_online_latency_seconds_count"), Some(3.0));
        assert!(snap.latency.sum_seconds > 60.0);
    }

    #[test]
    fn exposition_carries_counters_and_per_shard_depths() {
        let metrics = ReactorMetrics::default();
        metrics.add(&metrics.served);
        metrics.add(&metrics.served);
        metrics.add(&metrics.shed);
        let shards = vec![
            ShardSnapshot { depth: 4, consumed: 7, generated_offline: 9, restored: 2 },
            ShardSnapshot { depth: 1, consumed: 3, generated_offline: 4, restored: 0 },
        ];
        let snap = MetricsSnapshot::gather(&metrics, 3, 5, shards);
        assert_eq!(snap.pooled(), 5);
        assert_eq!(snap.restored, 2);
        let text = snap.render_prometheus();
        assert_eq!(metric_value(&text, "c2pi_served_total"), Some(2.0));
        assert_eq!(metric_value(&text, "c2pi_shed_total"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_pool_steals_total"), Some(5.0));
        assert_eq!(metric_value(&text, "c2pi_shard_pool_depth{shard=\"0\"}"), Some(4.0));
        assert_eq!(metric_value(&text, "c2pi_shard_pool_depth{shard=\"1\"}"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_shard_consumed_total{shard=\"1\"}"), Some(3.0));
        assert_eq!(metric_value(&text, "c2pi_workers"), Some(3.0));
        assert_eq!(metric_value(&text, "c2pi_draining"), Some(0.0));
        assert_eq!(metric_value(&text, "nonexistent_metric"), None);
    }
}
