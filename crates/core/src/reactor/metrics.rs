//! The reactor's observability surface: lock-free counters, an
//! online-latency histogram, and the Prometheus-style text exposition
//! served on the `STATS` frame.
//!
//! Counters are plain relaxed atomics — serving workers bump them on
//! the hot path, so nothing here takes a lock or allocates. The
//! rendered exposition follows the Prometheus text format closely
//! enough to scrape (`# HELP`/`# TYPE` comments, `_total` counters,
//! cumulative `_bucket{le=…}` histogram lines), and closely enough to
//! grep in CI, which is the consumer this repo actually has.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in milliseconds. Chosen to bracket
/// the measured online latencies (Cheetah ~22 ms, Delphi ~67 ms in
/// memory; hundreds of ms under load or simulated WAN).
pub const LATENCY_BUCKETS_MS: [u64; 13] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// Fixed-bucket latency histogram (log-spaced bounds plus +Inf).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// One counter per bound in [`LATENCY_BUCKETS_MS`] plus a final
    /// +Inf bucket. Non-cumulative internally; the exposition
    /// accumulates.
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let ms = latency.as_millis() as u64;
        let at =
            LATENCY_BUCKETS_MS.iter().position(|&b| ms <= b).unwrap_or(LATENCY_BUCKETS_MS.len());
        self.buckets[at].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is +Inf.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_seconds: f64,
}

/// Batch-size histogram bucket upper bounds (members per fused run).
/// Powers of two up to the largest `max_batch` a deployment plausibly
/// configures; a batch of 1 is the unbatched path.
pub const BATCH_SIZE_BUCKETS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Fixed-bucket histogram of fused-batch sizes.
#[derive(Debug, Default)]
pub struct BatchSizeHistogram {
    buckets: [AtomicU64; BATCH_SIZE_BUCKETS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

impl BatchSizeHistogram {
    /// Records one fused run of `size` members.
    pub fn record(&self, size: usize) {
        let size = size as u64;
        let at =
            BATCH_SIZE_BUCKETS.iter().position(|&b| size <= b).unwrap_or(BATCH_SIZE_BUCKETS.len());
        self.buckets[at].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(size, Ordering::Relaxed);
    }

    fn snapshot(&self) -> BatchSizeSnapshot {
        BatchSizeSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_members: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`BatchSizeHistogram`].
#[derive(Debug, Clone, Default)]
pub struct BatchSizeSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is +Inf.
    pub buckets: Vec<u64>,
    /// Fused runs executed.
    pub count: u64,
    /// Total members across all fused runs (`sum / count` is the mean
    /// batch size).
    pub sum_members: u64,
}

/// Shared serving counters, updated lock-free by the reactor and every
/// worker.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    /// Connections accepted by the reactor.
    pub(crate) accepted: AtomicU64,
    /// Inferences served to completion.
    pub(crate) served: AtomicU64,
    /// Requests shed with a typed backpressure frame (pool starved,
    /// dispatch queue full, or draining).
    pub(crate) shed: AtomicU64,
    /// Connections that failed mid-protocol.
    pub(crate) errors: AtomicU64,
    /// Connections closed by the peer before a request arrived.
    pub(crate) hangups: AtomicU64,
    /// `STATS` requests answered.
    pub(crate) stats_served: AtomicU64,
    /// Connections currently registered, queued or in service.
    pub(crate) active: AtomicU64,
    /// Whether the server is draining (set once, never cleared).
    pub(crate) draining: AtomicBool,
    /// Online latency of served inferences (take → share revealed).
    pub(crate) latency: LatencyHistogram,
    /// Fused batch runs executed (a batch of 1 counts too).
    pub(crate) batches: AtomicU64,
    /// Members served in genuinely fused runs (batches of ≥ 2) — the
    /// coalescing win the smoke test asserts on.
    pub(crate) coalesced: AtomicU64,
    /// Batches flushed because they reached `max_batch`.
    pub(crate) flush_full: AtomicU64,
    /// Batches flushed because the oldest member's window elapsed.
    pub(crate) flush_window: AtomicU64,
    /// Partial batches flushed (and served) at drain.
    pub(crate) flush_drain: AtomicU64,
    /// Members per fused run.
    pub(crate) batch_size: BatchSizeHistogram,
}

impl ReactorMetrics {
    pub(crate) fn add(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one fused run of `size` members flushed for `reason`
    /// (see [`crate::reactor::batch::FlushReason`]): the run counter,
    /// the size histogram, the per-reason flush counter, and — for
    /// genuine fusions (`size ≥ 2`) — the coalesced-member counter.
    pub(crate) fn record_batch(&self, size: usize, reason: crate::reactor::batch::FlushReason) {
        use crate::reactor::batch::FlushReason;
        self.add(&self.batches);
        self.batch_size.record(size);
        self.add(match reason {
            FlushReason::Full => &self.flush_full,
            FlushReason::Window => &self.flush_window,
            FlushReason::Drain => &self.flush_drain,
        });
        if size >= 2 {
            self.coalesced.fetch_add(size as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn connection_done(&self) {
        // `active` can transiently race to 0 during shutdown teardown;
        // saturate rather than wrap.
        let _ = self
            .active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }
}

/// One shard's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Ready material sets pooled right now.
    pub depth: usize,
    /// Material consumed through this shard (its own takes plus steals
    /// against it).
    pub consumed: u64,
    /// Sets dealt offline into this shard.
    pub generated_offline: u64,
    /// Sets restored from this shard's store segment at warm boot.
    pub restored: u64,
}

/// Point-in-time view of the whole serving surface — what the `STATS`
/// frame carries, rendered by [`MetricsSnapshot::render_prometheus`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Worker threads.
    pub workers: usize,
    /// Connections accepted.
    pub accepted: u64,
    /// Inferences served.
    pub served: u64,
    /// Requests shed with backpressure frames.
    pub shed: u64,
    /// Mid-protocol failures.
    pub errors: u64,
    /// Peer hang-ups before a request.
    pub hangups: u64,
    /// `STATS` requests answered.
    pub stats_served: u64,
    /// Connections currently registered, queued or in service.
    pub active: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Cross-shard work steals.
    pub steals: u64,
    /// Material restored from store segments at warm boot.
    pub restored: u64,
    /// Per-shard pool state.
    pub shards: Vec<ShardSnapshot>,
    /// Online-latency histogram of served inferences.
    pub latency: HistogramSnapshot,
    /// Fused batch runs executed.
    pub batches: u64,
    /// Members served in batches of ≥ 2.
    pub coalesced: u64,
    /// Batch flushes by reason: (full, window, drain).
    pub flushes: (u64, u64, u64),
    /// Members-per-fused-run histogram.
    pub batch_size: BatchSizeSnapshot,
    /// Requests currently queued in the batch collector, waiting for
    /// their coalescing window. Filled in by the reactor's snapshot
    /// (the collector lives outside [`ReactorMetrics`]); zero wherever
    /// there is no collector.
    pub batch_pending: u64,
    /// Readiness-poller backend name (`"epoll"` or `"peek"`). Filled in
    /// by the reactor's snapshot (the poller lives outside
    /// [`ReactorMetrics`]); `"none"` wherever there is no poller.
    pub poll_backend: &'static str,
    /// Times the reactor's poller wait has returned. Filled in by the
    /// reactor's snapshot, like [`MetricsSnapshot::poll_backend`].
    pub poll_wakeups: u64,
    /// Readiness events those waits reported in total. The ratio
    /// `poll_events / poll_wakeups` is the payload per wakeup — near
    /// zero means the loop is spinning on spurious ticks, which is
    /// exactly what the epoll backend exists to eliminate.
    pub poll_events: u64,
}

impl MetricsSnapshot {
    pub(crate) fn gather(
        metrics: &ReactorMetrics,
        workers: usize,
        steals: u64,
        shards: Vec<ShardSnapshot>,
    ) -> MetricsSnapshot {
        let restored = shards.iter().map(|s| s.restored).sum();
        MetricsSnapshot {
            workers,
            accepted: metrics.accepted.load(Ordering::Relaxed),
            served: metrics.served.load(Ordering::Relaxed),
            shed: metrics.shed.load(Ordering::Relaxed),
            errors: metrics.errors.load(Ordering::Relaxed),
            hangups: metrics.hangups.load(Ordering::Relaxed),
            stats_served: metrics.stats_served.load(Ordering::Relaxed),
            active: metrics.active.load(Ordering::Relaxed),
            draining: metrics.draining.load(Ordering::Relaxed),
            steals,
            restored,
            shards,
            latency: metrics.latency.snapshot(),
            batches: metrics.batches.load(Ordering::Relaxed),
            coalesced: metrics.coalesced.load(Ordering::Relaxed),
            flushes: (
                metrics.flush_full.load(Ordering::Relaxed),
                metrics.flush_window.load(Ordering::Relaxed),
                metrics.flush_drain.load(Ordering::Relaxed),
            ),
            batch_size: metrics.batch_size.snapshot(),
            batch_pending: 0,
            poll_backend: "none",
            poll_wakeups: 0,
            poll_events: 0,
        }
    }

    /// Total pooled material across shards.
    pub fn pooled(&self) -> usize {
        self.shards.iter().map(|s| s.depth).sum()
    }

    /// Renders the Prometheus-style text exposition.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("c2pi_accepted_total", "Connections accepted by the reactor.", self.accepted);
        counter("c2pi_served_total", "Online inferences served to completion.", self.served);
        counter("c2pi_shed_total", "Requests shed with typed backpressure frames.", self.shed);
        counter("c2pi_errors_total", "Connections that failed mid-protocol.", self.errors);
        counter("c2pi_hangups_total", "Peers gone before sending a request.", self.hangups);
        counter("c2pi_stats_requests_total", "STATS requests answered.", self.stats_served);
        counter("c2pi_pool_steals_total", "Cross-shard work-stealing takes.", self.steals);
        counter(
            "c2pi_pool_restored_total",
            "Material restored from store segments.",
            self.restored,
        );
        let _ = writeln!(
            out,
            "# HELP c2pi_active_connections Connections registered, queued or in service."
        );
        let _ = writeln!(out, "# TYPE c2pi_active_connections gauge");
        let _ = writeln!(out, "c2pi_active_connections {}", self.active);
        let _ =
            writeln!(out, "# HELP c2pi_draining Whether the server is draining (1) or live (0).");
        let _ = writeln!(out, "# TYPE c2pi_draining gauge");
        let _ = writeln!(out, "c2pi_draining {}", u64::from(self.draining));
        let _ = writeln!(out, "# HELP c2pi_workers Serving worker threads.");
        let _ = writeln!(out, "# TYPE c2pi_workers gauge");
        let _ = writeln!(out, "c2pi_workers {}", self.workers);
        let _ = writeln!(out, "# HELP c2pi_shard_pool_depth Ready material sets pooled per shard.");
        let _ = writeln!(out, "# TYPE c2pi_shard_pool_depth gauge");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "c2pi_shard_pool_depth{{shard=\"{i}\"}} {}", s.depth);
        }
        let _ = writeln!(out, "# HELP c2pi_shard_consumed_total Material consumed per shard.");
        let _ = writeln!(out, "# TYPE c2pi_shard_consumed_total counter");
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "c2pi_shard_consumed_total{{shard=\"{i}\"}} {}", s.consumed);
        }
        let _ = writeln!(
            out,
            "# HELP c2pi_online_latency_seconds Online latency of served inferences."
        );
        let _ = writeln!(out, "# TYPE c2pi_online_latency_seconds histogram");
        let mut cumulative = 0u64;
        for (bound_ms, n) in LATENCY_BUCKETS_MS.iter().zip(&self.latency.buckets) {
            cumulative += n;
            let _ = writeln!(
                out,
                "c2pi_online_latency_seconds_bucket{{le=\"{}\"}} {cumulative}",
                *bound_ms as f64 / 1000.0
            );
        }
        let _ = writeln!(
            out,
            "c2pi_online_latency_seconds_bucket{{le=\"+Inf\"}} {}",
            self.latency.count
        );
        let _ = writeln!(out, "c2pi_online_latency_seconds_sum {:.6}", self.latency.sum_seconds);
        let _ = writeln!(out, "c2pi_online_latency_seconds_count {}", self.latency.count);
        let _ = writeln!(out, "# HELP c2pi_batches_total Fused batch protocol runs executed.");
        let _ = writeln!(out, "# TYPE c2pi_batches_total counter");
        let _ = writeln!(out, "c2pi_batches_total {}", self.batches);
        let _ = writeln!(
            out,
            "# HELP c2pi_coalesced_total Inferences served inside fused batches of two or more."
        );
        let _ = writeln!(out, "# TYPE c2pi_coalesced_total counter");
        let _ = writeln!(out, "c2pi_coalesced_total {}", self.coalesced);
        let _ = writeln!(
            out,
            "# HELP c2pi_batch_pending Requests waiting in the batch collector for their window."
        );
        let _ = writeln!(out, "# TYPE c2pi_batch_pending gauge");
        let _ = writeln!(out, "c2pi_batch_pending {}", self.batch_pending);
        let _ = writeln!(out, "# HELP c2pi_batch_flush_total Batch flushes by trigger.");
        let _ = writeln!(out, "# TYPE c2pi_batch_flush_total counter");
        let (full, window, drain) = self.flushes;
        let _ = writeln!(out, "c2pi_batch_flush_total{{reason=\"full\"}} {full}");
        let _ = writeln!(out, "c2pi_batch_flush_total{{reason=\"window\"}} {window}");
        let _ = writeln!(out, "c2pi_batch_flush_total{{reason=\"drain\"}} {drain}");
        let _ = writeln!(out, "# HELP c2pi_batch_size Members per fused batch run.");
        let _ = writeln!(out, "# TYPE c2pi_batch_size histogram");
        let mut cumulative = 0u64;
        for (bound, n) in BATCH_SIZE_BUCKETS.iter().zip(&self.batch_size.buckets) {
            cumulative += n;
            let _ = writeln!(out, "c2pi_batch_size_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "c2pi_batch_size_bucket{{le=\"+Inf\"}} {}", self.batch_size.count);
        let _ = writeln!(out, "c2pi_batch_size_sum {}", self.batch_size.sum_members);
        let _ = writeln!(out, "c2pi_batch_size_count {}", self.batch_size.count);
        let _ = writeln!(
            out,
            "# HELP c2pi_poll_backend Readiness-poller backend in use (1 on the active label)."
        );
        let _ = writeln!(out, "# TYPE c2pi_poll_backend gauge");
        let _ = writeln!(out, "c2pi_poll_backend{{backend=\"{}\"}} 1", self.poll_backend);
        let _ = writeln!(
            out,
            "# HELP c2pi_poll_wakeups_total Times the reactor's poller wait returned."
        );
        let _ = writeln!(out, "# TYPE c2pi_poll_wakeups_total counter");
        let _ = writeln!(out, "c2pi_poll_wakeups_total {}", self.poll_wakeups);
        let _ = writeln!(
            out,
            "# HELP c2pi_poll_events_total Readiness events reported across all poller waits."
        );
        let _ = writeln!(out, "# TYPE c2pi_poll_events_total counter");
        let _ = writeln!(out, "c2pi_poll_events_total {}", self.poll_events);
        out
    }
}

/// Looks up one sample in a Prometheus-style exposition: the value on
/// the line whose metric name (labels included) is exactly `name`.
/// The CI smoke harness greps the text; tests use this to assert on it.
pub fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_accumulate_in_the_exposition() {
        let metrics = ReactorMetrics::default();
        metrics.latency.record(Duration::from_millis(3)); // ≤5ms bucket
        metrics.latency.record(Duration::from_millis(30)); // ≤50ms bucket
        metrics.latency.record(Duration::from_secs(60)); // +Inf
        let snap = MetricsSnapshot::gather(&metrics, 2, 0, vec![]);
        let text = snap.render_prometheus();
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"0.002\"}"),
            Some(0.0)
        );
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"0.005\"}"),
            Some(1.0)
        );
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"0.05\"}"),
            Some(2.0)
        );
        assert_eq!(metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"10\"}"), Some(2.0));
        assert_eq!(
            metric_value(&text, "c2pi_online_latency_seconds_bucket{le=\"+Inf\"}"),
            Some(3.0)
        );
        assert_eq!(metric_value(&text, "c2pi_online_latency_seconds_count"), Some(3.0));
        assert!(snap.latency.sum_seconds > 60.0);
    }

    #[test]
    fn exposition_carries_counters_and_per_shard_depths() {
        let metrics = ReactorMetrics::default();
        metrics.add(&metrics.served);
        metrics.add(&metrics.served);
        metrics.add(&metrics.shed);
        let shards = vec![
            ShardSnapshot { depth: 4, consumed: 7, generated_offline: 9, restored: 2 },
            ShardSnapshot { depth: 1, consumed: 3, generated_offline: 4, restored: 0 },
        ];
        let snap = MetricsSnapshot::gather(&metrics, 3, 5, shards);
        assert_eq!(snap.pooled(), 5);
        assert_eq!(snap.restored, 2);
        let text = snap.render_prometheus();
        assert_eq!(metric_value(&text, "c2pi_served_total"), Some(2.0));
        assert_eq!(metric_value(&text, "c2pi_shed_total"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_pool_steals_total"), Some(5.0));
        assert_eq!(metric_value(&text, "c2pi_shard_pool_depth{shard=\"0\"}"), Some(4.0));
        assert_eq!(metric_value(&text, "c2pi_shard_pool_depth{shard=\"1\"}"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_shard_consumed_total{shard=\"1\"}"), Some(3.0));
        assert_eq!(metric_value(&text, "c2pi_workers"), Some(3.0));
        assert_eq!(metric_value(&text, "c2pi_draining"), Some(0.0));
        assert_eq!(metric_value(&text, "nonexistent_metric"), None);
    }

    #[test]
    fn poll_metrics_reach_the_exposition() {
        let metrics = ReactorMetrics::default();
        let mut snap = MetricsSnapshot::gather(&metrics, 1, 0, vec![]);
        // The reactor overlays the poller's state after gather, exactly
        // like batch_pending; a poller-less snapshot stays "none".
        assert_eq!(snap.poll_backend, "none");
        snap.poll_backend = "epoll";
        snap.poll_wakeups = 12;
        snap.poll_events = 48;
        let text = snap.render_prometheus();
        assert_eq!(metric_value(&text, "c2pi_poll_backend{backend=\"epoll\"}"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_poll_backend{backend=\"peek\"}"), None);
        assert_eq!(metric_value(&text, "c2pi_poll_wakeups_total"), Some(12.0));
        assert_eq!(metric_value(&text, "c2pi_poll_events_total"), Some(48.0));
    }

    #[test]
    fn batch_metrics_reach_the_exposition() {
        use crate::reactor::batch::FlushReason;
        let metrics = ReactorMetrics::default();
        metrics.record_batch(1, FlushReason::Full); // singleton: not coalesced
        metrics.record_batch(3, FlushReason::Full);
        metrics.record_batch(5, FlushReason::Window);
        metrics.record_batch(2, FlushReason::Drain);
        let snap = MetricsSnapshot::gather(&metrics, 1, 0, vec![]);
        let text = snap.render_prometheus();
        assert_eq!(metric_value(&text, "c2pi_batches_total"), Some(4.0));
        // Only members of genuine fusions (size ≥ 2) count as coalesced.
        assert_eq!(metric_value(&text, "c2pi_coalesced_total"), Some(10.0));
        assert_eq!(metric_value(&text, "c2pi_batch_flush_total{reason=\"full\"}"), Some(2.0));
        assert_eq!(metric_value(&text, "c2pi_batch_flush_total{reason=\"window\"}"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_batch_flush_total{reason=\"drain\"}"), Some(1.0));
        // Cumulative histogram: sizes {1,2,3,5} land in le buckets 1,2,4,8.
        assert_eq!(metric_value(&text, "c2pi_batch_size_bucket{le=\"1\"}"), Some(1.0));
        assert_eq!(metric_value(&text, "c2pi_batch_size_bucket{le=\"2\"}"), Some(2.0));
        assert_eq!(metric_value(&text, "c2pi_batch_size_bucket{le=\"4\"}"), Some(3.0));
        assert_eq!(metric_value(&text, "c2pi_batch_size_bucket{le=\"8\"}"), Some(4.0));
        assert_eq!(metric_value(&text, "c2pi_batch_size_bucket{le=\"+Inf\"}"), Some(4.0));
        assert_eq!(metric_value(&text, "c2pi_batch_size_sum"), Some(11.0));
        assert_eq!(metric_value(&text, "c2pi_batch_size_count"), Some(4.0));
    }
}
