//! The reactor's batch-coalescing stage: a window between "request
//! parsed" and "protocol started" in which concurrent `infer` requests
//! fuse into one batched run.
//!
//! A [`BatchCollector`] sits between request parsing and protocol
//! dispatch. Workers *deposit* admitted infer connections into it; a
//! deposit either queues (the window is still open and the batch not
//! full) or *flushes* — returns the whole pending batch for one fused
//! [`c2pi_pi::SessionCore::serve_batch_prepared`] run. Three things
//! flush a batch, each tagged with its [`FlushReason`]:
//!
//! * **Full** — the deposit that makes the batch reach `max_batch`;
//! * **Window** — the reactor tick notices the *oldest* queued request
//!   has waited `window` (so the first member of a batch bounds every
//!   member's added latency);
//! * **Drain** — shutdown closes the collector and the remainder is
//!   served, not shed (a queued request was admitted and must not be
//!   abandoned).
//!
//! The collector is deliberately time-explicit: `deposit` and
//! [`BatchCollector::take_due`] receive `now` as a parameter, so the
//! property tests drive arbitrary arrival schedules through a virtual
//! clock and prove the exactly-once/ordering invariants below without
//! sleeping.
//!
//! **Invariants** (pinned by the proptest in this module): every
//! deposited item appears in exactly one flushed batch, batches
//! preserve deposit order (concatenating all flushes replays the
//! deposit sequence), no batch exceeds `max_batch`, and a disabled
//! collector (`max_batch ≤ 1` or a zero window) flushes every deposit
//! immediately as a singleton — which is why `max_batch = 1` serving is
//! *identical* to the unbatched reactor path, not merely equivalent.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a batch left the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` members.
    Full,
    /// The oldest member's coalescing window elapsed.
    Window,
    /// The collector closed (drain); the remainder is served, not shed.
    Drain,
}

/// Outcome of one [`BatchCollector::deposit`].
#[derive(Debug)]
pub enum Deposit<T> {
    /// The item joined the pending batch; the caller keeps no handle on
    /// it (a later flush delivers it).
    Queued,
    /// A batch (always containing the deposited item as its last
    /// member, unless the collector was closed) is ready to serve.
    Flush(Vec<T>, FlushReason),
}

/// Items waiting for their window, behind one mutex the workers and the
/// reactor tick share. Holding it never blocks on I/O.
#[derive(Debug)]
struct Pending<T> {
    items: Vec<T>,
    /// Arrival time of `items[0]` — the member whose wait bounds the
    /// whole batch's added latency.
    oldest: Option<Instant>,
    closed: bool,
}

/// The coalescing stage itself. Generic over the connection type so the
/// deterministic tests run it over plain integers.
#[derive(Debug)]
pub struct BatchCollector<T> {
    window: Duration,
    max_batch: usize,
    pending: Mutex<Pending<T>>,
}

impl<T> BatchCollector<T> {
    /// A collector fusing up to `max_batch` requests arriving within
    /// `window` of the batch's oldest member.
    pub fn new(window: Duration, max_batch: usize) -> Self {
        BatchCollector {
            window,
            max_batch,
            pending: Mutex::new(Pending { items: Vec::new(), oldest: None, closed: false }),
        }
    }

    /// Whether coalescing is on. Off (`max_batch ≤ 1` or a zero
    /// window), every deposit flushes immediately as a singleton and
    /// the serving layer takes the exact unbatched code path.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1 && self.window > Duration::ZERO
    }

    /// Configured coalescing window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Configured batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Items currently waiting for their window.
    pub fn pending(&self) -> usize {
        self.pending.lock().expect("batch collector mutex poisoned").items.len()
    }

    /// Adds one admitted request at time `now`. Returns the batch to
    /// serve when this deposit fills it (or when the collector is
    /// disabled/closed — then a singleton, immediately).
    pub fn deposit(&self, item: T, now: Instant) -> Deposit<T> {
        let mut pending = self.pending.lock().expect("batch collector mutex poisoned");
        if !self.enabled() || pending.closed {
            let reason = if pending.closed { FlushReason::Drain } else { FlushReason::Full };
            return Deposit::Flush(vec![item], reason);
        }
        pending.items.push(item);
        if pending.oldest.is_none() {
            pending.oldest = Some(now);
        }
        if pending.items.len() >= self.max_batch {
            pending.oldest = None;
            Deposit::Flush(std::mem::take(&mut pending.items), FlushReason::Full)
        } else {
            Deposit::Queued
        }
    }

    /// When the pending batch becomes due: the instant the oldest
    /// member's window elapses, or `None` with nothing pending. The
    /// event-driven reactor arms its poller timeout with this, so a
    /// window flush fires when it is due instead of on the next tick of
    /// a fixed poll cadence.
    pub fn next_deadline(&self) -> Option<Instant> {
        let pending = self.pending.lock().expect("batch collector mutex poisoned");
        pending.oldest.map(|oldest| oldest + self.window)
    }

    /// Reactor-tick poll: takes the pending batch iff its oldest member
    /// has waited the full window by `now`. The flush carries
    /// [`FlushReason::Window`].
    pub fn take_due(&self, now: Instant) -> Option<Vec<T>> {
        let mut pending = self.pending.lock().expect("batch collector mutex poisoned");
        let oldest = pending.oldest?;
        if now.saturating_duration_since(oldest) < self.window {
            return None;
        }
        pending.oldest = None;
        Some(std::mem::take(&mut pending.items))
    }

    /// Drain: closes the collector (subsequent deposits flush
    /// immediately) and returns whatever was pending, to be *served* as
    /// the final partial batch.
    pub fn close(&self) -> Vec<T> {
        let mut pending = self.pending.lock().expect("batch collector mutex poisoned");
        pending.closed = true;
        pending.oldest = None;
        std::mem::take(&mut pending.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_batch_flushes_on_the_deposit_that_fills_it() {
        let c = BatchCollector::new(Duration::from_millis(10), 3);
        assert!(c.enabled());
        let t0 = Instant::now();
        assert!(matches!(c.deposit(1, t0), Deposit::Queued));
        assert!(matches!(c.deposit(2, t0), Deposit::Queued));
        assert_eq!(c.pending(), 2);
        match c.deposit(3, t0) {
            Deposit::Flush(items, FlushReason::Full) => assert_eq!(items, vec![1, 2, 3]),
            other => panic!("expected a full flush, got {other:?}"),
        }
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn window_flush_is_due_exactly_when_the_oldest_member_expires() {
        let c = BatchCollector::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        assert!(c.take_due(t0).is_none(), "nothing pending, nothing due");
        assert!(matches!(c.deposit(7, t0), Deposit::Queued));
        // A second member arriving later does not extend the window.
        assert!(matches!(c.deposit(8, t0 + Duration::from_millis(9)), Deposit::Queued));
        assert!(c.take_due(t0 + Duration::from_millis(9)).is_none());
        assert_eq!(c.take_due(t0 + Duration::from_millis(10)), Some(vec![7, 8]));
        assert!(c.take_due(t0 + Duration::from_millis(20)).is_none(), "flushed batches stay gone");
    }

    #[test]
    fn next_deadline_tracks_the_oldest_member_and_clears_on_flush() {
        let window = Duration::from_millis(10);
        let c = BatchCollector::new(window, 8);
        let t0 = Instant::now();
        assert_eq!(c.next_deadline(), None, "nothing pending, nothing armed");
        assert!(matches!(c.deposit(1, t0), Deposit::Queued));
        assert_eq!(c.next_deadline(), Some(t0 + window));
        // Later members never extend the armed deadline.
        assert!(matches!(c.deposit(2, t0 + Duration::from_millis(7)), Deposit::Queued));
        assert_eq!(c.next_deadline(), Some(t0 + window));
        assert_eq!(c.take_due(t0 + window), Some(vec![1, 2]));
        assert_eq!(c.next_deadline(), None, "flush disarms the deadline");
    }

    #[test]
    fn disabled_collector_flushes_every_deposit_as_a_singleton() {
        for c in [
            BatchCollector::new(Duration::ZERO, 8),
            BatchCollector::new(Duration::from_millis(10), 1),
            BatchCollector::new(Duration::ZERO, 0),
        ] {
            assert!(!c.enabled());
            match c.deposit(42, Instant::now()) {
                Deposit::Flush(items, FlushReason::Full) => assert_eq!(items, vec![42]),
                other => panic!("expected an immediate singleton flush, got {other:?}"),
            }
            assert_eq!(c.pending(), 0);
        }
    }

    #[test]
    fn close_returns_the_partial_batch_and_later_deposits_flush_as_drain() {
        let c = BatchCollector::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        assert!(matches!(c.deposit(1, t0), Deposit::Queued));
        assert!(matches!(c.deposit(2, t0), Deposit::Queued));
        assert_eq!(c.close(), vec![1, 2]);
        // A deposit racing the drain still gets served (not lost).
        match c.deposit(3, t0) {
            Deposit::Flush(items, FlushReason::Drain) => assert_eq!(items, vec![3]),
            other => panic!("expected a drain flush, got {other:?}"),
        }
        assert!(c.close().is_empty(), "close is idempotent");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The coalescing-window law, over arbitrary arrival schedules
        /// and the `max_batch` values the issue names: no request is
        /// ever lost, duplicated, or reordered — concatenating every
        /// flushed batch (including the drain remainder) replays the
        /// deposit sequence exactly — no batch exceeds `max_batch`, and
        /// `max_batch = 1` flushes every deposit immediately.
        #[test]
        fn arbitrary_schedules_never_lose_duplicate_or_reorder(
            gaps_ms in proptest::collection::vec(0u64..30, 1..40),
            ticks in proptest::collection::vec(0u64..8, 1..40),
        ) {
            for max_batch in [1usize, 2, 7, 32] {
                let window = Duration::from_millis(10);
                let c = BatchCollector::new(window, max_batch);
                let t0 = Instant::now();
                let mut now = t0;
                let mut flushed: Vec<Vec<usize>> = Vec::new();
                let mut tick_at = 0usize;
                for (i, &gap) in gaps_ms.iter().enumerate() {
                    now += Duration::from_millis(gap);
                    // A few reactor ticks may fire between arrivals.
                    for _ in 0..ticks[i % ticks.len()] {
                        if let Some(batch) = c.take_due(now) {
                            prop_assert!(!batch.is_empty());
                            flushed.push(batch);
                        }
                        tick_at += 1;
                    }
                    match c.deposit(i, now) {
                        Deposit::Queued => {
                            prop_assert!(max_batch > 1, "max_batch=1 must never queue");
                        }
                        Deposit::Flush(batch, reason) => {
                            if max_batch == 1 {
                                prop_assert_eq!(batch.len(), 1);
                                prop_assert_eq!(reason, FlushReason::Full);
                            }
                            flushed.push(batch);
                        }
                    }
                }
                let rest = c.close();
                if !rest.is_empty() {
                    flushed.push(rest);
                }
                // Exactly-once, in order, bounded.
                let replay: Vec<usize> = flushed.iter().flatten().copied().collect();
                let want: Vec<usize> = (0..gaps_ms.len()).collect();
                prop_assert_eq!(replay, want);
                for batch in &flushed {
                    prop_assert!(batch.len() <= max_batch.max(1));
                }
                let _ = tick_at;
            }
        }
    }
}
