//! The uniform-noise defense and noised-activation accuracy evaluation.
//!
//! At the boundary the client adds `U(−λ, λ)` noise to its additive
//! share before revealing it; the reconstructed activation the server
//! sees is therefore `M_l(x) + Δ`. More noise thwarts IDPAs (Figure 6)
//! but costs accuracy (Figure 7); Algorithm 1's phase 2 checks that the
//! drop stays within budget.

use crate::Result;
use c2pi_data::Dataset;
use c2pi_nn::{BoundaryId, Model};
use c2pi_tensor::Tensor;

/// Adds uniform noise of the given magnitude to a tensor.
pub fn add_uniform_noise(t: &Tensor, magnitude: f32, seed: u64) -> Tensor {
    if magnitude <= 0.0 {
        return t.clone();
    }
    let noise = Tensor::rand_uniform(t.dims(), -magnitude, magnitude, seed);
    t.add(&noise).expect("same dims")
}

/// Classification accuracy when the activation entering the layer after
/// boundary `id` is noised with magnitude `lambda` — the quantity the
/// paper plots in Figure 7 and thresholds in Algorithm 1 (line 8).
///
/// Equivalent to [`crate::defense::defended_accuracy`] with
/// `Defense::Uniform { magnitude: lambda }`: both draw per-image seeds
/// from the shared [`crate::defense::defense_seed`] stream.
///
/// # Errors
///
/// Returns an error for unknown boundaries or empty datasets.
pub fn noised_accuracy(
    model: &mut Model,
    id: BoundaryId,
    lambda: f32,
    data: &Dataset,
    seed: u64,
) -> Result<f32> {
    if data.is_empty() {
        return Err(crate::C2piError::BadConfig("empty evaluation set".into()));
    }
    let mut correct = 0usize;
    for (i, (img, &label)) in data.images().iter().zip(data.labels()).enumerate() {
        let act = model.forward_to_cut(id, img)?;
        let noisy = add_uniform_noise(&act, lambda, crate::defense::defense_seed(seed, i));
        let logits = model.forward_from_cut(id, &noisy)?;
        if logits.argmax().unwrap_or(0) == label {
            correct += 1;
        }
    }
    model.seq_mut().clear_cache();
    Ok(correct as f32 / data.len() as f32)
}

/// Baseline (noise-free) accuracy of the model on a dataset.
///
/// # Errors
///
/// Returns an error on empty datasets or layer failures.
pub fn baseline_accuracy(model: &mut Model, data: &Dataset) -> Result<f32> {
    if data.is_empty() {
        return Err(crate::C2piError::BadConfig("empty evaluation set".into()));
    }
    let mut correct = 0usize;
    for (img, &label) in data.images().iter().zip(data.labels()) {
        let logits = model.forward(img)?;
        if logits.argmax().unwrap_or(0) == label {
            correct += 1;
        }
    }
    model.seq_mut().clear_cache();
    Ok(correct as f32 / data.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};
    use c2pi_nn::train::{train_classifier, TrainConfig};

    fn trained_model_and_data() -> (Model, Dataset) {
        let mut model =
            alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap();
        let data = SynthDataset::generate(&SynthConfig {
            classes: 4,
            per_class: 6,
            pixel_noise: 0.02,
            ..Default::default()
        })
        .into_dataset();
        train_classifier(
            model.seq_mut(),
            data.images(),
            data.labels(),
            &TrainConfig { epochs: 40, batch_size: 8, lr: 0.005, momentum: 0.9, seed: 1 },
        )
        .unwrap();
        (model, data)
    }

    #[test]
    fn zero_noise_matches_baseline() {
        let (mut model, data) = trained_model_and_data();
        let base = baseline_accuracy(&mut model, &data).unwrap();
        let noiseless = noised_accuracy(&mut model, BoundaryId::relu(3), 0.0, &data, 7).unwrap();
        assert!((base - noiseless).abs() < 1e-6);
        assert!(base > 0.5, "training should fit the tiny set, acc {base}");
    }

    #[test]
    fn extreme_noise_destroys_accuracy() {
        let (mut model, data) = trained_model_and_data();
        let base = baseline_accuracy(&mut model, &data).unwrap();
        let wrecked = noised_accuracy(&mut model, BoundaryId::relu(2), 50.0, &data, 8).unwrap();
        assert!(wrecked < base, "noise {wrecked} vs base {base}");
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let t = Tensor::zeros(&[1, 2, 4, 4]);
        let a = add_uniform_noise(&t, 0.2, 1);
        let b = add_uniform_noise(&t, 0.2, 1);
        assert_eq!(a, b);
        assert!(a.max() <= 0.2 && a.min() >= -0.2);
        assert_eq!(add_uniform_noise(&t, 0.0, 1), t);
    }

    #[test]
    fn empty_dataset_rejected() {
        let (mut model, _) = trained_model_and_data();
        let empty = Dataset::default();
        assert!(baseline_accuracy(&mut model, &empty).is_err());
        assert!(noised_accuracy(&mut model, BoundaryId::relu(1), 0.1, &empty, 0).is_err());
    }
}
