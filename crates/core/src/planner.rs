//! Attack-calibrated deployment planning: choose *where to cut* before
//! traffic arrives.
//!
//! C2PI's central claim is that the crypto-clear boundary can be
//! **chosen** — pushed as early as the inference-data-privacy attacks
//! allow — trading crypto cost for clear-text speed. This module
//! composes the workspace's parts into that decision:
//!
//! 1. **privacy audit** — every candidate boundary is probed with a
//!    configurable IDPA panel ([`c2pi_attacks::probe::ProbeSpec`]: MLA,
//!    INA, EINA, DINA at chosen budgets), sweeping tail-to-head with
//!    Algorithm 1's early exit per probe. A boundary is *private* only
//!    when every probe's recovery stays below the SSIM threshold there;
//! 2. **accuracy gate** — the configured [`Defense`] is applied at each
//!    private boundary (same labels, same [`defense_seed`] stream as
//!    the serving session will use) and the boundary passes when the
//!    accuracy drop stays within budget;
//! 3. **cost sweep** — each allowed boundary × backend
//!    (Delphi/Cheetah) is compiled into a real session and run once on
//!    the configured transport, so online/offline traffic and flights
//!    are *measured, exact and deterministic*; compute seconds are
//!    priced by the calibrated [`OnlineCostModel`] /
//!    [`c2pi_pi::cost::OfflineCostModel`] coefficients and converted to
//!    end-to-end latency under each [`NetModel`] (mem/LAN/WAN);
//! 4. **ranking** — the result is a serializable [`DeploymentPlan`]
//!    whose [`PlanChoice`] rows plug straight back into
//!    [`C2pi::builder`](crate::session::C2piBuilder::plan) and
//!    [`DeploymentPlan::server_config`].
//!
//! The default cost coefficients are fixed constants, so the whole plan
//! — including its rendered table ([`DeploymentPlan::render_table`]) —
//! is byte-identical across runs and machines; swap in
//! [`c2pi_pi::calibrate::Calibrator`] measurements when local accuracy
//! matters more than reproducibility (`plan_report --calibrate`).
//!
//! ```no_run
//! use c2pi_core::planner::{DeploymentPlanner, PlannerConfig};
//! use c2pi_core::session::C2pi;
//! use c2pi_data::synth::{SynthConfig, SynthDataset};
//! use c2pi_nn::model::{alexnet, ZooConfig};
//!
//! # fn main() -> Result<(), c2pi_core::C2piError> {
//! let mut model = alexnet(&ZooConfig::default())?;
//! let data = SynthDataset::generate(&SynthConfig::default()).into_dataset();
//! let (train, eval) = data.split(0.7, 3)?;
//! let mut planner = DeploymentPlanner::new(&mut model, &train, &eval, PlannerConfig::default());
//! let plan = planner.plan()?;
//! println!("{}", plan.render_table());
//! let best = plan.best().expect("at least one allowed deployment");
//! let session = C2pi::builder(model).plan(best).build()?; // serve this
//! # drop(session);
//! # Ok(())
//! # }
//! ```

use crate::boundary::{AccuracyProbe, SsimProbe};
use crate::defense::{defended_accuracy, defense_seed, Defense};
use crate::noise::baseline_accuracy;
use crate::server::PiServerConfig;
use crate::{C2piError, Result};
use c2pi_attacks::eval::avg_ssim_with;
use c2pi_attacks::probe::{quick_panel, ProbeSpec};
use c2pi_attacks::Idpa;
use c2pi_data::Dataset;
use c2pi_nn::{BoundaryId, Model};
use c2pi_pi::calibrate::OnlineCostModel;
use c2pi_pi::PiBackend;
use c2pi_tensor::Tensor;
use c2pi_transport::{NetModel, Transport};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Planner parameters: what to sweep and what to gate on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Candidate boundaries; empty means the post-ReLU cut of every
    /// convolution (the paper's candidate set).
    pub candidates: Vec<BoundaryId>,
    /// Backends to price at each allowed boundary.
    pub backends: Vec<PiBackend>,
    /// Network settings to rank under (the first is the primary: the
    /// plan's overall best is its cheapest deployment).
    pub nets: Vec<NetModel>,
    /// IDPA probe panel gating privacy. Empty skips the privacy audit
    /// (every candidate is treated as private — cost-only planning).
    pub probes: Vec<ProbeSpec>,
    /// Boundary defense, applied with the same label and seed stream
    /// the serving session will use.
    pub defense: Defense,
    /// SSIM failure threshold `σ` (a probe *succeeds* at a boundary
    /// when its average recovery SSIM reaches this).
    pub ssim_threshold: f32,
    /// Maximum tolerated accuracy drop `δ` relative to baseline.
    pub max_accuracy_drop: f32,
    /// Images per probe/accuracy evaluation.
    pub eval_images: usize,
    /// Master seed: defense draws, probe observations and the cost
    /// sweep's probe input all derive from it.
    pub seed: u64,
    /// Online-cost coefficient overrides per backend (e.g. from
    /// [`c2pi_pi::calibrate::Calibrator::measure`]); backends not
    /// listed use [`OnlineCostModel::for_backend`] defaults.
    pub costs: Vec<(PiBackend, OnlineCostModel)>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            candidates: Vec::new(),
            backends: vec![PiBackend::Cheetah, PiBackend::Delphi],
            nets: vec![NetModel::mem(), NetModel::lan(), NetModel::wan()],
            probes: quick_panel(),
            defense: Defense::Uniform { magnitude: 0.1 },
            ssim_threshold: 0.3,
            max_accuracy_drop: 0.025,
            eval_images: 4,
            seed: 47,
            costs: Vec::new(),
        }
    }
}

/// One probe's verdict at one boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSsim {
    /// Probe label (`family:budget`).
    pub probe: String,
    /// Average recovery SSIM the probe achieved there.
    pub avg_ssim: f32,
}

/// The privacy/accuracy audit of one candidate boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundaryAudit {
    /// The candidate.
    pub boundary: BoundaryId,
    /// Probes that evaluated this boundary (tail-to-head sweeps stop
    /// early, so head-side candidates may carry fewer entries).
    pub probes: Vec<ProbeSsim>,
    /// Worst (highest) recovery SSIM observed here, `0.0` if no probe
    /// reached this boundary.
    pub worst_ssim: f32,
    /// Whether every probe fails at this boundary (per Algorithm 1's
    /// combined verdict: the earliest boundary all probes clear).
    pub private: bool,
    /// Defended accuracy, measured only for private boundaries.
    pub defended_accuracy: Option<f32>,
    /// Whether the accuracy drop stays within budget (only for private
    /// boundaries).
    pub accuracy_ok: Option<bool>,
}

/// Measured protocol cost of one (boundary, backend) deployment —
/// network-independent raw material.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostRow {
    /// The boundary.
    pub boundary: BoundaryId,
    /// The backend.
    pub backend: PiBackend,
    /// Crypto-prefix step count.
    pub crypto_layers: usize,
    /// Clear-suffix layer count.
    pub clear_layers: usize,
    /// Exact online bytes measured on the channel (reveal included).
    pub online_bytes: u64,
    /// Exact online flights measured on the channel.
    pub online_flights: u64,
    /// Modelled offline (HE / correlation-setup) bytes.
    pub offline_bytes: u64,
    /// Modelled offline flights.
    pub offline_flights: u64,
    /// Online compute seconds from the calibrated coefficients.
    pub online_compute_seconds: f64,
    /// Offline compute seconds from the offline cost model.
    pub offline_compute_seconds: f64,
    /// Bytes the dealer actually ships per inference under
    /// seed-compressed dealing (the compact `DealtSeed` artifact).
    pub dealt_bytes: u64,
    /// Bytes of correlated material each party expands locally from the
    /// dealt seed — what classic expanded dealing would have shipped.
    pub expanded_bytes: u64,
}

/// One ranked deployment: a boundary, backend and defense priced under
/// one network setting. Plugs into
/// [`C2piBuilder::plan`](crate::session::C2piBuilder::plan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanChoice {
    /// 1-based rank within this network setting.
    pub rank: usize,
    /// Network setting name (`mem`, `lan`, `wan`, …).
    pub net: String,
    /// Protocol backend.
    pub backend: PiBackend,
    /// Crypto-clear boundary.
    pub boundary: BoundaryId,
    /// Boundary defense (label-identical to what the session applies).
    pub defense: Defense,
    /// Master seed for the serving session's defense draws.
    pub defense_seed: u64,
    /// Defended accuracy at this boundary.
    pub defended_accuracy: f32,
    /// Worst probe SSIM at this boundary.
    pub worst_ssim: f32,
    /// Whether this boundary passed both the privacy audit and the
    /// accuracy gate. `false` only for the degenerate fallback (no
    /// candidate satisfied the gates; this row is the least-bad
    /// option) — check it before deploying.
    pub gates_passed: bool,
    /// Online latency under this network (compute + traffic).
    pub online_seconds: f64,
    /// Offline latency under this network (compute + traffic).
    pub offline_seconds: f64,
    /// End-to-end latency (offline + online).
    pub total_seconds: f64,
    /// Total communication in MB (online + offline).
    pub comm_mb: f64,
}

/// The planner's output: audits, measured costs and the ranked
/// deployments, plus the gating parameters for provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// Model name the plan was computed for.
    pub model: String,
    /// Noise-free baseline accuracy on the evaluation set.
    pub baseline_accuracy: f32,
    /// The defense the audit assumed (and serving should apply).
    pub defense: Defense,
    /// Master seed (defense draws + probe observations).
    pub seed: u64,
    /// SSIM failure threshold used by the audit.
    pub ssim_threshold: f32,
    /// Accuracy-drop budget used by the gate.
    pub max_accuracy_drop: f32,
    /// Labels of the probes that ran.
    pub probe_labels: Vec<String>,
    /// Per-candidate audit rows, head-to-tail.
    pub audits: Vec<BoundaryAudit>,
    /// Measured cost rows for every allowed boundary × backend.
    pub costs: Vec<CostRow>,
    /// Ranked deployments, grouped by network setting in configuration
    /// order, cheapest first within each group.
    pub ranked: Vec<PlanChoice>,
}

impl DeploymentPlan {
    /// The overall best deployment: rank 1 under the primary (first
    /// configured) network setting. When no candidate satisfied both
    /// gates this is the degenerate fallback — check
    /// [`PlanChoice::gates_passed`] before deploying.
    pub fn best(&self) -> Option<&PlanChoice> {
        self.ranked.first()
    }

    /// The best deployment under the named network setting.
    pub fn best_for(&self, net: &str) -> Option<&PlanChoice> {
        self.ranked.iter().find(|c| c.net == net)
    }

    /// The best deployment under a network setting for one specific
    /// backend.
    pub fn best_for_backend(&self, net: &str, backend: PiBackend) -> Option<&PlanChoice> {
        self.ranked.iter().find(|c| c.net == net && c.backend == backend)
    }

    /// A [`PiServerConfig`] sized from the plan's best deployment: the
    /// replenisher must outpace consumption, so the pool watermarks
    /// scale with the offline/online compute ratio (an offline phase
    /// `r`× slower than online needs ≈ `r` material sets buffered per
    /// worker to absorb a sustained burst).
    pub fn server_config(&self, worker_cap: usize) -> PiServerConfig {
        let defaults = PiServerConfig::default();
        let Some(best) = self.best() else {
            return PiServerConfig { worker_cap, ..defaults };
        };
        let row =
            self.costs.iter().find(|r| r.boundary == best.boundary && r.backend == best.backend);
        let ratio = row
            .map(|r| (r.offline_compute_seconds / r.online_compute_seconds.max(1e-9)).ceil())
            .unwrap_or(1.0)
            .clamp(1.0, 64.0) as usize;
        let pool_low = (worker_cap * ratio).max(1);
        PiServerConfig { worker_cap, pool_low, pool_high: pool_low * 2, ..defaults }
    }

    /// A [`ReactorConfig`](crate::reactor::ReactorConfig) sized from
    /// the plan's best deployment, for the readiness-driven server.
    /// Same offline/online compute-ratio
    /// argument as [`DeploymentPlan::server_config`], but the
    /// watermarks are **per shard** (one shard and one replenisher per
    /// worker), and the suggested `BUSY` retry-after is priced at one
    /// offline material-generation interval — the soonest a retrying
    /// client can expect fresh stock.
    pub fn reactor_config(&self, workers: usize) -> crate::reactor::ReactorConfig {
        let defaults = crate::reactor::ReactorConfig::default();
        let workers = workers.max(1);
        let Some(best) = self.best() else {
            return crate::reactor::ReactorConfig { workers, ..defaults };
        };
        let row =
            self.costs.iter().find(|r| r.boundary == best.boundary && r.backend == best.backend);
        let ratio = row
            .map(|r| (r.offline_compute_seconds / r.online_compute_seconds.max(1e-9)).ceil())
            .unwrap_or(1.0)
            .clamp(1.0, 64.0) as usize;
        // Per-shard watermarks: each worker homes on its own shard, so
        // a shard buffers the burst absorption for one worker.
        let pool_low = ratio.max(1);
        let retry_after = row
            .map(|r| Duration::from_secs_f64(r.offline_compute_seconds.clamp(0.005, 5.0)))
            .unwrap_or(defaults.retry_after);
        // Cross-client batching, priced from the measured online run: a
        // coalescing window of a quarter of one online inference means
        // the first member of a batch waits at most ~25% extra latency
        // for company, and the fused rounds win that back at any real
        // concurrency. Clamped to the reactor's tick resolution on the
        // low side and to a human-invisible 25 ms on the high side.
        let batch_window = row
            .map(|r| Duration::from_secs_f64((r.online_compute_seconds * 0.25).clamp(0.001, 0.025)))
            .unwrap_or(defaults.batch_window);
        crate::reactor::ReactorConfig {
            workers,
            pool_low,
            pool_high: pool_low * 2,
            retry_after,
            batch_window,
            max_batch: 8,
            ..defaults
        }
    }

    /// Renders the paper-style boundary/cost/privacy table. The output
    /// is deterministic: fixed-precision floats over measured traffic
    /// and constant-coefficient estimates (see the module docs).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== C2PI deployment plan: {} ==", self.model);
        let _ = writeln!(
            out,
            "defense {} (seed {}) | sigma {:.2} | max accuracy drop {:.1}% | baseline {:.1}%",
            self.defense.label(),
            self.seed,
            self.ssim_threshold,
            self.max_accuracy_drop * 100.0,
            self.baseline_accuracy * 100.0,
        );
        let _ = writeln!(
            out,
            "probes: {}",
            if self.probe_labels.is_empty() {
                "(none: cost-only planning)".to_string()
            } else {
                self.probe_labels.join(", ")
            }
        );
        let _ = writeln!(out, "\nprivacy / accuracy audit (head to tail):");
        let _ = writeln!(
            out,
            "  {:>8}  {:>10}  {:>7}  {:>12}  {:>3}",
            "boundary", "worst-ssim", "private", "defended-acc", "ok"
        );
        for a in &self.audits {
            let acc = match a.defended_accuracy {
                Some(v) => format!("{:.1}%", v * 100.0),
                None => "-".to_string(),
            };
            let ok = match a.accuracy_ok {
                Some(true) => "yes",
                Some(false) => "no",
                None => "-",
            };
            let _ = writeln!(
                out,
                "  {:>8}  {:>10.3}  {:>7}  {:>12}  {:>3}",
                a.boundary.to_string(),
                a.worst_ssim,
                if a.private { "yes" } else { "no" },
                acc,
                ok,
            );
        }
        let _ = writeln!(out, "\nmeasured deployments (allowed boundaries x backends):");
        let _ = writeln!(
            out,
            "  {:>8}  {:>8}  {:>6}  {:>10}  {:>10}  {:>8}  {:>8}  {:>9}",
            "boundary",
            "backend",
            "layers",
            "online-MB",
            "offln-MB",
            "flights",
            "dealt-B",
            "expand-MB"
        );
        for r in &self.costs {
            let _ = writeln!(
                out,
                "  {:>8}  {:>8}  {:>3}/{:<2}  {:>10.3}  {:>10.3}  {:>8}  {:>8}  {:>9.3}",
                r.boundary.to_string(),
                r.backend.name(),
                r.crypto_layers,
                r.clear_layers,
                r.online_bytes as f64 / 1e6,
                r.offline_bytes as f64 / 1e6,
                r.online_flights,
                r.dealt_bytes,
                r.expanded_bytes as f64 / 1e6,
            );
        }
        let _ = writeln!(out, "\nranked deployments (cheapest first per net):");
        let _ = writeln!(
            out,
            "  {:>4}  {:>4}  {:>8}  {:>8}  {:>11}  {:>11}  {:>11}  {:>9}  {:>5}",
            "rank",
            "net",
            "backend",
            "boundary",
            "online(s)",
            "offline(s)",
            "total(s)",
            "comm(MB)",
            "gates"
        );
        for c in &self.ranked {
            let _ = writeln!(
                out,
                "  {:>4}  {:>4}  {:>8}  {:>8}  {:>11.4}  {:>11.4}  {:>11.4}  {:>9.3}  {:>5}",
                c.rank,
                c.net,
                c.backend.name(),
                c.boundary.to_string(),
                c.online_seconds,
                c.offline_seconds,
                c.total_seconds,
                c.comm_mb,
                if c.gates_passed { "ok" } else { "FAIL" },
            );
        }
        out
    }

    /// Serializes the plan to a deterministic JSON document (the
    /// workspace's serde is an offline facade, so serialization is
    /// hand-rolled like the bench harness's).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"model\": \"{}\",", self.model);
        let _ = writeln!(s, "  \"baseline_accuracy\": {:.6},", self.baseline_accuracy);
        let _ = writeln!(s, "  \"defense\": \"{}\",", self.defense.label());
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"ssim_threshold\": {:.6},", self.ssim_threshold);
        let _ = writeln!(s, "  \"max_accuracy_drop\": {:.6},", self.max_accuracy_drop);
        let probes: Vec<String> = self.probe_labels.iter().map(|p| format!("\"{p}\"")).collect();
        let _ = writeln!(s, "  \"probes\": [{}],", probes.join(", "));
        let _ = writeln!(s, "  \"audits\": [");
        for (i, a) in self.audits.iter().enumerate() {
            let acc = a.defended_accuracy.map_or("null".to_string(), |v| format!("{v:.6}"));
            let ok = a.accuracy_ok.map_or("null".to_string(), |v| v.to_string());
            let _ = writeln!(
                s,
                "    {{\"boundary\": \"{}\", \"worst_ssim\": {:.6}, \"private\": {}, \"defended_accuracy\": {}, \"accuracy_ok\": {}}}{}",
                a.boundary, a.worst_ssim, a.private, acc, ok,
                if i + 1 < self.audits.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"costs\": [");
        for (i, r) in self.costs.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"boundary\": \"{}\", \"backend\": \"{}\", \"crypto_layers\": {}, \"clear_layers\": {}, \"online_bytes\": {}, \"online_flights\": {}, \"offline_bytes\": {}, \"offline_flights\": {}, \"online_compute_seconds\": {:.9}, \"offline_compute_seconds\": {:.9}, \"dealt_bytes\": {}, \"expanded_bytes\": {}}}{}",
                r.boundary, r.backend.name(), r.crypto_layers, r.clear_layers, r.online_bytes,
                r.online_flights, r.offline_bytes, r.offline_flights, r.online_compute_seconds,
                r.offline_compute_seconds, r.dealt_bytes, r.expanded_bytes,
                if i + 1 < self.costs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"ranked\": [");
        for (i, c) in self.ranked.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"rank\": {}, \"net\": \"{}\", \"backend\": \"{}\", \"boundary\": \"{}\", \"defense\": \"{}\", \"defense_seed\": {}, \"defended_accuracy\": {:.6}, \"gates_passed\": {}, \"online_seconds\": {:.9}, \"offline_seconds\": {:.9}, \"total_seconds\": {:.9}, \"comm_mb\": {:.6}}}{}",
                c.rank, c.net, c.backend.name(), c.boundary, c.defense.label(), c.defense_seed,
                c.defended_accuracy, c.gates_passed, c.online_seconds, c.offline_seconds,
                c.total_seconds, c.comm_mb,
                if i + 1 < self.ranked.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s
    }
}

/// Privacy-gate parameters shared by the planner's audit and the
/// deprecated `search_boundary` shim.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbeGate {
    pub defense: Defense,
    pub ssim_threshold: f32,
    pub eval_images: usize,
    pub seed: u64,
}

/// Sweeps one probe tail-to-head with Algorithm 1's early exit.
/// Returns the SSIM probes taken (in probe order) and the index of the
/// first candidate this probe clears — `None` when the probe succeeds
/// even at the tail, i.e. *no* candidate is safe against it.
pub(crate) fn probe_one(
    model: &mut Model,
    attack: &mut dyn Idpa,
    attacker_data: &Dataset,
    eval_data: &Dataset,
    candidates: &[BoundaryId],
    gate: ProbeGate,
) -> Result<(Vec<SsimProbe>, Option<usize>)> {
    let ProbeGate { defense, ssim_threshold, eval_images, seed } = gate;
    let anticipated = match defense {
        Defense::Uniform { magnitude } => magnitude,
        Defense::Gaussian { std } => std,
        _ => 0.0,
    };
    let mut probes = Vec::new();
    let mut idx = candidates.len();
    let mut last_success: Option<usize> = None;
    while idx > 0 {
        idx -= 1;
        let id = candidates[idx];
        attack.prepare(model, id, attacker_data, anticipated)?;
        let s = avg_ssim_with(attack, model, id, eval_data, eval_images, &|act, i| {
            Ok(defense.apply(act, defense_seed(seed, i)))
        })
        .map_err(C2piError::Attack)?;
        probes.push(SsimProbe { id, avg_ssim: s });
        if s >= ssim_threshold {
            last_success = Some(idx);
            break;
        }
    }
    let first_safe = match last_success {
        Some(i) if i + 1 < candidates.len() => Some(i + 1),
        Some(_) => None, // succeeds even at the tail: nothing is safe
        None => Some(0),
    };
    Ok((probes, first_safe))
}

/// Phase 2 of Algorithm 1: walks from `start_idx` toward the tail until
/// the defended accuracy is within `max_drop` of baseline. Returns
/// `(baseline, probes, chosen_idx, chosen_accuracy)`.
pub(crate) fn gate_accuracy(
    model: &mut Model,
    candidates: &[BoundaryId],
    start_idx: usize,
    defense: Defense,
    max_drop: f32,
    eval_data: &Dataset,
    seed: u64,
) -> Result<(f32, Vec<AccuracyProbe>, usize, f32)> {
    let baseline = baseline_accuracy(model, eval_data)?;
    let target = baseline - max_drop;
    let mut probes = Vec::new();
    let mut idx = start_idx;
    let mut acc = defended_accuracy(model, candidates[idx], defense, eval_data, seed)?;
    probes.push(AccuracyProbe { id: candidates[idx], accuracy: acc });
    while acc < target && idx + 1 < candidates.len() {
        idx += 1;
        acc = defended_accuracy(model, candidates[idx], defense, eval_data, seed)?;
        probes.push(AccuracyProbe { id: candidates[idx], accuracy: acc });
    }
    Ok((baseline, probes, idx, acc))
}

/// The planner: sweeps, audits, prices and ranks deployments of one
/// model. See the [module docs](crate::planner) for the full pipeline.
pub struct DeploymentPlanner<'a> {
    model: &'a mut Model,
    attacker_data: &'a Dataset,
    eval_data: &'a Dataset,
    cfg: PlannerConfig,
    transport: Option<Arc<dyn Transport>>,
}

impl<'a> DeploymentPlanner<'a> {
    /// Creates a planner. `attacker_data` trains the probes (the
    /// server's own data); `eval_data` measures recovery SSIM and
    /// accuracy.
    pub fn new(
        model: &'a mut Model,
        attacker_data: &'a Dataset,
        eval_data: &'a Dataset,
        cfg: PlannerConfig,
    ) -> Self {
        DeploymentPlanner { model, attacker_data, eval_data, cfg, transport: None }
    }

    /// Runs the cost sweep over this transport instead of the in-memory
    /// default. Traffic is transcript-determined, so the chosen
    /// boundary is transport-independent (pinned by a regression test).
    pub fn with_transport<T: Transport + 'static>(mut self, transport: T) -> Self {
        self.transport = Some(Arc::new(transport));
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    fn online_model(&self, backend: PiBackend) -> OnlineCostModel {
        self.cfg
            .costs
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|(_, m)| *m)
            .unwrap_or_else(|| OnlineCostModel::for_backend(backend))
    }

    /// Runs the full pipeline: privacy audit → accuracy gate → cost
    /// sweep → ranking.
    ///
    /// # Errors
    ///
    /// Returns an error for models without candidates, empty datasets,
    /// failing probes, or crypto prefixes the engine cannot execute.
    pub fn plan(&mut self) -> Result<DeploymentPlan> {
        let candidates: Vec<BoundaryId> = if self.cfg.candidates.is_empty() {
            (1..=self.model.num_convs()).map(BoundaryId::relu).collect()
        } else {
            self.cfg.candidates.clone()
        };
        if candidates.is_empty() {
            return Err(C2piError::NoBoundary("model has no candidate boundaries".into()));
        }
        if self.cfg.backends.is_empty() || self.cfg.nets.is_empty() {
            return Err(C2piError::BadConfig("planner needs >= 1 backend and net".into()));
        }
        // Fail fast, before minutes of probe training: the cost sweep
        // compiles serving sessions, and a session can only apply
        // *additive* defenses to the client's share.
        if self.cfg.defense.additive_delta(&[1], 0).is_none() {
            return Err(C2piError::BadConfig(format!(
                "defense {} is not additive; serving sessions cannot apply it, so it cannot \
                 be planned for deployment (it remains usable in standalone audits via \
                 `defended_accuracy`)",
                self.cfg.defense.label()
            )));
        }

        // ---- 1. privacy audit: every probe sweeps tail-to-head. ----
        let mut per_candidate: Vec<Vec<ProbeSsim>> = vec![Vec::new(); candidates.len()];
        let mut first_safe = 0usize;
        // Set when some probe succeeds even at the tail: then *no*
        // candidate is private, however late — the audit failed and the
        // plan may only fall back, never claim privacy.
        let mut nothing_safe = false;
        for spec in &self.cfg.probes {
            let mut attack = spec.build();
            let (probes, safe) = probe_one(
                self.model,
                attack.as_mut(),
                self.attacker_data,
                self.eval_data,
                &candidates,
                ProbeGate {
                    defense: self.cfg.defense,
                    ssim_threshold: self.cfg.ssim_threshold,
                    eval_images: self.cfg.eval_images,
                    seed: self.cfg.seed,
                },
            )?;
            for p in probes {
                let idx = candidates.iter().position(|c| *c == p.id).expect("probed candidate");
                per_candidate[idx].push(ProbeSsim { probe: spec.label(), avg_ssim: p.avg_ssim });
            }
            match safe {
                Some(s) => first_safe = first_safe.max(s),
                None => nothing_safe = true,
            }
        }

        // ---- 2. accuracy gate over the private region. ----
        let baseline = baseline_accuracy(self.model, self.eval_data)?;
        let target = baseline - self.cfg.max_accuracy_drop;
        let mut audits = Vec::with_capacity(candidates.len());
        let mut allowed: Vec<(usize, f32)> = Vec::new();
        for (idx, &boundary) in candidates.iter().enumerate() {
            let probes = per_candidate[idx].clone();
            let worst = probes.iter().map(|p| p.avg_ssim).fold(0.0f32, f32::max);
            let private = !nothing_safe && idx >= first_safe;
            let (acc, ok) = if private {
                let acc = defended_accuracy(
                    self.model,
                    boundary,
                    self.cfg.defense,
                    self.eval_data,
                    self.cfg.seed,
                )?;
                (Some(acc), Some(acc >= target))
            } else {
                (None, None)
            };
            if let (Some(a), Some(true)) = (acc, ok) {
                allowed.push((idx, a));
            }
            audits.push(BoundaryAudit {
                boundary,
                probes,
                worst_ssim: worst,
                private,
                defended_accuracy: acc,
                accuracy_ok: ok,
            });
        }
        if allowed.is_empty() {
            // Degenerate case (Algorithm 1's fallback): no boundary
            // satisfies both gates — either the probes recover inputs
            // everywhere (`nothing_safe`, audit rows say `private: no`)
            // or the accuracy gate rejected every private candidate.
            // The latest candidate minimises exposure and is costed
            // anyway so the report shows what the fallback would pay;
            // its audit row keeps the honest failing verdict.
            let idx = candidates.len() - 1;
            let acc = match audits[idx].defended_accuracy {
                Some(a) => a,
                None => defended_accuracy(
                    self.model,
                    candidates[idx],
                    self.cfg.defense,
                    self.eval_data,
                    self.cfg.seed,
                )
                .unwrap_or(0.0),
            };
            allowed.push((idx, acc));
        }

        // ---- 3. cost sweep: measure every allowed boundary x backend. ----
        let [c, h, w] = self.model.input_shape();
        let probe_x = Tensor::rand_uniform(
            &[1, c, h, w],
            0.0,
            1.0,
            c2pi_mpc::prg::indexed_seed(self.cfg.seed, b"c2pi/planner/input", 0),
        );
        let mut costs = Vec::new();
        for &(idx, _) in &allowed {
            let boundary = candidates[idx];
            for &backend in &self.cfg.backends {
                let mut builder = crate::session::C2pi::builder(self.model.clone())
                    .split_at(boundary)
                    .defense(self.cfg.defense)
                    .noise_seed(self.cfg.seed)
                    .backend(backend.engine());
                if let Some(t) = &self.transport {
                    builder = builder.transport(Arc::clone(t));
                }
                let mut session = builder.build()?;
                session.preprocess(1)?;
                let result = session.infer(&probe_x)?;
                let report = &result.report;
                let online_model = self.online_model(backend);
                costs.push(CostRow {
                    boundary,
                    backend,
                    crypto_layers: session.crypto_layer_count(),
                    clear_layers: session.clear_layer_count(),
                    online_bytes: report.online.bytes_total(),
                    online_flights: report.online.flights,
                    offline_bytes: report.offline.bytes_total(),
                    offline_flights: report.offline.flights,
                    online_compute_seconds: online_model.online_seconds(&report.counts),
                    offline_compute_seconds: report.offline_seconds,
                    dealt_bytes: report.counts.seed_bytes,
                    expanded_bytes: report.counts.expanded_bytes,
                });
            }
        }

        // ---- 4. rank under every network setting. ----
        let acc_of = |boundary: BoundaryId| {
            allowed.iter().find(|(i, _)| candidates[*i] == boundary).map(|(_, a)| *a).unwrap_or(0.0)
        };
        let worst_of = |boundary: BoundaryId| {
            audits.iter().find(|a| a.boundary == boundary).map(|a| a.worst_ssim).unwrap_or(0.0)
        };
        let gates_of = |boundary: BoundaryId| {
            audits
                .iter()
                .find(|a| a.boundary == boundary)
                .is_some_and(|a| a.private && a.accuracy_ok == Some(true))
        };
        let mut ranked = Vec::new();
        for net in &self.cfg.nets {
            let mut group: Vec<PlanChoice> = costs
                .iter()
                .map(|r| {
                    let online = net.latency_seconds(
                        &snapshot(r.online_bytes, r.online_flights),
                        r.online_compute_seconds,
                    );
                    let offline = net.latency_seconds(
                        &snapshot(r.offline_bytes, r.offline_flights),
                        r.offline_compute_seconds,
                    );
                    PlanChoice {
                        rank: 0,
                        net: net.name.clone(),
                        backend: r.backend,
                        boundary: r.boundary,
                        defense: self.cfg.defense,
                        defense_seed: self.cfg.seed,
                        defended_accuracy: acc_of(r.boundary),
                        worst_ssim: worst_of(r.boundary),
                        gates_passed: gates_of(r.boundary),
                        online_seconds: online,
                        offline_seconds: offline,
                        total_seconds: online + offline,
                        comm_mb: (r.online_bytes + r.offline_bytes) as f64 / 1e6,
                    }
                })
                .collect();
            group.sort_by(|a, b| {
                a.total_seconds
                    .total_cmp(&b.total_seconds)
                    .then_with(|| a.backend.name().cmp(b.backend.name()))
                    .then_with(|| a.boundary.cmp(&b.boundary))
            });
            for (i, choice) in group.iter_mut().enumerate() {
                choice.rank = i + 1;
            }
            ranked.extend(group);
        }

        Ok(DeploymentPlan {
            model: self.model.name().to_string(),
            baseline_accuracy: baseline,
            defense: self.cfg.defense,
            seed: self.cfg.seed,
            ssim_threshold: self.cfg.ssim_threshold,
            max_accuracy_drop: self.cfg.max_accuracy_drop,
            probe_labels: self.cfg.probes.iter().map(|p| p.label()).collect(),
            audits,
            costs,
            ranked,
        })
    }
}

fn snapshot(bytes: u64, flights: u64) -> c2pi_transport::TrafficSnapshot {
    c2pi_transport::TrafficSnapshot {
        bytes_client_to_server: bytes,
        bytes_server_to_client: 0,
        messages: 0,
        flights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::plain_prediction;
    use crate::session::C2pi;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn setup() -> (Model, Dataset) {
        let model =
            alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
                .unwrap();
        let data = SynthDataset::generate(&SynthConfig {
            classes: 3,
            per_class: 3,
            pixel_noise: 0.02,
            image_size: 16,
            ..Default::default()
        })
        .into_dataset();
        (model, data)
    }

    fn cost_only_cfg() -> PlannerConfig {
        PlannerConfig {
            candidates: vec![BoundaryId::relu(2), BoundaryId::relu(4)],
            probes: Vec::new(), // skip the expensive attack training
            nets: vec![NetModel::mem(), NetModel::wan()],
            max_accuracy_drop: 1.0, // accept any accuracy
            eval_images: 2,
            ..Default::default()
        }
    }

    #[test]
    fn cost_only_plan_ranks_every_net_and_backend() {
        let (mut model, data) = setup();
        let plan =
            DeploymentPlanner::new(&mut model, &data, &data, cost_only_cfg()).plan().unwrap();
        // 2 boundaries x 2 backends x 2 nets.
        assert_eq!(plan.ranked.len(), 8);
        assert_eq!(plan.costs.len(), 4);
        for net in ["mem", "wan"] {
            let group: Vec<_> = plan.ranked.iter().filter(|c| c.net == net).collect();
            assert_eq!(group.len(), 4);
            assert_eq!(group[0].rank, 1);
            for pair in group.windows(2) {
                assert!(pair[0].total_seconds <= pair[1].total_seconds);
            }
        }
        // Earlier boundary means less crypto: for a fixed backend the
        // earlier cut is never more expensive on mem.
        let mem_cheetah: Vec<_> = plan
            .ranked
            .iter()
            .filter(|c| c.net == "mem" && c.backend == PiBackend::Cheetah)
            .collect();
        assert_eq!(mem_cheetah[0].boundary, BoundaryId::relu(2));
        assert!(plan.best().is_some());
        assert_eq!(plan.best_for("wan").unwrap().rank, 1);
        assert!(plan.ranked.iter().all(|c| c.gates_passed));
    }

    #[test]
    fn plan_is_deterministic_and_serializable() {
        let (mut model, data) = setup();
        let a = DeploymentPlanner::new(&mut model, &data, &data, cost_only_cfg()).plan().unwrap();
        let (mut model2, data2) = setup();
        let b =
            DeploymentPlanner::new(&mut model2, &data2, &data2, cost_only_cfg()).plan().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render_table(), b.render_table());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"ranked\""));
        // The measured cost rows are part of the machine-readable form.
        assert!(a.to_json().contains("\"costs\""));
        assert!(a.to_json().contains("\"online_bytes\""));
    }

    #[test]
    fn non_additive_defense_is_rejected_before_the_audit() {
        let (mut model, data) = setup();
        let cfg = PlannerConfig {
            defense: Defense::Quantize { step: 0.1 },
            // A panel that would take minutes if the check were late.
            probes: vec![ProbeSpec::parse("dina:30").unwrap()],
            ..cost_only_cfg()
        };
        let start = std::time::Instant::now();
        let err = DeploymentPlanner::new(&mut model, &data, &data, cfg).plan();
        assert!(matches!(err, Err(C2piError::BadConfig(_))));
        assert!(start.elapsed().as_secs() < 5, "must fail before probe training");
    }

    #[test]
    fn best_plan_round_trips_through_the_builder() {
        let (mut model, data) = setup();
        let plan =
            DeploymentPlanner::new(&mut model, &data, &data, cost_only_cfg()).plan().unwrap();
        let best = plan.best().unwrap().clone();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 5);
        let clear = plain_prediction(&model, &x).unwrap();
        let mut session = C2pi::builder(model)
            .plan(&PlanChoice { defense: Defense::Uniform { magnitude: 0.0 }, ..best.clone() })
            .build()
            .unwrap();
        session.preprocess(1).unwrap();
        let got = session.infer(&x).unwrap();
        assert_eq!(got.prediction, clear);
        assert_eq!(session.split(), crate::pipeline::Split::At(best.boundary));
        assert_eq!(session.backend_name(), best.backend.name());
    }

    #[test]
    fn server_config_scales_watermarks_with_offline_ratio() {
        let (mut model, data) = setup();
        let plan =
            DeploymentPlanner::new(&mut model, &data, &data, cost_only_cfg()).plan().unwrap();
        let cfg = plan.server_config(4);
        assert_eq!(cfg.worker_cap, 4);
        assert!(cfg.pool_low >= 4);
        assert_eq!(cfg.pool_high, cfg.pool_low * 2);
    }

    #[test]
    fn reactor_config_sizes_the_batch_window_from_online_latency() {
        let (mut model, data) = setup();
        let plan =
            DeploymentPlanner::new(&mut model, &data, &data, cost_only_cfg()).plan().unwrap();
        let cfg = plan.reactor_config(4);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.max_batch, 8);
        // A quarter of the measured online run, clamped to [1ms, 25ms].
        let window = cfg.batch_window.as_secs_f64();
        assert!((0.001..=0.025).contains(&window), "window {window}s out of bounds");
        let best = plan.best().unwrap();
        let row = plan
            .costs
            .iter()
            .find(|r| r.boundary == best.boundary && r.backend == best.backend)
            .unwrap();
        let want = (row.online_compute_seconds * 0.25).clamp(0.001, 0.025);
        assert!((window - want).abs() < 1e-9, "window {window}s, want {want}s");
        // No plan, no coalescing: the degenerate fallback keeps the
        // exact unbatched path.
        let empty = DeploymentPlan { ranked: vec![], ..plan };
        let cfg = empty.reactor_config(2);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.batch_window, Duration::ZERO);
    }

    #[test]
    fn audit_failure_everywhere_is_reported_not_hidden() {
        // MLA at generous budget recovers the input at conv 1 of an
        // untrained model; with relu(1) as the ONLY candidate the probe
        // succeeds even at the tail. The fallback must still produce a
        // costed plan, but no audit row may claim `private: yes`.
        let (mut model, data) = setup();
        let cfg = PlannerConfig {
            candidates: vec![BoundaryId::relu(1)],
            probes: vec![ProbeSpec::parse("mla:60").unwrap()],
            nets: vec![NetModel::mem()],
            backends: vec![PiBackend::Cheetah],
            max_accuracy_drop: 1.0,
            eval_images: 1,
            ..Default::default()
        };
        let plan = DeploymentPlanner::new(&mut model, &data, &data, cfg).plan().unwrap();
        let audit = &plan.audits[0];
        assert!(
            audit.worst_ssim >= plan.ssim_threshold,
            "precondition: the probe must actually succeed here (ssim {})",
            audit.worst_ssim
        );
        assert!(!audit.private, "a boundary every probe cracks must not be reported private");
        // The degenerate fallback still prices the least-bad option,
        // but flags it so callers cannot deploy it by accident.
        assert!(!plan.ranked.is_empty());
        let best = plan.best().unwrap();
        assert_eq!(best.boundary, BoundaryId::relu(1));
        assert!(!best.gates_passed, "the fallback must carry gates_passed: false");
        assert!(plan.render_table().contains("FAIL"));
    }

    #[test]
    fn probe_panel_gates_the_boundary() {
        // A scripted spec-built panel is impractical here; instead run a
        // single cheap MLA probe and check the audit structure holds
        // together (per-boundary rows, private region is a suffix).
        let (mut model, data) = setup();
        let cfg = PlannerConfig {
            candidates: vec![BoundaryId::relu(1), BoundaryId::relu(3)],
            probes: vec![ProbeSpec::parse("mla:10").unwrap()],
            nets: vec![NetModel::mem()],
            backends: vec![PiBackend::Cheetah],
            max_accuracy_drop: 1.0,
            eval_images: 1,
            ..Default::default()
        };
        let plan = DeploymentPlanner::new(&mut model, &data, &data, cfg).plan().unwrap();
        assert_eq!(plan.audits.len(), 2);
        let mut seen_private = false;
        for audit in &plan.audits {
            if audit.private {
                seen_private = true;
                assert!(audit.defended_accuracy.is_some());
            } else {
                assert!(!seen_private, "private region must be a suffix");
            }
        }
        assert!(seen_private);
        assert!(!plan.ranked.is_empty());
        assert_eq!(plan.probe_labels, vec!["mla:10".to_string()]);
    }
}
