//! Error type for C2PI operations.

use c2pi_attacks::AttackError;
use c2pi_data::DataError;
use c2pi_nn::NnError;
use c2pi_pi::PiError;
use c2pi_tensor::TensorError;
use std::fmt;
use std::time::Duration;

/// Error returned by fallible C2PI operations.
#[derive(Debug, Clone, PartialEq)]
pub enum C2piError {
    /// Network-layer error.
    Nn(NnError),
    /// Tensor kernel error.
    Tensor(TensorError),
    /// Dataset/metric error.
    Data(DataError),
    /// Attack error during boundary evaluation.
    Attack(AttackError),
    /// Private-inference engine error.
    Pi(PiError),
    /// Boundary search could not satisfy the constraints.
    NoBoundary(String),
    /// Invalid configuration.
    BadConfig(String),
    /// The serving layer shed this request with a typed backpressure
    /// frame (every pool shard starved, or the server is draining) and
    /// the client's retry budget ran out.
    Overloaded {
        /// The server's suggested backoff before the next retry.
        retry_after: Duration,
        /// Whether the server was draining (a retry against the same
        /// server will keep failing; target another replica).
        draining: bool,
    },
}

impl fmt::Display for C2piError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            C2piError::Nn(e) => write!(f, "network error: {e}"),
            C2piError::Tensor(e) => write!(f, "tensor error: {e}"),
            C2piError::Data(e) => write!(f, "data error: {e}"),
            C2piError::Attack(e) => write!(f, "attack error: {e}"),
            C2piError::Pi(e) => write!(f, "private inference error: {e}"),
            C2piError::NoBoundary(msg) => write!(f, "no boundary satisfies constraints: {msg}"),
            C2piError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            C2piError::Overloaded { retry_after, draining } => write!(
                f,
                "server overloaded ({}); suggested retry-after {retry_after:?}",
                if *draining { "draining" } else { "all pool shards empty" }
            ),
        }
    }
}

impl std::error::Error for C2piError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            C2piError::Nn(e) => Some(e),
            C2piError::Tensor(e) => Some(e),
            C2piError::Data(e) => Some(e),
            C2piError::Attack(e) => Some(e),
            C2piError::Pi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for C2piError {
    fn from(e: NnError) -> Self {
        C2piError::Nn(e)
    }
}

impl From<TensorError> for C2piError {
    fn from(e: TensorError) -> Self {
        C2piError::Tensor(e)
    }
}

impl From<DataError> for C2piError {
    fn from(e: DataError) -> Self {
        C2piError::Data(e)
    }
}

impl From<AttackError> for C2piError {
    fn from(e: AttackError) -> Self {
        C2piError::Attack(e)
    }
}

impl From<PiError> for C2piError {
    fn from(e: PiError) -> Self {
        C2piError::Pi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(C2piError::NoBoundary("ssim".into()).to_string().contains("ssim"));
        assert!(C2piError::BadConfig("x".into()).to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<C2piError>();
    }
}
