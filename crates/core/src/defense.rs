//! Defenses against IDPAs beyond the paper's uniform noise — the
//! paper's stated future work (*"exploring and applying more defenses
//! against IDPA to preserve client's data privacy"*). Each defense
//! perturbs the boundary activation before the client reveals its share;
//! all are evaluated with the same SSIM/accuracy machinery as the
//! uniform-noise baseline.

use crate::Result;
use c2pi_data::Dataset;
use c2pi_nn::{BoundaryId, Model};
use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The one seed derivation every defense evaluation shares: the seed
/// for item `index` (an evaluation image, or a served inference) under
/// a master seed. [`defended_accuracy`],
/// [`crate::noise::noised_accuracy`], the deployment planner's privacy
/// audits and the serving session's per-inference noise all draw from
/// this stream, so "same master seed" means "same noise" across every
/// layer of the stack.
pub fn defense_seed(master: u64, index: usize) -> u64 {
    c2pi_mpc::prg::indexed_seed(master, b"c2pi/defense", index as u64)
}

/// A boundary-activation defense mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Defense {
    /// No perturbation (the insecure baseline).
    None,
    /// The paper's mechanism: add `U(−λ, λ)` noise.
    Uniform {
        /// Noise magnitude λ.
        magnitude: f32,
    },
    /// Zero-mean Gaussian noise with the given standard deviation.
    Gaussian {
        /// Standard deviation.
        std: f32,
    },
    /// Quantize activations to a coarse grid (step `delta`) — destroys
    /// the low-order information inversion networks exploit while
    /// preserving the ranking information classification needs.
    Quantize {
        /// Quantization step.
        step: f32,
    },
    /// Randomly zero a fraction of activations (test-time dropout), as
    /// proposed for split-learning defenses.
    Dropout {
        /// Fraction of elements zeroed, in `[0, 1)`.
        rate: f32,
    },
}

impl Defense {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Defense::None => "none",
            Defense::Uniform { .. } => "uniform",
            Defense::Gaussian { .. } => "gaussian",
            Defense::Quantize { .. } => "quantize",
            Defense::Dropout { .. } => "dropout",
        }
    }

    /// Human-readable label with the defense's parameter, for reports
    /// and plan tables (`uniform(0.100)`, `dropout(0.30)`, …).
    pub fn label(&self) -> String {
        match *self {
            Defense::None => "none".to_string(),
            Defense::Uniform { magnitude } => format!("uniform({magnitude:.3})"),
            Defense::Gaussian { std } => format!("gaussian({std:.3})"),
            Defense::Quantize { step } => format!("quantize({step:.3})"),
            Defense::Dropout { rate } => format!("dropout({rate:.2})"),
        }
    }

    /// For *additive* defenses, the perturbation tensor `Δ` such that
    /// `apply(act, seed) == act + Δ` — the form a C2PI client can apply
    /// to its own additive share without knowing the activation.
    /// Returns `None` for non-additive defenses (quantisation, dropout
    /// depend on the activation's values, which no single share holds).
    pub fn additive_delta(&self, dims: &[usize], seed: u64) -> Option<Tensor> {
        match *self {
            Defense::None => Some(Tensor::zeros(dims)),
            Defense::Uniform { magnitude } => {
                if magnitude <= 0.0 {
                    return Some(Tensor::zeros(dims));
                }
                Some(Tensor::rand_uniform(dims, -magnitude, magnitude, seed))
            }
            Defense::Gaussian { std } => {
                if std <= 0.0 {
                    return Some(Tensor::zeros(dims));
                }
                Some(Tensor::rand_normal(dims, 0.0, std, seed))
            }
            Defense::Quantize { .. } | Defense::Dropout { .. } => None,
        }
    }

    /// Applies the defense to an activation.
    pub fn apply(&self, act: &Tensor, seed: u64) -> Tensor {
        match *self {
            Defense::None | Defense::Uniform { .. } | Defense::Gaussian { .. } => {
                let delta = self.additive_delta(act.dims(), seed).expect("additive defense");
                act.add(&delta).expect("same dims")
            }
            Defense::Quantize { step } => {
                if step <= 0.0 {
                    return act.clone();
                }
                act.map(|v| (v / step).round() * step)
            }
            Defense::Dropout { rate } => {
                if rate <= 0.0 {
                    return act.clone();
                }
                let mask = Tensor::rand_uniform(act.dims(), 0.0, 1.0, seed);
                let scale = 1.0 / (1.0 - rate).max(1e-6);
                Tensor::from_vec(
                    act.as_slice()
                        .iter()
                        .zip(mask.as_slice())
                        .map(|(&v, &m)| if m < rate { 0.0 } else { v * scale })
                        .collect(),
                    act.dims(),
                )
                .expect("same dims")
            }
        }
    }
}

/// Accuracy when the defense is applied to the activation entering the
/// layer after `id` (the generalisation of
/// [`crate::noise::noised_accuracy`] to arbitrary defenses).
///
/// Per-image seeds come from the shared [`defense_seed`] stream, so
/// `defended_accuracy(.., Defense::Uniform { magnitude: l }, .., seed)`
/// equals `noised_accuracy(.., l, .., seed)` *exactly* — same labels,
/// same draws (the regression test below pins this).
///
/// # Errors
///
/// Returns an error on empty datasets or unknown boundaries.
pub fn defended_accuracy(
    model: &mut Model,
    id: BoundaryId,
    defense: Defense,
    data: &Dataset,
    seed: u64,
) -> Result<f32> {
    if data.is_empty() {
        return Err(crate::C2piError::BadConfig("empty evaluation set".into()));
    }
    let mut correct = 0usize;
    for (i, (img, &label)) in data.images().iter().zip(data.labels()).enumerate() {
        let act = model.forward_to_cut(id, img)?;
        let defended = defense.apply(&act, defense_seed(seed, i));
        let logits = model.forward_from_cut(id, &defended)?;
        if logits.argmax().unwrap_or(0) == label {
            correct += 1;
        }
    }
    model.seq_mut().clear_cache();
    Ok(correct as f32 / data.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn act() -> Tensor {
        Tensor::rand_uniform(&[1, 4, 8, 8], -1.0, 1.0, 3)
    }

    #[test]
    fn none_is_identity() {
        let a = act();
        assert_eq!(Defense::None.apply(&a, 1), a);
    }

    #[test]
    fn uniform_is_bounded() {
        let a = act();
        let d = Defense::Uniform { magnitude: 0.2 }.apply(&a, 1);
        let diff = d.sub(&a).unwrap();
        assert!(diff.map(f32::abs).max() <= 0.2 + 1e-6);
        assert_ne!(d, a);
    }

    #[test]
    fn gaussian_changes_values_with_zero_mean() {
        let a = Tensor::zeros(&[1, 1, 64, 64]);
        let d = Defense::Gaussian { std: 0.5 }.apply(&a, 2);
        assert!(d.mean().abs() < 0.05);
        assert!(d.sq_norm() > 0.0);
    }

    #[test]
    fn quantize_snaps_to_grid() {
        let a = Tensor::from_vec(vec![0.12, -0.26, 0.51], &[3]).unwrap();
        let d = Defense::Quantize { step: 0.25 }.apply(&a, 0);
        for v in d.as_slice() {
            let q = v / 0.25;
            assert!((q - q.round()).abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_zeros_roughly_the_right_fraction() {
        let a = Tensor::full(&[1, 1, 50, 50], 1.0);
        let d = Defense::Dropout { rate: 0.3 }.apply(&a, 4);
        let zeros = d.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / d.len() as f32;
        assert!((frac - 0.3).abs() < 0.07, "zeroed fraction {frac}");
        // Survivors are rescaled to preserve the expectation.
        assert!((d.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn zero_parameters_are_identity() {
        let a = act();
        assert_eq!(Defense::Uniform { magnitude: 0.0 }.apply(&a, 1), a);
        assert_eq!(Defense::Gaussian { std: 0.0 }.apply(&a, 1), a);
        assert_eq!(Defense::Quantize { step: 0.0 }.apply(&a, 1), a);
        assert_eq!(Defense::Dropout { rate: 0.0 }.apply(&a, 1), a);
    }

    #[test]
    fn defended_accuracy_matches_noised_accuracy_for_uniform() {
        // Regression test for the seed-plumbing unification: both
        // evaluation paths must draw the *same* per-image noise from the
        // same master seed, including at non-zero magnitudes (they used
        // to diverge through ad-hoc `seed ^ (i << k)` schemes).
        let mut model =
            alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap();
        let data =
            SynthDataset::generate(&SynthConfig { classes: 3, per_class: 3, ..Default::default() })
                .into_dataset();
        let id = BoundaryId::relu(3);
        for (magnitude, seed) in [(0.0, 7), (0.35, 7), (0.35, 8), (1.2, 9)] {
            let a = defended_accuracy(&mut model, id, Defense::Uniform { magnitude }, &data, seed)
                .unwrap();
            let b = crate::noise::noised_accuracy(&mut model, id, magnitude, &data, seed).unwrap();
            assert_eq!(a, b, "magnitude {magnitude} seed {seed}");
        }
    }

    #[test]
    fn additive_delta_agrees_with_apply() {
        let a = act();
        for d in
            [Defense::None, Defense::Uniform { magnitude: 0.2 }, Defense::Gaussian { std: 0.3 }]
        {
            let delta = d.additive_delta(a.dims(), 5).unwrap();
            assert_eq!(a.add(&delta).unwrap(), d.apply(&a, 5), "{}", d.label());
        }
        assert!(Defense::Quantize { step: 0.1 }.additive_delta(a.dims(), 5).is_none());
        assert!(Defense::Dropout { rate: 0.1 }.additive_delta(a.dims(), 5).is_none());
    }

    #[test]
    fn labels_carry_parameters() {
        assert_eq!(Defense::Uniform { magnitude: 0.1 }.label(), "uniform(0.100)");
        assert_eq!(Defense::None.label(), "none");
        assert!(Defense::Dropout { rate: 0.3 }.label().contains("0.30"));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Defense::None.name(),
            Defense::Uniform { magnitude: 0.1 }.name(),
            Defense::Gaussian { std: 0.1 }.name(),
            Defense::Quantize { step: 0.1 }.name(),
            Defense::Dropout { rate: 0.1 }.name(),
        ];
        let set: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
