//! The end-to-end C2PI flow of Figure 2: crypto layers under a PI
//! engine, noised share reveal, clear layers on the server alone.

use crate::{C2piError, Result};
use c2pi_mpc::share::{reconstruct, ShareVec};
use c2pi_nn::{BoundaryId, Model, Sequential};
use c2pi_pi::engine::{run_prefix, specs_of, PiConfig};
use c2pi_pi::report::PiReport;
use c2pi_tensor::Tensor;
use c2pi_transport::TrafficSnapshot;

/// Where the crypto/clear split sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Split at a boundary layer: layers up to and including it run
    /// under MPC, the rest in the clear (C2PI proper).
    At(BoundaryId),
    /// No clear segment: the entire network runs under MPC (the
    /// conventional full-PI baseline, "boundary at the last layer").
    Full,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// PI engine settings (backend, fixed point, dealer seed).
    pub pi: PiConfig,
    /// Defense noise magnitude `λ` added to the client's share before
    /// the reveal (ignored for [`Split::Full`]).
    pub noise: f32,
    /// Seed for the client's noise draws.
    pub noise_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { pi: PiConfig::default(), noise: 0.1, noise_seed: 53 }
    }
}

/// Result of one C2PI inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Output logits.
    pub logits: Tensor,
    /// Argmax class.
    pub prediction: usize,
    /// The (noised) boundary activation the server reconstructed — what
    /// an IDPA would attack. `None` for full PI.
    pub revealed_activation: Option<Tensor>,
    /// Cost profile (crypto phase plus the reveal flight).
    pub report: PiReport,
}

/// A ready-to-run C2PI deployment of one model.
#[derive(Debug)]
pub struct C2piPipeline {
    crypto_specs: Vec<c2pi_nn::LayerSpec>,
    clear: Sequential,
    split: Split,
    cfg: PipelineConfig,
    infer_count: u64,
}

impl C2piPipeline {
    /// Builds a pipeline splitting `model` at `boundary`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown boundaries.
    pub fn new(model: Model, boundary: BoundaryId, cfg: PipelineConfig) -> Result<Self> {
        let (prefix, suffix) = model.split_at(boundary)?;
        Ok(C2piPipeline {
            crypto_specs: specs_of(&prefix),
            clear: suffix,
            split: Split::At(boundary),
            cfg,
            infer_count: 0,
        })
    }

    /// Builds the conventional full-PI baseline (every layer under MPC).
    pub fn full_pi(model: Model, cfg: PipelineConfig) -> Self {
        C2piPipeline {
            crypto_specs: specs_of(model.seq()),
            clear: Sequential::new(),
            split: Split::Full,
            cfg,
            infer_count: 0,
        }
    }

    /// The split position.
    pub fn split(&self) -> Split {
        self.split
    }

    /// Number of layers executed under MPC.
    pub fn crypto_layer_count(&self) -> usize {
        self.crypto_specs.len()
    }

    /// Number of layers the server executes in the clear.
    pub fn clear_layer_count(&self) -> usize {
        self.clear.len()
    }

    /// Runs one private inference on a `[1, c, h, w]` input.
    ///
    /// # Errors
    ///
    /// Returns engine or shape errors.
    pub fn infer(&mut self, x: &Tensor) -> Result<InferenceResult> {
        let fp = self.cfg.pi.fixed;
        // Vary the dealer seed per inference so masks are fresh.
        let mut pi_cfg = self.cfg.pi;
        pi_cfg.dealer_seed = pi_cfg.dealer_seed.wrapping_add(self.infer_count);
        self.infer_count += 1;
        let outcome = run_prefix(&self.crypto_specs, x, &pi_cfg).map_err(C2piError::Pi)?;
        let mut report = outcome.report.clone();
        match self.split {
            Split::Full => {
                // The server sends its share to the client, who learns
                // only the inference output (one reveal flight).
                let raw = reconstruct(&outcome.client_share, &outcome.server_share);
                let logits = fp.decode_tensor(&raw, &outcome.dims)?;
                report.online = report.online.plus(&TrafficSnapshot {
                    bytes_client_to_server: 0,
                    bytes_server_to_client: (outcome.server_share.len() * 8) as u64,
                    messages: 1,
                    flights: 1,
                });
                let prediction = logits.argmax().unwrap_or(0);
                Ok(InferenceResult { logits, prediction, revealed_activation: None, report })
            }
            Split::At(_) => {
                // Client noises its share and reveals it (Figure 2c).
                let noise_ring: Vec<u64> = if self.cfg.noise > 0.0 {
                    let delta = Tensor::rand_uniform(
                        &outcome.dims,
                        -self.cfg.noise,
                        self.cfg.noise,
                        self.cfg.noise_seed.wrapping_add(self.infer_count),
                    );
                    fp.encode_tensor(&delta)
                } else {
                    vec![0u64; outcome.client_share.len()]
                };
                let noised_share = ShareVec::from_raw(
                    outcome
                        .client_share
                        .as_raw()
                        .iter()
                        .zip(noise_ring.iter())
                        .map(|(&s, &d)| s.wrapping_add(d))
                        .collect(),
                );
                report.online = report.online.plus(&TrafficSnapshot {
                    bytes_client_to_server: (noised_share.len() * 8) as u64,
                    bytes_server_to_client: 0,
                    messages: 1,
                    flights: 1,
                });
                // Server reconstructs M_l(x) + Δ and finishes alone.
                let raw = reconstruct(&noised_share, &outcome.server_share);
                let act = fp.decode_tensor(&raw, &outcome.dims)?;
                let logits = self.clear.forward(&act, false)?;
                self.clear.clear_cache();
                let prediction = logits.argmax().unwrap_or(0);
                Ok(InferenceResult {
                    logits,
                    prediction,
                    revealed_activation: Some(act),
                    report,
                })
            }
        }
    }
}

/// Convenience: the plaintext prediction of a model (reference for
/// end-to-end tests and accuracy comparisons).
///
/// # Errors
///
/// Propagates layer errors.
pub fn plain_prediction(model: &mut Model, x: &Tensor) -> Result<usize> {
    let logits = model.forward(x)?;
    Ok(logits.argmax().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_nn::model::{alexnet, ZooConfig};
    use c2pi_pi::engine::PiBackend;

    fn tiny_model() -> Model {
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap()
    }

    fn cfg(noise: f32) -> PipelineConfig {
        PipelineConfig {
            pi: PiConfig { backend: PiBackend::Cheetah, ..Default::default() },
            noise,
            noise_seed: 5,
        }
    }

    #[test]
    fn c2pi_matches_plaintext_without_noise() {
        let mut model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
        let plain = plain_prediction(&mut model, &x).unwrap();
        let mut pipe = C2piPipeline::new(model, BoundaryId::relu(3), cfg(0.0)).unwrap();
        let res = pipe.infer(&x).unwrap();
        assert_eq!(res.prediction, plain);
        assert!(res.revealed_activation.is_some());
        assert!(pipe.clear_layer_count() > 0);
    }

    #[test]
    fn full_pi_matches_plaintext() {
        let mut model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 2);
        let plain_logits = model.forward(&x).unwrap();
        model.seq_mut().clear_cache();
        let mut pipe = C2piPipeline::full_pi(model, cfg(0.0));
        let res = pipe.infer(&x).unwrap();
        assert!(res.revealed_activation.is_none());
        assert_eq!(pipe.clear_layer_count(), 0);
        for (a, b) in plain_logits.as_slice().iter().zip(res.logits.as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn earlier_boundary_is_cheaper() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 3);
        let mut early =
            C2piPipeline::new(model.clone(), BoundaryId::relu(2), cfg(0.1)).unwrap();
        let mut full = C2piPipeline::full_pi(model, cfg(0.1));
        let re = early.infer(&x).unwrap();
        let rf = full.infer(&x).unwrap();
        assert!(
            rf.report.comm_mb() > re.report.comm_mb(),
            "full {} MB vs early {} MB",
            rf.report.comm_mb(),
            re.report.comm_mb()
        );
        assert!(rf.report.online.bytes_total() > re.report.online.bytes_total());
    }

    #[test]
    fn noise_perturbs_revealed_activation() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 4);
        let boundary = BoundaryId::relu(3);
        let mut clean_model = model.clone();
        let clean_act = clean_model.forward_to_cut(boundary, &x).unwrap();
        let mut pipe = C2piPipeline::new(model, boundary, cfg(0.5)).unwrap();
        let res = pipe.infer(&x).unwrap();
        let revealed = res.revealed_activation.unwrap();
        let diff = revealed.sub(&clean_act).unwrap();
        // The revealed activation deviates by up to λ (plus fixed-point
        // error) but not more.
        assert!(diff.map(f32::abs).max() > 0.05);
        assert!(diff.map(f32::abs).max() <= 0.5 + 0.05);
    }

    #[test]
    fn reveal_flight_is_counted() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 6);
        let mut pipe = C2piPipeline::new(model, BoundaryId::relu(1), cfg(0.1)).unwrap();
        let res = pipe.infer(&x).unwrap();
        // At least the input-share flight plus the reveal flight.
        assert!(res.report.online.flights >= 2);
    }
}
