//! The end-to-end C2PI flow of Figure 2, plus the deprecated
//! pre-session API kept as thin shims for one release.
//!
//! New code should use the session API in [`crate::session`]:
//! [`crate::session::C2pi::builder`] replaces the
//! [`C2piPipeline::new`] / [`C2piPipeline::full_pi`] /
//! [`PipelineConfig`] triple, and [`crate::session::C2piSession`] adds
//! the offline/online phase split ([`preprocess`] + [`infer_batch`])
//! that this per-call pipeline could not express.
//!
//! [`preprocess`]: crate::session::C2piSession::preprocess
//! [`infer_batch`]: crate::session::C2piSession::infer_batch

use crate::session::{C2pi, C2piSession};
use crate::Result;
use c2pi_nn::{BoundaryId, Model};
use c2pi_pi::engine::PiConfig;
use c2pi_pi::report::PiReport;
use c2pi_tensor::Tensor;

/// Where the crypto/clear split sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Split at a boundary layer: layers up to and including it run
    /// under MPC, the rest in the clear (C2PI proper).
    At(BoundaryId),
    /// No clear segment: the entire network runs under MPC (the
    /// conventional full-PI baseline, "boundary at the last layer").
    Full,
}

/// Pipeline configuration (pre-session API).
#[deprecated(since = "0.2.0", note = "configure through `C2pi::builder` instead")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// PI engine settings (backend, fixed point, dealer seed).
    pub pi: PiConfig,
    /// Defense noise magnitude `λ` added to the client's share before
    /// the reveal (ignored for [`Split::Full`]).
    pub noise: f32,
    /// Seed for the client's noise draws.
    pub noise_seed: u64,
}

#[allow(deprecated)]
impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { pi: PiConfig::default(), noise: 0.1, noise_seed: 53 }
    }
}

/// Result of one C2PI inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Output logits.
    pub logits: Tensor,
    /// Argmax class.
    pub prediction: usize,
    /// The (noised) boundary activation the server reconstructed — what
    /// an IDPA would attack. `None` for full PI.
    pub revealed_activation: Option<Tensor>,
    /// Cost profile (crypto phase plus the reveal flight).
    pub report: PiReport,
}

/// A ready-to-run C2PI deployment of one model (pre-session API).
///
/// This shim delegates to [`C2piSession`]; it rebuilds no state per
/// call, but it cannot preprocess ahead of traffic or batch. Use
/// [`C2pi::builder`] directly.
#[deprecated(since = "0.2.0", note = "use `C2pi::builder(model)...build()` instead")]
#[derive(Debug)]
pub struct C2piPipeline {
    inner: C2piSession,
}

#[allow(deprecated)]
impl C2piPipeline {
    /// Builds a pipeline splitting `model` at `boundary`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown boundaries.
    pub fn new(model: Model, boundary: BoundaryId, cfg: PipelineConfig) -> Result<Self> {
        let inner = C2pi::builder(model)
            .split_at(boundary)
            .noise(cfg.noise)
            .noise_seed(cfg.noise_seed)
            .pi_config(cfg.pi)
            .build()?;
        Ok(C2piPipeline { inner })
    }

    /// Builds the conventional full-PI baseline (every layer under MPC).
    ///
    /// # Panics
    ///
    /// Panics if the model's own layer stack fails to compile — the
    /// pre-session API had no error path here.
    pub fn full_pi(model: Model, cfg: PipelineConfig) -> Self {
        let inner = C2pi::builder(model)
            .full_pi()
            .noise(cfg.noise)
            .noise_seed(cfg.noise_seed)
            .pi_config(cfg.pi)
            .build()
            .expect("full-PI prefix compiles");
        C2piPipeline { inner }
    }

    /// The split position.
    pub fn split(&self) -> Split {
        self.inner.split()
    }

    /// Number of layers executed under MPC.
    pub fn crypto_layer_count(&self) -> usize {
        self.inner.crypto_layer_count()
    }

    /// Number of layers the server executes in the clear.
    pub fn clear_layer_count(&self) -> usize {
        self.inner.clear_layer_count()
    }

    /// Runs one private inference on a `[1, c, h, w]` input.
    ///
    /// # Errors
    ///
    /// Returns engine or shape errors.
    pub fn infer(&mut self, x: &Tensor) -> Result<InferenceResult> {
        self.inner.infer(x)
    }
}

/// Convenience: the plaintext prediction of a model (reference for
/// end-to-end tests and accuracy comparisons). Runs on the immutable
/// [`Model::predict`] path, so a shared reference suffices.
///
/// # Errors
///
/// Propagates layer errors.
pub fn plain_prediction(model: &Model, x: &Tensor) -> Result<usize> {
    let logits = model.predict(x)?;
    Ok(logits.argmax().unwrap_or(0))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use c2pi_nn::model::{alexnet, ZooConfig};
    use c2pi_pi::engine::PiBackend;

    fn tiny_model() -> Model {
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap()
    }

    fn cfg(noise: f32) -> PipelineConfig {
        PipelineConfig {
            pi: PiConfig { backend: PiBackend::Cheetah, ..Default::default() },
            noise,
            noise_seed: 5,
        }
    }

    #[test]
    fn c2pi_matches_plaintext_without_noise() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
        let plain = plain_prediction(&model, &x).unwrap();
        let mut pipe = C2piPipeline::new(model, BoundaryId::relu(3), cfg(0.0)).unwrap();
        let res = pipe.infer(&x).unwrap();
        assert_eq!(res.prediction, plain);
        assert!(res.revealed_activation.is_some());
        assert!(pipe.clear_layer_count() > 0);
    }

    #[test]
    fn full_pi_matches_plaintext() {
        let mut model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 2);
        let plain_logits = model.forward(&x).unwrap();
        model.seq_mut().clear_cache();
        let mut pipe = C2piPipeline::full_pi(model, cfg(0.0));
        let res = pipe.infer(&x).unwrap();
        assert!(res.revealed_activation.is_none());
        assert_eq!(pipe.clear_layer_count(), 0);
        for (a, b) in plain_logits.as_slice().iter().zip(res.logits.as_slice()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn earlier_boundary_is_cheaper() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 3);
        let mut early = C2piPipeline::new(model.clone(), BoundaryId::relu(2), cfg(0.1)).unwrap();
        let mut full = C2piPipeline::full_pi(model, cfg(0.1));
        let re = early.infer(&x).unwrap();
        let rf = full.infer(&x).unwrap();
        assert!(
            rf.report.comm_mb() > re.report.comm_mb(),
            "full {} MB vs early {} MB",
            rf.report.comm_mb(),
            re.report.comm_mb()
        );
        assert!(rf.report.online.bytes_total() > re.report.online.bytes_total());
    }

    #[test]
    fn noise_perturbs_revealed_activation() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 4);
        let boundary = BoundaryId::relu(3);
        let mut clean_model = model.clone();
        let clean_act = clean_model.forward_to_cut(boundary, &x).unwrap();
        let mut pipe = C2piPipeline::new(model, boundary, cfg(0.5)).unwrap();
        let res = pipe.infer(&x).unwrap();
        let revealed = res.revealed_activation.unwrap();
        let diff = revealed.sub(&clean_act).unwrap();
        // The revealed activation deviates by up to λ (plus fixed-point
        // error) but not more.
        assert!(diff.map(f32::abs).max() > 0.05);
        assert!(diff.map(f32::abs).max() <= 0.5 + 0.05);
    }

    #[test]
    fn reveal_flight_is_counted() {
        let model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 6);
        let mut pipe = C2piPipeline::new(model, BoundaryId::relu(1), cfg(0.1)).unwrap();
        let res = pipe.infer(&x).unwrap();
        // At least the input-share flight plus the reveal flight.
        assert!(res.report.online.flights >= 2);
    }
}
