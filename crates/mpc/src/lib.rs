//! # c2pi-mpc
//!
//! The two-party-computation substrate of the C2PI reproduction: every
//! cryptographic building block the crypto-layer phase needs, implemented
//! from scratch and executed for real over byte-counted
//! [`c2pi_transport`] channels.
//!
//! | Module | Provides |
//! |--------|----------|
//! | [`fixed`] | fixed-point encoding into the ring `Z_2^64` |
//! | [`prg`] | ChaCha12 pseudorandom generator / PRF (no AES crate offline) |
//! | [`share`] | additive secret sharing over `Z_2^64` |
//! | [`dealer`] | trusted-dealer correlated randomness (Beaver triples, base-OT seeds) — stands in for the HE offline phases, see DESIGN.md §3 |
//! | [`ot`] | IKNP OT extension: random OTs, chosen-message OTs, bit triples |
//! | [`gmw`] | boolean sharing, batched AND, log-depth comparison, DReLU |
//! | [`beaver`] | arithmetic multiplication / matmul with triples + truncation |
//! | [`gc`] | Yao garbled circuits with free-XOR and point-and-permute |
//! | [`gcpre`] | offline-garbled masked non-linearities: input-independent garbling in the offline phase, a one-round-trip label exchange online |
//! | [`relu`] | the two secure ReLU protocols (GC-based à la Delphi, comparison-based à la Cheetah/CrypTFlow2) and secure max-pooling |
//!
//! The semi-honest threat model of the paper is assumed throughout.
//!
//! ## Example
//!
//! Additive secret sharing over `Z_2^64`, the substrate every protocol
//! builds on:
//!
//! ```
//! use c2pi_mpc::prg::Prg;
//! use c2pi_mpc::share::{reconstruct, share_secret};
//! use c2pi_mpc::FixedPoint;
//!
//! let fp = FixedPoint::default();
//! let secret = vec![fp.encode(1.5), fp.encode(-0.25)];
//! let mut prg = Prg::from_u64(7);
//! let (client, server) = share_secret(&secret, &mut prg);
//! // Each share alone is uniformly random; together they reconstruct.
//! let raw = reconstruct(&client, &server);
//! assert_eq!(fp.decode(raw[0]), 1.5);
//! assert_eq!(fp.decode(raw[1]), -0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beaver;
pub mod dealer;
pub mod error;
pub mod fixed;
pub mod gc;
pub mod gcpre;
pub mod gmw;
pub mod ot;
pub mod prg;
pub mod relu;
pub mod ring;
pub mod share;

pub use error::MpcError;
pub use fixed::FixedPoint;
pub use share::ShareVec;

/// Convenience result alias for MPC operations.
pub type Result<T> = std::result::Result<T, MpcError>;
