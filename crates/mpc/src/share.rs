//! Additive secret sharing over `Z_2^64`.

use crate::prg::Prg;
use serde::{Deserialize, Serialize};

/// One party's additive share of a vector of ring elements: the secret is
/// the elementwise wrapping sum of the two parties' [`ShareVec`]s.
///
/// The type deliberately does **not** expose the plaintext: recovering it
/// requires both halves via [`reconstruct`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareVec(Vec<u64>);

impl ShareVec {
    /// Wraps raw ring elements as a share.
    pub fn from_raw(values: Vec<u64>) -> Self {
        ShareVec(values)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the share is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw ring elements (each individually uniform, hence safe to
    /// transmit).
    pub fn as_raw(&self) -> &[u64] {
        &self.0
    }

    /// Consumes the share, returning the raw elements.
    pub fn into_raw(self) -> Vec<u64> {
        self.0
    }

    /// Elementwise wrapping sum of two shares (shares of `x + y`).
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn add(&self, other: &ShareVec) -> ShareVec {
        assert_eq!(self.len(), other.len(), "share length mismatch");
        ShareVec(self.0.iter().zip(other.0.iter()).map(|(&a, &b)| a.wrapping_add(b)).collect())
    }

    /// Elementwise wrapping difference (shares of `x - y`).
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn sub(&self, other: &ShareVec) -> ShareVec {
        assert_eq!(self.len(), other.len(), "share length mismatch");
        ShareVec(self.0.iter().zip(other.0.iter()).map(|(&a, &b)| a.wrapping_sub(b)).collect())
    }

    /// Multiplies by a *public* constant (shares of `c·x`).
    pub fn scale_public(&self, c: u64) -> ShareVec {
        ShareVec(self.0.iter().map(|&a| a.wrapping_mul(c)).collect())
    }

    /// Adds a *public* vector to the share. Exactly one party must do
    /// this, which the `party_adds` flag makes explicit at call sites.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn add_public(&self, public: &[u64], party_adds: bool) -> ShareVec {
        assert_eq!(self.len(), public.len(), "share length mismatch");
        if party_adds {
            ShareVec(self.0.iter().zip(public.iter()).map(|(&a, &p)| a.wrapping_add(p)).collect())
        } else {
            self.clone()
        }
    }
}

/// Splits a secret vector into two uniform additive shares using the
/// given PRG for the masking randomness.
pub fn share_secret(secret: &[u64], prg: &mut Prg) -> (ShareVec, ShareVec) {
    let mask: Vec<u64> = prg.next_u64s(secret.len());
    let other: Vec<u64> =
        secret.iter().zip(mask.iter()).map(|(&s, &m)| s.wrapping_sub(m)).collect();
    (ShareVec(mask), ShareVec(other))
}

/// Reconstructs the secret from both shares.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn reconstruct(a: &ShareVec, b: &ShareVec) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "share length mismatch");
    a.0.iter().zip(b.0.iter()).map(|(&x, &y)| x.wrapping_add(y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn share_and_reconstruct_round_trip() {
        let secret: Vec<u64> = vec![0, 1, u64::MAX, 42, 1 << 63];
        let mut prg = Prg::from_u64(1);
        let (a, b) = share_secret(&secret, &mut prg);
        assert_eq!(reconstruct(&a, &b), secret);
    }

    #[test]
    fn single_share_is_masked() {
        let secret = vec![7u64; 16];
        let mut prg = Prg::from_u64(2);
        let (a, _) = share_secret(&secret, &mut prg);
        // The masked half should not equal the constant secret.
        assert_ne!(a.as_raw(), secret.as_slice());
    }

    #[test]
    fn linear_operations_commute_with_reconstruction() {
        let x = vec![10u64, 20, 30];
        let y = vec![1u64, 2, 3];
        let mut prg = Prg::from_u64(3);
        let (x0, x1) = share_secret(&x, &mut prg);
        let (y0, y1) = share_secret(&y, &mut prg);
        let sum = reconstruct(&x0.add(&y0), &x1.add(&y1));
        assert_eq!(sum, vec![11, 22, 33]);
        let diff = reconstruct(&x0.sub(&y0), &x1.sub(&y1));
        assert_eq!(diff, vec![9, 18, 27]);
        let scaled = reconstruct(&x0.scale_public(5), &x1.scale_public(5));
        assert_eq!(scaled, vec![50, 100, 150]);
    }

    #[test]
    fn add_public_applies_once() {
        let x = vec![100u64];
        let mut prg = Prg::from_u64(4);
        let (x0, x1) = share_secret(&x, &mut prg);
        let p = vec![5u64];
        let r = reconstruct(&x0.add_public(&p, true), &x1.add_public(&p, false));
        assert_eq!(r, vec![105]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = ShareVec::from_raw(vec![1]);
        let b = ShareVec::from_raw(vec![1, 2]);
        a.add(&b);
    }

    proptest! {
        #[test]
        fn reconstruction_is_exact(secret in proptest::collection::vec(any::<u64>(), 1..64), seed in any::<u64>()) {
            let mut prg = Prg::from_u64(seed);
            let (a, b) = share_secret(&secret, &mut prg);
            prop_assert_eq!(reconstruct(&a, &b), secret);
        }

        #[test]
        fn shares_of_zero_are_negations(n in 1usize..32, seed in any::<u64>()) {
            let mut prg = Prg::from_u64(seed);
            let (a, b) = share_secret(&vec![0u64; n], &mut prg);
            for (x, y) in a.as_raw().iter().zip(b.as_raw()) {
                prop_assert_eq!(x.wrapping_add(*y), 0);
            }
        }
    }
}
