//! Fixed-point encoding into the ring `Z_2^64`.
//!
//! All secure arithmetic operates on 64-bit ring elements holding
//! two's-complement fixed-point numbers with [`FixedPoint::frac_bits`]
//! fractional bits. After a secure multiplication the scale doubles; the
//! truncation protocols in [`crate::beaver`] bring it back.

use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Fixed-point format descriptor.
///
/// ```
/// use c2pi_mpc::FixedPoint;
/// let fp = FixedPoint::default();
/// let x = fp.encode(-1.5);
/// assert!((fp.decode(x) + 1.5).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPoint {
    frac_bits: u32,
}

impl Default for FixedPoint {
    /// 12 fractional bits — the common choice of Delphi-era PI systems,
    /// giving ~3 decimal digits below the point and ample headroom above.
    fn default() -> Self {
        FixedPoint { frac_bits: 12 }
    }
}

impl FixedPoint {
    /// Creates a format with the given number of fractional bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= frac_bits <= 30`.
    pub fn new(frac_bits: u32) -> Self {
        assert!((1..=30).contains(&frac_bits), "frac_bits must be in 1..=30");
        FixedPoint { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(&self) -> f32 {
        (1u64 << self.frac_bits) as f32
    }

    /// Encodes a float as a ring element (round-to-nearest,
    /// two's-complement wrap).
    pub fn encode(&self, x: f32) -> u64 {
        (x * self.scale()).round() as i64 as u64
    }

    /// Decodes a ring element back to a float.
    pub fn decode(&self, v: u64) -> f32 {
        (v as i64) as f32 / self.scale()
    }

    /// Encodes a whole tensor into a ring-element vector (row-major).
    pub fn encode_tensor(&self, t: &Tensor) -> Vec<u64> {
        t.as_slice().iter().map(|&x| self.encode(x)).collect()
    }

    /// Decodes a ring-element vector into a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the length does not match the shape.
    pub fn decode_tensor(
        &self,
        v: &[u64],
        dims: &[usize],
    ) -> std::result::Result<Tensor, c2pi_tensor::TensorError> {
        Tensor::from_vec(v.iter().map(|&x| self.decode(x)).collect(), dims)
    }

    /// Local truncation by `frac_bits` (arithmetic shift on the signed
    /// interpretation) — exact when applied to a *plaintext* value.
    pub fn truncate(&self, v: u64) -> u64 {
        ((v as i64) >> self.frac_bits) as u64
    }

    /// Largest representable magnitude before overflow.
    pub fn max_magnitude(&self) -> f32 {
        (i64::MAX as f32) / self.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_round_trips_small_values() {
        let fp = FixedPoint::default();
        for x in [-10.0f32, -1.5, -0.001, 0.0, 0.25, 3.75, 100.0] {
            let err = (fp.decode(fp.encode(x)) - x).abs();
            assert!(err <= 1.0 / fp.scale(), "{x}: err {err}");
        }
    }

    #[test]
    fn negative_values_use_twos_complement() {
        let fp = FixedPoint::default();
        let v = fp.encode(-1.0);
        assert!(v > u64::MAX / 2); // high bit set
        assert_eq!(fp.decode(v), -1.0);
    }

    #[test]
    fn addition_wraps_correctly() {
        let fp = FixedPoint::default();
        let a = fp.encode(1.5);
        let b = fp.encode(-2.25);
        assert!((fp.decode(a.wrapping_add(b)) + 0.75).abs() < 1e-3);
    }

    #[test]
    fn multiplication_then_truncation_recovers_product() {
        let fp = FixedPoint::default();
        let a = fp.encode(1.5);
        let b = fp.encode(-2.0);
        let prod = a.wrapping_mul(b);
        assert!((fp.decode(fp.truncate(prod)) + 3.0).abs() < 1e-2);
    }

    #[test]
    fn tensor_round_trip() {
        let fp = FixedPoint::default();
        let t = Tensor::rand_uniform(&[2, 3], -4.0, 4.0, 1);
        let enc = fp.encode_tensor(&t);
        let dec = fp.decode_tensor(&enc, &[2, 3]).unwrap();
        for (a, b) in t.as_slice().iter().zip(dec.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn zero_frac_bits_rejected() {
        FixedPoint::new(0);
    }

    proptest! {
        #[test]
        fn encode_is_additively_homomorphic(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
            let fp = FixedPoint::default();
            let sum = fp.decode(fp.encode(a).wrapping_add(fp.encode(b)));
            prop_assert!((sum - (a + b)).abs() < 2.0 / fp.scale() + (a + b).abs() * 1e-5);
        }

        #[test]
        fn truncate_matches_signed_shift(x in -10_000.0f32..10_000.0) {
            let fp = FixedPoint::new(8);
            let enc = fp.encode(x * fp.scale()); // value with doubled scale
            let dec = fp.decode(fp.truncate(enc));
            prop_assert!((dec - x).abs() < 0.01 + x.abs() * 1e-4);
        }
    }
}
