//! GMW-style boolean two-party computation: XOR-shared bits, batched
//! AND via bit triples, a log-depth millionaires' comparison, and the
//! DReLU (sign) protocol that powers the Cheetah/CrypTFlow2-flavoured
//! ReLU.

use crate::ot::BitTriples;
use crate::{MpcError, Result};
use c2pi_transport::Channel;

/// XOR-shared bit vector: the secret bits are `mine ⊕ peer` elementwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitShareVec(pub Vec<bool>);

impl BitShareVec {
    /// Number of bits.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Free local XOR of two shared vectors.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn xor(&self, other: &BitShareVec) -> BitShareVec {
        assert_eq!(self.len(), other.len(), "bit share length mismatch");
        BitShareVec(self.0.iter().zip(other.0.iter()).map(|(&a, &b)| a ^ b).collect())
    }

    /// XOR with a public constant vector — exactly one party applies it.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn xor_public(&self, public: &[bool], party_applies: bool) -> BitShareVec {
        assert_eq!(self.len(), public.len(), "bit share length mismatch");
        if party_applies {
            BitShareVec(self.0.iter().zip(public.iter()).map(|(&a, &p)| a ^ p).collect())
        } else {
            self.clone()
        }
    }
}

fn pack(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack(bytes: &[u8], n: usize) -> Result<Vec<bool>> {
    if bytes.len() < n.div_ceil(8) {
        return Err(MpcError::Protocol(format!("bit frame of {} bytes for {n} bits", bytes.len())));
    }
    Ok((0..n).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect())
}

/// Batched secure AND of two XOR-shared vectors, consuming one bit
/// triple per position. One round trip (both parties exchange their
/// opened `d = x⊕a`, `e = y⊕b` shares simultaneously).
///
/// `is_initiator` breaks the send/receive symmetry; parties pass
/// opposite values.
///
/// # Errors
///
/// Returns transport/protocol errors or triple-pool exhaustion.
pub fn and_batch<C: Channel + ?Sized>(
    ep: &C,
    is_initiator: bool,
    x: &BitShareVec,
    y: &BitShareVec,
    triples: &mut BitTriples,
) -> Result<BitShareVec> {
    let n = x.len();
    if y.len() != n {
        return Err(MpcError::BadConfig("and_batch length mismatch".into()));
    }
    let t = triples.take(n)?;
    // Open d = x ⊕ a and e = y ⊕ b.
    let mut opened: Vec<bool> = Vec::with_capacity(2 * n);
    for i in 0..n {
        opened.push(x.0[i] ^ t.a[i]);
    }
    for i in 0..n {
        opened.push(y.0[i] ^ t.b[i]);
    }
    let peer_opened;
    if is_initiator {
        ep.send_bytes(&pack(&opened))?;
        peer_opened = unpack(&ep.recv_bytes()?, 2 * n)?;
    } else {
        peer_opened = unpack(&ep.recv_bytes()?, 2 * n)?;
        ep.send_bytes(&pack(&opened))?;
    }
    let mut z = Vec::with_capacity(n);
    for i in 0..n {
        let d = opened[i] ^ peer_opened[i];
        let e = opened[n + i] ^ peer_opened[n + i];
        // z = c ⊕ d·b ⊕ e·a ⊕ d·e (d·e added by the initiator only).
        let mut zi = t.c[i] ^ (d & t.b[i]) ^ (e & t.a[i]);
        if is_initiator {
            zi ^= d & e;
        }
        z.push(zi);
    }
    Ok(BitShareVec(z))
}

/// Batched millionaires' protocol: party 0 holds private values `u`,
/// party 1 holds private values `v` (both `bits`-bit unsigned); the
/// output is an XOR-sharing of `[v > u]` per element.
///
/// Implemented as the classic `(lt, eq)` tree: leaf `lt_i = ¬u_i ∧ v_i`,
/// `eq_i = ¬(u_i ⊕ v_i)`, combined pairwise in `⌈log₂ bits⌉` levels —
/// each level is one batched [`and_batch`] round.
///
/// `my_values` are the party's own private inputs; `is_party0` selects
/// the `u` role (and initiator).
///
/// # Errors
///
/// Returns transport errors or triple exhaustion.
pub fn millionaire_batch<C: Channel + ?Sized>(
    ep: &C,
    is_party0: bool,
    my_values: &[u64],
    bits: u32,
    triples: &mut BitTriples,
) -> Result<BitShareVec> {
    let n = my_values.len();
    let w = bits as usize;
    // Build leaf shares. For party 0 (holder of u): lt share inputs are
    // (¬u_i, 0)-style private sharings; the AND protocol multiplies the
    // two parties' private bits.
    let mut lt = BitShareVec(vec![false; n * w]);
    let mut eq_pub_mine: Vec<bool> = Vec::with_capacity(n * w);
    let mut my_bits_vec: Vec<bool> = Vec::with_capacity(n * w);
    for &val in my_values {
        for bit in 0..w {
            let b = (val >> bit) & 1 == 1;
            my_bits_vec.push(b);
            eq_pub_mine.push(b);
        }
    }
    // lt_i = (¬u_i) ∧ v_i: party0 inputs ¬u_i, party1 inputs v_i; each
    // party's AND operand is its private bit XOR-shared as (bit, 0).
    let lhs = if is_party0 {
        BitShareVec(my_bits_vec.iter().map(|&b| !b).collect())
    } else {
        BitShareVec(vec![false; n * w])
    };
    let rhs =
        if is_party0 { BitShareVec(vec![false; n * w]) } else { BitShareVec(my_bits_vec.clone()) };
    let leaf_lt = and_batch(ep, is_party0, &lhs, &rhs, triples)?;
    lt.0.copy_from_slice(&leaf_lt.0);
    // eq_i = ¬(u_i ⊕ v_i): share = own bits, party0 also flips.
    let mut eq = BitShareVec(eq_pub_mine);
    if is_party0 {
        eq = BitShareVec(eq.0.iter().map(|&b| !b).collect());
    }
    // Tree combine, least-significant pairs first. Elements are laid out
    // bit-minor: [elem0 bit0..w, elem1 bit0..w, ...]. At each level,
    // combine (lo, hi) adjacent pairs: LT = lt_hi ⊕ eq_hi·lt_lo,
    // EQ = eq_hi·eq_lo.
    let mut width = w;
    while width > 1 {
        let half = width / 2;
        let odd = width % 2 == 1;
        let pairs = n * half;
        let mut lt_lo = Vec::with_capacity(pairs);
        let mut lt_hi = Vec::with_capacity(pairs);
        let mut eq_lo = Vec::with_capacity(pairs);
        let mut eq_hi = Vec::with_capacity(pairs);
        for e in 0..n {
            let base = e * width;
            for p in 0..half {
                lt_lo.push(lt.0[base + 2 * p]);
                lt_hi.push(lt.0[base + 2 * p + 1]);
                eq_lo.push(eq.0[base + 2 * p]);
                eq_hi.push(eq.0[base + 2 * p + 1]);
            }
        }
        // Two ANDs per pair, batched into one call of size 2·pairs.
        let mut left = eq_hi.clone();
        left.extend_from_slice(&eq_hi);
        let mut right = lt_lo.clone();
        right.extend_from_slice(&eq_lo);
        let prod = and_batch(ep, is_party0, &BitShareVec(left), &BitShareVec(right), triples)?;
        let new_width = half + usize::from(odd);
        let mut new_lt = vec![false; n * new_width];
        let mut new_eq = vec![false; n * new_width];
        for e in 0..n {
            for p in 0..half {
                let idx = e * half + p;
                new_lt[e * new_width + p] = lt_hi[idx] ^ prod.0[idx];
                new_eq[e * new_width + p] = prod.0[pairs + idx];
            }
            if odd {
                // Carry the unpaired most-significant entry up unchanged.
                new_lt[e * new_width + half] = lt.0[e * width + width - 1];
                new_eq[e * new_width + half] = eq.0[e * width + width - 1];
            }
        }
        lt = BitShareVec(new_lt);
        eq = BitShareVec(new_eq);
        width = new_width;
    }
    Ok(lt)
}

/// DReLU over additively shared ring values: returns an XOR-sharing of
/// `[x ≥ 0]` for each element, where `x = my_share + peer_share`
/// (mod 2^64) holds a two's-complement fixed-point value.
///
/// Uses `msb(x) = msb(x0) ⊕ msb(x1) ⊕ carry₆₃`, with the carry computed
/// by one millionaires' comparison on the low 63 bits.
///
/// # Errors
///
/// Returns transport errors or triple exhaustion.
pub fn drelu_batch<C: Channel + ?Sized>(
    ep: &C,
    is_party0: bool,
    my_share: &[u64],
    triples: &mut BitTriples,
) -> Result<BitShareVec> {
    const LOW_MASK: u64 = (1u64 << 63) - 1;
    // carry = (x0_low + x1_low ≥ 2^63) = (x1_low > ~x0_low mod 2^63).
    let inputs: Vec<u64> = if is_party0 {
        my_share.iter().map(|&s| (!s) & LOW_MASK).collect()
    } else {
        my_share.iter().map(|&s| s & LOW_MASK).collect()
    };
    let carry = millionaire_batch(ep, is_party0, &inputs, 63, triples)?;
    // msb share = own msb ⊕ carry share; drelu = ¬msb (party 0 flips).
    let out: Vec<bool> = my_share
        .iter()
        .zip(carry.0.iter())
        .map(|(&s, &c)| {
            let msb_share = (s >> 63) & 1 == 1;
            let m = msb_share ^ c;
            if is_party0 {
                !m
            } else {
                m
            }
        })
        .collect();
    Ok(BitShareVec(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::Dealer;
    use crate::fixed::FixedPoint;
    use crate::ot::{gen_bit_triples, KAPPA};
    use crate::prg::Prg;
    use crate::share::share_secret;
    use c2pi_transport::channel_pair;

    /// Generates matched triple pools for both parties over a throwaway
    /// channel.
    fn triple_pools(n: usize, seed: u64) -> (BitTriples, BitTriples) {
        let mut dealer = Dealer::new(seed);
        let (c_snd, s_rcv) = dealer.base_ots(KAPPA);
        let (s_snd, c_rcv) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(seed ^ 1);
            gen_bit_triples(&server, false, &s_snd, &s_rcv, n, &mut prg).unwrap()
        });
        let mut prg = Prg::from_u64(seed ^ 2);
        let mine = gen_bit_triples(&client, true, &c_snd, &c_rcv, n, &mut prg).unwrap();
        (mine, t.join().unwrap())
    }

    #[test]
    fn and_batch_computes_conjunction() {
        let (mut tc, mut ts) = triple_pools(256, 31);
        let (client, server, _) = channel_pair();
        // Party 0 privately holds x, party 1 privately holds y.
        let x: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let y: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let xc = x.clone();
        let yc = y.clone();
        let t = std::thread::spawn(move || {
            and_batch(&server, false, &BitShareVec(vec![false; 64]), &BitShareVec(yc), &mut ts)
                .unwrap()
        });
        let mine =
            and_batch(&client, true, &BitShareVec(xc), &BitShareVec(vec![false; 64]), &mut tc)
                .unwrap();
        let theirs = t.join().unwrap();
        for i in 0..64 {
            assert_eq!(mine.0[i] ^ theirs.0[i], x[i] & y[i], "position {i}");
        }
    }

    #[test]
    fn millionaire_compares_correctly() {
        let n = 40;
        let (mut tc, mut ts) = triple_pools(40 * 63 * 4, 37);
        let (client, server, _) = channel_pair();
        let mut prg = Prg::from_u64(7);
        let u: Vec<u64> = (0..n).map(|_| prg.next_u64() & ((1 << 20) - 1)).collect();
        let mut v: Vec<u64> = (0..n).map(|_| prg.next_u64() & ((1 << 20) - 1)).collect();
        // Force some edge cases.
        v[0] = u[0]; // equal => v > u is false
        v[1] = u[1] + 1;
        if u[2] > 0 {
            v[2] = u[2] - 1;
        }
        let uc = u.clone();
        let vc = v.clone();
        let t = std::thread::spawn(move || {
            millionaire_batch(&server, false, &vc, 20, &mut ts).unwrap()
        });
        let mine = millionaire_batch(&client, true, &uc, 20, &mut tc).unwrap();
        let theirs = t.join().unwrap();
        for i in 0..n {
            assert_eq!(mine.0[i] ^ theirs.0[i], v[i] > u[i], "element {i}: v={} u={}", v[i], u[i]);
        }
    }

    #[test]
    fn drelu_recovers_sign_of_fixed_point_values() {
        let fp = FixedPoint::default();
        let values: Vec<f32> =
            vec![-5.0, -0.25, -0.0005, 0.0, 0.0005, 0.25, 5.0, 100.0, -100.0, 1.5];
        let secret: Vec<u64> = values.iter().map(|&x| fp.encode(x)).collect();
        let mut prg = Prg::from_u64(77);
        let (s0, s1) = share_secret(&secret, &mut prg);
        let (mut tc, mut ts) = triple_pools(values.len() * 63 * 4, 41);
        let (client, server, _) = channel_pair();
        let s1_raw = s1.as_raw().to_vec();
        let t = std::thread::spawn(move || drelu_batch(&server, false, &s1_raw, &mut ts).unwrap());
        let mine = drelu_batch(&client, true, s0.as_raw(), &mut tc).unwrap();
        let theirs = t.join().unwrap();
        for (i, &x) in values.iter().enumerate() {
            let got = mine.0[i] ^ theirs.0[i];
            assert_eq!(got, x >= 0.0, "value {x}");
        }
    }

    #[test]
    fn xor_is_free_and_local() {
        let a = BitShareVec(vec![true, false, true]);
        let b = BitShareVec(vec![true, true, false]);
        assert_eq!(a.xor(&b).0, vec![false, true, true]);
        assert_eq!(a.xor_public(&[true, true, true], false), a);
        assert_eq!(a.xor_public(&[true, true, true], true).0, vec![false, true, false]);
    }

    #[test]
    fn and_batch_rejects_mismatched_lengths() {
        let (mut tc, _) = triple_pools(8, 43);
        let (client, _server, _) = channel_pair();
        let r = and_batch(
            &client,
            true,
            &BitShareVec(vec![false; 2]),
            &BitShareVec(vec![false; 3]),
            &mut tc,
        );
        assert!(r.is_err());
    }
}
