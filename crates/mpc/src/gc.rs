//! Yao garbled circuits with free-XOR, point-and-permute and
//! **half-gates** AND garbling — the non-linear-layer protocol of
//! Delphi-style private inference.
//!
//! * wire labels are 128-bit; the global offset Δ has its low bit set so
//!   the label's low bit doubles as the permute bit;
//! * XOR and NOT gates are free (label arithmetic only — zero tables,
//!   zero hash calls);
//! * AND gates use the half-gates construction (Zahur–Rosulek–Evans,
//!   EUROCRYPT 2015): a generator half and an evaluator half, **two**
//!   ciphertexts per gate instead of the classic four-row table. Each
//!   half is one correlation-robust hash [`crate::prg::hash128`] of a
//!   single operand label under a per-gate tweak;
//! * outputs are decoded with one permute bit per output wire.
//!
//! The classic four-row scheme is kept as a reference implementation
//! ([`garble_open_classic`] / [`evaluate_classic`]): the cross-scheme
//! parity tests pin that both schemes decode the same plaintext results
//! for the ReLU and maxpool circuits, and the table-bytes tests pin the
//! 2×-smaller material footprint of the half-gates path.
//!
//! The module also provides the masked-ReLU circuit used by
//! [`crate::relu::gc_relu_garbler`]: it reconstructs `x = x₀ + x₁`,
//! zeroes it when negative, and re-masks the result with the garbler's
//! fresh randomness so the parties end with additive shares.

use crate::prg::{hash128, prf128_pair, Prg};
use crate::{MpcError, Result};
use std::sync::OnceLock;

/// Index of a wire in a [`Circuit`].
pub type WireId = usize;

/// A boolean gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// `out = a ⊕ b` (free).
    Xor {
        /// Left operand wire.
        a: WireId,
        /// Right operand wire.
        b: WireId,
        /// Output wire.
        out: WireId,
    },
    /// `out = a ∧ b` (one garbled table).
    And {
        /// Left operand wire.
        a: WireId,
        /// Right operand wire.
        b: WireId,
        /// Output wire.
        out: WireId,
    },
    /// `out = ¬a` (free).
    Inv {
        /// Operand wire.
        a: WireId,
        /// Output wire.
        out: WireId,
    },
}

/// A boolean circuit with two input partitions (garbler, evaluator).
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    n_wires: usize,
    garbler_inputs: Vec<WireId>,
    evaluator_inputs: Vec<WireId>,
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
}

impl Circuit {
    /// Number of AND gates (the communication cost driver).
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And { .. })).count()
    }

    /// Number of XOR gates (free under free-XOR: zero tables, zero hash
    /// calls — tracked so cost reports can show what the garbling
    /// scheme gets for free).
    pub fn xor_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::Xor { .. })).count()
    }

    /// Number of garbler input wires.
    pub fn garbler_input_count(&self) -> usize {
        self.garbler_inputs.len()
    }

    /// Number of evaluator input wires.
    pub fn evaluator_input_count(&self) -> usize {
        self.evaluator_inputs.len()
    }

    /// Number of output wires.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Total wires.
    pub fn wire_count(&self) -> usize {
        self.n_wires
    }

    /// Plaintext evaluation for testing and spec purposes.
    ///
    /// # Errors
    ///
    /// Returns an error when input lengths disagree with the circuit.
    pub fn eval_plain(&self, garbler_bits: &[bool], evaluator_bits: &[bool]) -> Result<Vec<bool>> {
        if garbler_bits.len() != self.garbler_inputs.len()
            || evaluator_bits.len() != self.evaluator_inputs.len()
        {
            return Err(MpcError::BadConfig("plain eval input length mismatch".into()));
        }
        let mut vals = vec![false; self.n_wires];
        for (w, &b) in self.garbler_inputs.iter().zip(garbler_bits) {
            vals[*w] = b;
        }
        for (w, &b) in self.evaluator_inputs.iter().zip(evaluator_bits) {
            vals[*w] = b;
        }
        for g in &self.gates {
            match *g {
                Gate::Xor { a, b, out } => vals[out] = vals[a] ^ vals[b],
                Gate::And { a, b, out } => vals[out] = vals[a] & vals[b],
                Gate::Inv { a, out } => vals[out] = !vals[a],
            }
        }
        Ok(self.outputs.iter().map(|&w| vals[w]).collect())
    }
}

/// Incremental circuit builder.
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    fn fresh(&mut self) -> WireId {
        let w = self.circuit.n_wires;
        self.circuit.n_wires += 1;
        w
    }

    /// Allocates a garbler input wire.
    pub fn garbler_input(&mut self) -> WireId {
        let w = self.fresh();
        self.circuit.garbler_inputs.push(w);
        w
    }

    /// Allocates an evaluator input wire.
    pub fn evaluator_input(&mut self) -> WireId {
        let w = self.fresh();
        self.circuit.evaluator_inputs.push(w);
        w
    }

    /// Adds `out = a ⊕ b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh();
        self.circuit.gates.push(Gate::Xor { a, b, out });
        out
    }

    /// Adds `out = a ∧ b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh();
        self.circuit.gates.push(Gate::And { a, b, out });
        out
    }

    /// Adds `out = ¬a`.
    pub fn inv(&mut self, a: WireId) -> WireId {
        let out = self.fresh();
        self.circuit.gates.push(Gate::Inv { a, out });
        out
    }

    /// Marks a wire as a circuit output.
    pub fn output(&mut self, w: WireId) {
        self.circuit.outputs.push(w);
    }

    /// Ripple-carry adder over little-endian bit vectors; returns the sum
    /// bits (carry-out discarded: arithmetic is mod 2^len).
    ///
    /// Uses the standard one-AND full adder:
    /// `s = a⊕b⊕c`, `c' = c ⊕ (a⊕c)∧(b⊕c)`.
    ///
    /// # Panics
    ///
    /// Panics when operand widths differ.
    pub fn add_mod2n(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len(), "adder width mismatch");
        let mut sum = Vec::with_capacity(a.len());
        let mut carry: Option<WireId> = None;
        for (&ai, &bi) in a.iter().zip(b.iter()) {
            match carry {
                None => {
                    sum.push(self.xor(ai, bi));
                    carry = Some(self.and(ai, bi));
                }
                Some(c) => {
                    let axc = self.xor(ai, c);
                    let s = self.xor(axc, bi);
                    sum.push(s);
                    let bxc = self.xor(bi, c);
                    let t = self.and(axc, bxc);
                    carry = Some(self.xor(c, t));
                }
            }
        }
        sum
    }

    /// Increment-by-one over a little-endian bit vector (mod 2^len):
    /// `s₀ = ¬x₀`, carry ripples through AND gates.
    pub fn inc_mod2n(&mut self, x: &[WireId]) -> Vec<WireId> {
        let mut out = Vec::with_capacity(x.len());
        let mut carry: Option<WireId> = None;
        for &xi in x {
            match carry {
                None => {
                    out.push(self.inv(xi));
                    carry = Some(xi);
                }
                Some(c) => {
                    out.push(self.xor(xi, c));
                    carry = Some(self.and(xi, c));
                }
            }
        }
        out
    }

    /// Two's-complement subtraction `a − b = a + ¬b + 1` (mod 2^len).
    ///
    /// # Panics
    ///
    /// Panics when operand widths differ.
    pub fn sub_mod2n(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len(), "subtractor width mismatch");
        let nb: Vec<WireId> = b.iter().map(|&w| self.inv(w)).collect();
        let t = self.add_mod2n(a, &nb);
        self.inc_mod2n(&t)
    }

    /// `a ≥ b` over two's-complement bit vectors, as the complement of
    /// the sign of `a − b` — computed from the **carry chain alone**.
    ///
    /// `a − b = a + ¬b + 1`: only the top sum bit is consumed, so the
    /// full subtractor's 2·len−1 AND gates collapse to the len−1 ANDs of
    /// the carry ripple (the constant carry-in of 1 makes the first
    /// carry `a₀ ∨ ¬b₀`, one AND with free inversions). The sign bit is
    /// `a⊕¬b⊕c` at the top position and the result is its complement,
    /// which the constant folds into plain XORs: `a ≥ b = aₜ⊕bₜ⊕cₜ`.
    ///
    /// Correct when `|a − b| < 2^(bits−1)` (same no-overflow
    /// precondition as [`CircuitBuilder::max_signed`]).
    ///
    /// # Panics
    ///
    /// Panics when operand widths differ or are below two bits.
    pub fn ge_signed(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len(), "comparator width mismatch");
        let bits = a.len();
        assert!(bits >= 2, "signed comparison needs at least two bits");
        // c₁ = carry(a₀, ¬b₀, 1) = a₀ ∨ ¬b₀ = ¬(¬a₀ ∧ b₀).
        let na0 = self.inv(a[0]);
        let t0 = self.and(na0, b[0]);
        let mut c = self.inv(t0);
        // cᵢ₊₁ = c ⊕ (aᵢ⊕c)∧(¬bᵢ⊕c); ¬bᵢ⊕c is a free inverted XOR.
        for i in 1..bits - 1 {
            let axc = self.xor(a[i], c);
            let bxc = self.xor(b[i], c);
            let nbxc = self.inv(bxc);
            let t = self.and(axc, nbxc);
            c = self.xor(c, t);
        }
        let top = self.xor(a[bits - 1], b[bits - 1]);
        self.xor(top, c)
    }

    /// `max(a, b)` over two's-complement bit vectors: select by
    /// [`CircuitBuilder::ge_signed`] (`out = b ⊕ ((a≥b) ∧ (a ⊕ b))`) —
    /// `2·len − 1` AND gates per max.
    ///
    /// Correct when `|a − b| < 2^(bits−1)` — the difference must not
    /// overflow. The fixed-point pipeline guarantees this: activations
    /// live far below `2^62` in the 64-bit ring, the same precondition
    /// the DReLU carry decomposition relies on.
    ///
    /// # Panics
    ///
    /// Panics when operand widths differ.
    pub fn max_signed(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        let a_ge_b = self.ge_signed(a, b);
        a.iter()
            .zip(b.iter())
            .map(|(&ai, &bi)| {
                let x = self.xor(ai, bi);
                let sel = self.and(x, a_ge_b);
                self.xor(bi, sel)
            })
            .collect()
    }

    /// Finalizes the circuit.
    pub fn build(self) -> Circuit {
        self.circuit
    }
}

/// Builds the batched masked-ReLU circuit for `n` ring elements of
/// `bits` width.
///
/// Input order — evaluator: `x₀` bits per element; garbler: `x₁` bits,
/// then mask (`−r`) bits per element. Output: the bits of
/// `relu(x₀+x₁) − r`, revealed to the evaluator.
pub fn relu_masked_circuit(n: usize, bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    for _ in 0..n {
        let x0: Vec<WireId> = (0..bits).map(|_| b.evaluator_input()).collect();
        let x1: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let mask: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let x = b.add_mod2n(&x0, &x1);
        // drelu = ¬ sign bit; y_i = x_i ∧ drelu.
        let drelu = b.inv(x[bits - 1]);
        let y: Vec<WireId> = x.iter().map(|&xi| b.and(xi, drelu)).collect();
        let out = b.add_mod2n(&y, &mask);
        for w in out {
            b.output(w);
        }
    }
    b.build()
}

/// Builds the batched masked 4-way max circuit used for secure 2×2 max
/// pooling: per element, four additively shared values enter (evaluator
/// holds one share of each, garbler the other), a two-level tournament
/// picks the maximum, and the result leaves re-masked with the garbler's
/// randomness.
///
/// Input order per element — evaluator: shares of `v₀..v₃`; garbler:
/// shares of `v₀..v₃`, then the mask (`−r`) bits.
pub fn maxpool4_masked_circuit(n: usize, bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    for _ in 0..n {
        let ev: Vec<Vec<WireId>> =
            (0..4).map(|_| (0..bits).map(|_| b.evaluator_input()).collect()).collect();
        let ga: Vec<Vec<WireId>> =
            (0..4).map(|_| (0..bits).map(|_| b.garbler_input()).collect()).collect();
        let mask: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let vals: Vec<Vec<WireId>> = (0..4).map(|i| b.add_mod2n(&ev[i], &ga[i])).collect();
        let m1 = b.max_signed(&vals[0], &vals[1]);
        let m2 = b.max_signed(&vals[2], &vals[3]);
        let m = b.max_signed(&m1, &m2);
        let out = b.add_mod2n(&m, &mask);
        for w in out {
            b.output(w);
        }
    }
    b.build()
}

/// Ring width of the cached unit circuits (the session ring).
pub const UNIT_BITS: usize = 64;

/// The single-element 64-bit masked-ReLU circuit, built once per
/// process. Both the batched circuits and the offline-garbling path are
/// element-independent, so every consumer (AND-gate counting in the
/// backends' `prepare_*` hooks, per-element garbling and evaluation)
/// shares this one topology instead of rebuilding it per call.
pub fn relu_unit_circuit() -> &'static Circuit {
    static CIRCUIT: OnceLock<Circuit> = OnceLock::new();
    CIRCUIT.get_or_init(|| relu_masked_circuit(1, UNIT_BITS))
}

/// The single-window 64-bit masked 4-way-max circuit, built once per
/// process (see [`relu_unit_circuit`]).
pub fn maxpool4_unit_circuit() -> &'static Circuit {
    static CIRCUIT: OnceLock<Circuit> = OnceLock::new();
    CIRCUIT.get_or_init(|| maxpool4_masked_circuit(1, UNIT_BITS))
}

/// Bytes one half-gates AND table occupies (two 128-bit rows).
pub const AND_TABLE_BYTES: usize = 32;

/// The garbler's artifacts for one circuit.
#[derive(Debug, Clone)]
pub struct Garbled {
    /// Two-row half-gates tables `[T_G, T_E]` for each AND gate, in
    /// gate order.
    pub tables: Vec<[u128; 2]>,
    /// Label pairs for the evaluator's input wires (transferred by OT).
    pub evaluator_label_pairs: Vec<(u128, u128)>,
    /// Active labels for the garbler's own inputs (sent directly).
    pub garbler_labels: Vec<u128>,
    /// Permute bit of each output wire's zero label (for decoding).
    pub output_decode: Vec<bool>,
}

/// A garbling whose *inputs are still open*: label pairs for every
/// input wire on both sides, so neither party's bits need to be known
/// at garble time. This is the offline-phase artifact: the circuit can
/// be garbled input-independently (during preprocessing) and the active
/// labels selected with [`select_labels`] once the online values exist.
#[derive(Debug, Clone)]
pub struct OpenGarbled {
    /// Two-row half-gates tables `[T_G, T_E]` for each AND gate, in
    /// gate order.
    pub tables: Vec<[u128; 2]>,
    /// Label pairs for the garbler's input wires.
    pub garbler_label_pairs: Vec<(u128, u128)>,
    /// Label pairs for the evaluator's input wires.
    pub evaluator_label_pairs: Vec<(u128, u128)>,
    /// Permute bit of each output wire's zero label (for decoding).
    pub output_decode: Vec<bool>,
    /// The free-XOR global offset: every wire's one-label is its
    /// zero-label ⊕ Δ. Garbler-secret — the evaluator must never see it
    /// (one active label plus Δ reveals both labels of every wire).
    /// Exposing it here lets dealt *garbler-side* material store one
    /// label per wire instead of a pair.
    pub delta: u128,
}

impl OpenGarbled {
    /// Bytes the AND tables occupy (2 rows × 16 B per gate; XOR gates
    /// contribute nothing).
    pub fn table_bytes(&self) -> usize {
        self.tables.len() * AND_TABLE_BYTES
    }
}

/// The classic four-row garbling artifact, kept as the reference
/// implementation the half-gates scheme is tested against.
#[derive(Debug, Clone)]
pub struct ClassicOpenGarbled {
    /// Four-row point-and-permute tables for each AND gate, in gate
    /// order.
    pub tables: Vec<[u128; 4]>,
    /// Label pairs for the garbler's input wires.
    pub garbler_label_pairs: Vec<(u128, u128)>,
    /// Label pairs for the evaluator's input wires.
    pub evaluator_label_pairs: Vec<(u128, u128)>,
    /// Permute bit of each output wire's zero label (for decoding).
    pub output_decode: Vec<bool>,
}

impl ClassicOpenGarbled {
    /// Bytes the AND tables occupy (4 rows × 16 B per gate).
    pub fn table_bytes(&self) -> usize {
        self.tables.len() * 64
    }
}

/// Selects the active labels for `bits` from per-wire label pairs.
///
/// # Panics
///
/// Panics when the lengths disagree (a caller bug).
pub fn select_labels(pairs: &[(u128, u128)], bits: &[bool]) -> Vec<u128> {
    assert_eq!(pairs.len(), bits.len(), "label pair / bit count mismatch");
    pairs.iter().zip(bits.iter()).map(|(&(l0, l1), &b)| if b { l1 } else { l0 }).collect()
}

/// Garbles `circuit` without fixing any input bits, returning label
/// pairs for every input wire (see [`OpenGarbled`]).
///
/// Half-gates AND garbling: with zero labels `Wa⁰, Wb⁰`, permute bits
/// `p = lsb(W⁰)` and `H = hash128(·, tweak)` keyed by the gate index,
///
/// ```text
/// T_G = H(Wa⁰, 2g) ⊕ H(Wa⁰⊕Δ, 2g) ⊕ p_b·Δ        (generator half)
/// T_E = H(Wb⁰, 2g+1) ⊕ H(Wb⁰⊕Δ, 2g+1) ⊕ Wa⁰      (evaluator half)
/// Wc⁰ = H(Wa⁰, 2g) ⊕ p_a·T_G ⊕ H(Wb⁰, 2g+1) ⊕ p_b·(T_E ⊕ Wa⁰)
/// ```
///
/// Four hash calls and two ciphertexts per AND; XOR/NOT gates touch no
/// hash and emit nothing. Draws from `prg` in the same order as
/// [`garble`], so fixing the garbler bits of an open garbling
/// afterwards reproduces [`garble`] bit for bit.
pub fn garble_open(circuit: &Circuit, prg: &mut Prg) -> OpenGarbled {
    let delta = prg.next_u128() | 1; // low bit set: permute bit offset
    let mut zero = vec![0u128; circuit.n_wires];
    for &w in circuit.garbler_inputs.iter().chain(circuit.evaluator_inputs.iter()) {
        zero[w] = prg.next_u128();
    }
    let mut tables = Vec::with_capacity(circuit.and_count());
    for (gid, gate) in circuit.gates.iter().enumerate() {
        match *gate {
            Gate::Xor { a, b, out } => zero[out] = zero[a] ^ zero[b],
            Gate::Inv { a, out } => zero[out] = zero[a] ^ delta,
            Gate::And { a, b, out } => {
                let (wa0, wb0) = (zero[a], zero[b]);
                let pa = wa0 & 1 == 1;
                let pb = wb0 & 1 == 1;
                let t = (gid as u64) << 1;
                let ha0 = hash128(wa0, t);
                let ha1 = hash128(wa0 ^ delta, t);
                let hb0 = hash128(wb0, t | 1);
                let hb1 = hash128(wb0 ^ delta, t | 1);
                let tg = ha0 ^ ha1 ^ if pb { delta } else { 0 };
                let te = hb0 ^ hb1 ^ wa0;
                let wg0 = ha0 ^ if pa { tg } else { 0 };
                let we0 = hb0 ^ if pb { te ^ wa0 } else { 0 };
                zero[out] = wg0 ^ we0;
                tables.push([tg, te]);
            }
        }
    }
    let garbler_label_pairs =
        circuit.garbler_inputs.iter().map(|&w| (zero[w], zero[w] ^ delta)).collect();
    let evaluator_label_pairs =
        circuit.evaluator_inputs.iter().map(|&w| (zero[w], zero[w] ^ delta)).collect();
    let output_decode = circuit.outputs.iter().map(|&w| zero[w] & 1 == 1).collect();
    OpenGarbled { tables, garbler_label_pairs, evaluator_label_pairs, output_decode, delta }
}

/// Garbles `circuit` with the garbler's input bits fixed.
///
/// # Errors
///
/// Returns an error when `garbler_bits` length disagrees.
pub fn garble(circuit: &Circuit, garbler_bits: &[bool], prg: &mut Prg) -> Result<Garbled> {
    if garbler_bits.len() != circuit.garbler_inputs.len() {
        return Err(MpcError::BadConfig(format!(
            "garbler has {} bits for {} input wires",
            garbler_bits.len(),
            circuit.garbler_inputs.len()
        )));
    }
    let open = garble_open(circuit, prg);
    let garbler_labels = select_labels(&open.garbler_label_pairs, garbler_bits);
    Ok(Garbled {
        tables: open.tables,
        evaluator_label_pairs: open.evaluator_label_pairs,
        garbler_labels,
        output_decode: open.output_decode,
    })
}

/// Evaluates a garbled circuit given the active input labels, returning
/// the decoded output bits.
///
/// Per AND gate the evaluator hashes its two operand labels once each
/// and adds the table rows selected by their select (= permute) bits:
/// `Wc = H(Wa, 2g) ⊕ s_a·T_G ⊕ H(Wb, 2g+1) ⊕ s_b·(T_E ⊕ Wa)`.
///
/// # Errors
///
/// Returns an error when label/table counts disagree with the circuit.
pub fn evaluate(
    circuit: &Circuit,
    tables: &[[u128; 2]],
    garbler_labels: &[u128],
    evaluator_labels: &[u128],
    output_decode: &[bool],
) -> Result<Vec<bool>> {
    if garbler_labels.len() != circuit.garbler_inputs.len()
        || evaluator_labels.len() != circuit.evaluator_inputs.len()
        || tables.len() != circuit.and_count()
        || output_decode.len() != circuit.outputs.len()
    {
        return Err(MpcError::Protocol("garbled artifact counts disagree with circuit".into()));
    }
    let mut label = vec![0u128; circuit.n_wires];
    for (&w, &l) in circuit.garbler_inputs.iter().zip(garbler_labels) {
        label[w] = l;
    }
    for (&w, &l) in circuit.evaluator_inputs.iter().zip(evaluator_labels) {
        label[w] = l;
    }
    let mut and_idx = 0usize;
    for (gid, gate) in circuit.gates.iter().enumerate() {
        match *gate {
            Gate::Xor { a, b, out } => label[out] = label[a] ^ label[b],
            Gate::Inv { a, out } => label[out] = label[a],
            Gate::And { a, b, out } => {
                let la = label[a];
                let lb = label[b];
                let [tg, te] = tables[and_idx];
                let t = (gid as u64) << 1;
                let wg = hash128(la, t) ^ if la & 1 == 1 { tg } else { 0 };
                let we = hash128(lb, t | 1) ^ if lb & 1 == 1 { te ^ la } else { 0 };
                label[out] = wg ^ we;
                and_idx += 1;
            }
        }
    }
    Ok(circuit
        .outputs
        .iter()
        .zip(output_decode.iter())
        .map(|(&w, &d)| ((label[w] & 1) == 1) ^ d)
        .collect())
}

/// Reference implementation: garbles `circuit` with the classic
/// four-row point-and-permute tables (each row
/// `prf128_pair(Wa, Wb, gate) ⊕ Wout`, indexed by the operand permute
/// bits). Free-XOR labels are shared with the half-gates path; only the
/// AND-gate encoding differs — which is exactly what the cross-scheme
/// parity tests exercise.
pub fn garble_open_classic(circuit: &Circuit, prg: &mut Prg) -> ClassicOpenGarbled {
    let delta = prg.next_u128() | 1;
    let mut zero = vec![0u128; circuit.n_wires];
    for &w in circuit.garbler_inputs.iter().chain(circuit.evaluator_inputs.iter()) {
        zero[w] = prg.next_u128();
    }
    let mut tables = Vec::with_capacity(circuit.and_count());
    for (gid, gate) in circuit.gates.iter().enumerate() {
        match *gate {
            Gate::Xor { a, b, out } => zero[out] = zero[a] ^ zero[b],
            Gate::Inv { a, out } => zero[out] = zero[a] ^ delta,
            Gate::And { a, b, out } => {
                let w0 = prg.next_u128();
                zero[out] = w0;
                let mut rows = [0u128; 4];
                for ia in 0..2u8 {
                    for ib in 0..2u8 {
                        let la = zero[a] ^ if ia == 1 { delta } else { 0 };
                        let lb = zero[b] ^ if ib == 1 { delta } else { 0 };
                        let lo = w0 ^ if ia & ib == 1 { delta } else { 0 };
                        let slot = (((la & 1) as usize) << 1) | ((lb & 1) as usize);
                        rows[slot] = prf128_pair(la, lb, gid as u64) ^ lo;
                    }
                }
                tables.push(rows);
            }
        }
    }
    let garbler_label_pairs =
        circuit.garbler_inputs.iter().map(|&w| (zero[w], zero[w] ^ delta)).collect();
    let evaluator_label_pairs =
        circuit.evaluator_inputs.iter().map(|&w| (zero[w], zero[w] ^ delta)).collect();
    let output_decode = circuit.outputs.iter().map(|&w| zero[w] & 1 == 1).collect();
    ClassicOpenGarbled { tables, garbler_label_pairs, evaluator_label_pairs, output_decode }
}

/// Reference implementation: evaluates a classic four-row garbling
/// (one `prf128_pair` call per AND, row selected by the operand permute
/// bits).
///
/// # Errors
///
/// Returns an error when label/table counts disagree with the circuit.
pub fn evaluate_classic(
    circuit: &Circuit,
    tables: &[[u128; 4]],
    garbler_labels: &[u128],
    evaluator_labels: &[u128],
    output_decode: &[bool],
) -> Result<Vec<bool>> {
    if garbler_labels.len() != circuit.garbler_inputs.len()
        || evaluator_labels.len() != circuit.evaluator_inputs.len()
        || tables.len() != circuit.and_count()
        || output_decode.len() != circuit.outputs.len()
    {
        return Err(MpcError::Protocol("garbled artifact counts disagree with circuit".into()));
    }
    let mut label = vec![0u128; circuit.n_wires];
    for (&w, &l) in circuit.garbler_inputs.iter().zip(garbler_labels) {
        label[w] = l;
    }
    for (&w, &l) in circuit.evaluator_inputs.iter().zip(evaluator_labels) {
        label[w] = l;
    }
    let mut and_idx = 0usize;
    for (gid, gate) in circuit.gates.iter().enumerate() {
        match *gate {
            Gate::Xor { a, b, out } => label[out] = label[a] ^ label[b],
            Gate::Inv { a, out } => label[out] = label[a],
            Gate::And { a, b, out } => {
                let la = label[a];
                let lb = label[b];
                let slot = (((la & 1) as usize) << 1) | ((lb & 1) as usize);
                label[out] = prf128_pair(la, lb, gid as u64) ^ tables[and_idx][slot];
                and_idx += 1;
            }
        }
    }
    Ok(circuit
        .outputs
        .iter()
        .zip(output_decode.iter())
        .map(|(&w, &d)| ((label[w] & 1) == 1) ^ d)
        .collect())
}

/// Little-endian bit decomposition of a ring element.
pub fn to_bits(v: u64, bits: usize) -> Vec<bool> {
    (0..bits).map(|i| (v >> i) & 1 == 1).collect()
}

/// Recomposes little-endian bits into a ring element.
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedPoint;
    use crate::share::share_secret;
    use proptest::prelude::*;

    fn garble_and_eval(circuit: &Circuit, g_bits: &[bool], e_bits: &[bool]) -> Vec<bool> {
        let mut prg = Prg::from_u64(999);
        let garbled = garble(circuit, g_bits, &mut prg).unwrap();
        let labels: Vec<u128> = garbled
            .evaluator_label_pairs
            .iter()
            .zip(e_bits.iter())
            .map(|(&(l0, l1), &b)| if b { l1 } else { l0 })
            .collect();
        evaluate(circuit, &garbled.tables, &garbled.garbler_labels, &labels, &garbled.output_decode)
            .unwrap()
    }

    #[test]
    fn single_and_gate() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        let c = b.build();
        for gx in [false, true] {
            for ey in [false, true] {
                assert_eq!(garble_and_eval(&c, &[gx], &[ey]), vec![gx & ey]);
            }
        }
    }

    #[test]
    fn xor_and_inv_are_free_and_correct() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.xor(x, y);
        let nz = b.inv(z);
        b.output(z);
        b.output(nz);
        let c = b.build();
        assert_eq!(c.and_count(), 0);
        assert_eq!(c.xor_count(), 1);
        for gx in [false, true] {
            for ey in [false, true] {
                assert_eq!(garble_and_eval(&c, &[gx], &[ey]), vec![gx ^ ey, !(gx ^ ey)]);
            }
        }
    }

    #[test]
    fn adder_matches_wrapping_arithmetic() {
        let bits = 16;
        let mut b = CircuitBuilder::new();
        let a: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let bb: Vec<WireId> = (0..bits).map(|_| b.evaluator_input()).collect();
        let s = b.add_mod2n(&a, &bb);
        for w in s {
            b.output(w);
        }
        let c = b.build();
        for (x, y) in [(3u64, 5u64), (65535, 1), (40000, 30000), (0, 0)] {
            let out = garble_and_eval(&c, &to_bits(x, bits), &to_bits(y, bits));
            assert_eq!(from_bits(&out), (x + y) & 0xFFFF, "{x}+{y}");
        }
    }

    #[test]
    fn plain_eval_agrees_with_garbled_eval() {
        let c = relu_masked_circuit(2, 16);
        let mut prg = Prg::from_u64(4);
        let g_bits: Vec<bool> = (0..c.garbler_input_count()).map(|_| prg.next_bool()).collect();
        let e_bits: Vec<bool> = (0..c.evaluator_input_count()).map(|_| prg.next_bool()).collect();
        assert_eq!(c.eval_plain(&g_bits, &e_bits).unwrap(), garble_and_eval(&c, &g_bits, &e_bits));
    }

    #[test]
    fn relu_circuit_computes_masked_relu() {
        let fp = FixedPoint::new(4);
        let bits = 64;
        let c = relu_masked_circuit(1, bits);
        let mut prg = Prg::from_u64(8);
        for &val in &[-3.5f32, -0.25, 0.0, 0.25, 3.5] {
            let x = fp.encode(val);
            let (s0, s1) = share_secret(&[x], &mut prg);
            let r = prg.next_u64();
            let mut g_bits = to_bits(s1.as_raw()[0], bits);
            g_bits.extend(to_bits(r.wrapping_neg(), bits));
            let e_bits = to_bits(s0.as_raw()[0], bits);
            let out = garble_and_eval(&c, &g_bits, &e_bits);
            let evaluator_share = from_bits(&out);
            let y = evaluator_share.wrapping_add(r);
            let expect = fp.encode(val.max(0.0));
            assert_eq!(y, expect, "relu({val})");
        }
    }

    #[test]
    fn relu_circuit_size_is_linear_in_batch() {
        let c1 = relu_masked_circuit(1, 64);
        let c4 = relu_masked_circuit(4, 64);
        assert_eq!(c4.and_count(), 4 * c1.and_count());
        // 2 adders (63 + 64 ANDs incl. first-bit carry) + 64-bit mux.
        assert!(c1.and_count() >= 64 * 3 - 2 && c1.and_count() <= 64 * 3 + 2, "{}", c1.and_count());
    }

    #[test]
    fn and_tables_cost_two_rows_and_xors_cost_zero() {
        // The acceptance accounting of the half-gates scheme: tables
        // exist only for AND gates (2 rows × 16 B), XOR gates are free,
        // and the classic reference pays exactly twice the bytes.
        let c = relu_unit_circuit();
        assert!(c.xor_count() > 0);
        let open = garble_open(c, &mut Prg::from_u64(31));
        let classic = garble_open_classic(c, &mut Prg::from_u64(31));
        assert_eq!(open.tables.len(), c.and_count());
        assert_eq!(classic.tables.len(), c.and_count());
        assert_eq!(open.table_bytes(), c.and_count() * AND_TABLE_BYTES);
        assert_eq!(AND_TABLE_BYTES, 32);
        assert_eq!(classic.table_bytes(), 2 * open.table_bytes());
        // Adding XOR gates must not grow the tables.
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        let mut w = z;
        for _ in 0..8 {
            w = b.xor(w, x);
        }
        b.output(w);
        let xor_heavy = b.build();
        assert_eq!(xor_heavy.xor_count(), 8);
        let open = garble_open(&xor_heavy, &mut Prg::from_u64(32));
        assert_eq!(open.table_bytes(), AND_TABLE_BYTES);
    }

    #[test]
    fn cross_scheme_relu_parity() {
        // Half-gates and the classic reference must decode the same
        // plaintext results (same circuit, same inputs — different
        // tables by construction).
        let c = relu_masked_circuit(1, UNIT_BITS);
        let mut prg = Prg::from_u64(41);
        for _ in 0..4 {
            let g_bits: Vec<bool> = (0..c.garbler_input_count()).map(|_| prg.next_bool()).collect();
            let e_bits: Vec<bool> =
                (0..c.evaluator_input_count()).map(|_| prg.next_bool()).collect();
            let half = garble_open(&c, &mut Prg::from_u64(42));
            let classic = garble_open_classic(&c, &mut Prg::from_u64(43));
            let half_out = evaluate(
                &c,
                &half.tables,
                &select_labels(&half.garbler_label_pairs, &g_bits),
                &select_labels(&half.evaluator_label_pairs, &e_bits),
                &half.output_decode,
            )
            .unwrap();
            let classic_out = evaluate_classic(
                &c,
                &classic.tables,
                &select_labels(&classic.garbler_label_pairs, &g_bits),
                &select_labels(&classic.evaluator_label_pairs, &e_bits),
                &classic.output_decode,
            )
            .unwrap();
            let plain = c.eval_plain(&g_bits, &e_bits).unwrap();
            assert_eq!(half_out, plain);
            assert_eq!(classic_out, plain);
        }
    }

    #[test]
    fn cross_scheme_maxpool_parity() {
        let c = maxpool4_masked_circuit(1, 16);
        let mut prg = Prg::from_u64(51);
        for _ in 0..4 {
            let g_bits: Vec<bool> = (0..c.garbler_input_count()).map(|_| prg.next_bool()).collect();
            let e_bits: Vec<bool> =
                (0..c.evaluator_input_count()).map(|_| prg.next_bool()).collect();
            let half = garble_open(&c, &mut Prg::from_u64(52));
            let classic = garble_open_classic(&c, &mut Prg::from_u64(52));
            let half_out = evaluate(
                &c,
                &half.tables,
                &select_labels(&half.garbler_label_pairs, &g_bits),
                &select_labels(&half.evaluator_label_pairs, &e_bits),
                &half.output_decode,
            )
            .unwrap();
            let classic_out = evaluate_classic(
                &c,
                &classic.tables,
                &select_labels(&classic.garbler_label_pairs, &g_bits),
                &select_labels(&classic.evaluator_label_pairs, &e_bits),
                &classic.output_decode,
            )
            .unwrap();
            assert_eq!(half_out, c.eval_plain(&g_bits, &e_bits).unwrap());
            assert_eq!(half_out, classic_out);
        }
    }

    #[test]
    fn wrong_artifact_counts_rejected() {
        let c = relu_masked_circuit(1, 8);
        let mut prg = Prg::from_u64(5);
        let g = garble(&c, &vec![false; c.garbler_input_count()], &mut prg).unwrap();
        assert!(evaluate(&c, &g.tables[..1], &g.garbler_labels, &[], &g.output_decode).is_err());
        assert!(garble(&c, &[true], &mut prg).is_err());
    }

    #[test]
    fn bit_round_trip() {
        for v in [0u64, 1, 42, u64::MAX, 1 << 63] {
            assert_eq!(from_bits(&to_bits(v, 64)), v);
        }
    }

    #[test]
    fn open_garbling_fixed_afterwards_equals_direct_garbling() {
        // garble() is garble_open() + select_labels(); both must draw
        // the PRG identically so offline and lockstep paths agree.
        let c = relu_masked_circuit(1, 16);
        let g_bits: Vec<bool> = (0..c.garbler_input_count()).map(|i| i % 3 == 0).collect();
        let direct = garble(&c, &g_bits, &mut Prg::from_u64(77)).unwrap();
        let open = garble_open(&c, &mut Prg::from_u64(77));
        assert_eq!(direct.tables, open.tables);
        assert_eq!(direct.evaluator_label_pairs, open.evaluator_label_pairs);
        assert_eq!(direct.output_decode, open.output_decode);
        assert_eq!(direct.garbler_labels, select_labels(&open.garbler_label_pairs, &g_bits));
    }

    #[test]
    fn open_garbling_evaluates_for_any_late_bound_inputs() {
        let c = relu_masked_circuit(1, 16);
        let open = garble_open(&c, &mut Prg::from_u64(78));
        let mut prg = Prg::from_u64(79);
        for _ in 0..4 {
            let g_bits: Vec<bool> = (0..c.garbler_input_count()).map(|_| prg.next_bool()).collect();
            let e_bits: Vec<bool> =
                (0..c.evaluator_input_count()).map(|_| prg.next_bool()).collect();
            let out = evaluate(
                &c,
                &open.tables,
                &select_labels(&open.garbler_label_pairs, &g_bits),
                &select_labels(&open.evaluator_label_pairs, &e_bits),
                &open.output_decode,
            )
            .unwrap();
            assert_eq!(out, c.eval_plain(&g_bits, &e_bits).unwrap());
        }
    }

    #[test]
    fn unit_circuits_are_cached_and_match_fresh_builds() {
        assert!(std::ptr::eq(relu_unit_circuit(), relu_unit_circuit()));
        assert!(std::ptr::eq(maxpool4_unit_circuit(), maxpool4_unit_circuit()));
        assert_eq!(relu_unit_circuit().and_count(), relu_masked_circuit(1, UNIT_BITS).and_count());
        assert_eq!(
            maxpool4_unit_circuit().and_count(),
            maxpool4_masked_circuit(1, UNIT_BITS).and_count()
        );
    }

    #[test]
    fn half_gate_and_decodes_under_all_four_permute_combos() {
        // The permute bits (p_a, p_b) of an AND gate's operand zero
        // labels steer which table rows carry the Δ correction; all
        // four combinations must decode correctly. Seeds are drawn
        // until every combination has been exercised.
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let z = b.and(x, y);
        b.output(z);
        let c = b.build();
        let mut seen = [false; 4];
        for seed in 0..64u64 {
            let open = garble_open(&c, &mut Prg::from_u64(seed));
            let pa = open.garbler_label_pairs[0].0 & 1 == 1;
            let pb = open.evaluator_label_pairs[0].0 & 1 == 1;
            seen[((pa as usize) << 1) | pb as usize] = true;
            for gx in [false, true] {
                for ey in [false, true] {
                    let out = evaluate(
                        &c,
                        &open.tables,
                        &select_labels(&open.garbler_label_pairs, &[gx]),
                        &select_labels(&open.evaluator_label_pairs, &[ey]),
                        &open.output_decode,
                    )
                    .unwrap();
                    assert_eq!(out, vec![gx & ey], "permute ({pa},{pb}), inputs ({gx},{ey})");
                }
            }
        }
        assert_eq!(seen, [true; 4], "64 seeds never hit all four permute combinations");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn garbled_relu_matches_plain_relu(x in any::<i32>(), seed in any::<u64>()) {
            let bits = 32;
            let c = relu_masked_circuit(1, bits);
            let mut prg = Prg::from_u64(seed);
            let xv = (x as i64 as u64) & 0xFFFF_FFFF;
            let s0 = prg.next_u64() & 0xFFFF_FFFF;
            let s1 = xv.wrapping_sub(s0) & 0xFFFF_FFFF;
            let r = prg.next_u64() & 0xFFFF_FFFF;
            let mut g_bits = to_bits(s1, bits);
            g_bits.extend(to_bits(r.wrapping_neg() & 0xFFFF_FFFF, bits));
            let garbled = garble(&c, &g_bits, &mut prg).unwrap();
            let e_bits = to_bits(s0, bits);
            let labels: Vec<u128> = garbled.evaluator_label_pairs.iter().zip(e_bits.iter())
                .map(|(&(l0, l1), &b)| if b { l1 } else { l0 }).collect();
            let out = evaluate(&c, &garbled.tables, &garbled.garbler_labels, &labels, &garbled.output_decode).unwrap();
            let y = (from_bits(&out).wrapping_add(r)) & 0xFFFF_FFFF;
            let expect = if x < 0 { 0u64 } else { x as u64 };
            prop_assert_eq!(y, expect);
        }

        #[test]
        fn delta_lsb_is_always_one_and_shared_by_every_wire(seed in any::<u64>()) {
            // Free-XOR invariant: one global Δ with its permute bit
            // set, every wire pair exactly Δ apart.
            let c = relu_masked_circuit(1, 8);
            let open = garble_open(&c, &mut Prg::from_u64(seed));
            prop_assert_eq!(open.delta & 1, 1);
            for &(l0, l1) in open.garbler_label_pairs.iter().chain(open.evaluator_label_pairs.iter()) {
                prop_assert_eq!(l0 ^ l1, open.delta);
            }
        }

        #[test]
        fn xor_gate_labels_are_homomorphic(seed in any::<u64>(), va in any::<bool>(), vb in any::<bool>()) {
            // label(a) ⊕ label(b) = label(a⊕b): the four active output
            // labels of an XOR gate collapse to {L⁰, L⁰⊕Δ} with the
            // pairing given by the plaintext XOR.
            let mut b = CircuitBuilder::new();
            let x = b.garbler_input();
            let y = b.evaluator_input();
            let z = b.xor(x, y);
            b.output(z);
            let c = b.build();
            let open = garble_open(&c, &mut Prg::from_u64(seed));
            let la = |v: bool| if v { open.garbler_label_pairs[0].1 } else { open.garbler_label_pairs[0].0 };
            let lb = |v: bool| if v { open.evaluator_label_pairs[0].1 } else { open.evaluator_label_pairs[0].0 };
            let l00 = la(false) ^ lb(false);
            let active = la(va) ^ lb(vb);
            prop_assert_eq!(active, l00 ^ if va ^ vb { open.delta } else { 0 });
            // And the decode bit agrees with the plaintext value.
            let decoded = (active & 1 == 1) ^ open.output_decode[0];
            prop_assert_eq!(decoded, va ^ vb);
        }
    }
}

#[cfg(test)]
mod maxpool_tests {
    use super::*;
    use crate::prg::Prg;
    use proptest::prelude::*;

    fn garble_and_eval(
        circuit: &Circuit,
        g_bits: &[bool],
        e_bits: &[bool],
        seed: u64,
    ) -> Vec<bool> {
        let mut prg = Prg::from_u64(seed);
        let garbled = garble(circuit, g_bits, &mut prg).unwrap();
        let labels: Vec<u128> = garbled
            .evaluator_label_pairs
            .iter()
            .zip(e_bits.iter())
            .map(|(&(l0, l1), &b)| if b { l1 } else { l0 })
            .collect();
        evaluate(circuit, &garbled.tables, &garbled.garbler_labels, &labels, &garbled.output_decode)
            .unwrap()
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        let bits = 16;
        let mut b = CircuitBuilder::new();
        let a: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let bb: Vec<WireId> = (0..bits).map(|_| b.evaluator_input()).collect();
        let d = b.sub_mod2n(&a, &bb);
        for w in d {
            b.output(w);
        }
        let c = b.build();
        for (x, y) in [(10u64, 3u64), (3, 10), (0, 0), (65535, 1)] {
            let out = garble_and_eval(&c, &to_bits(x, bits), &to_bits(y, bits), 1);
            assert_eq!(from_bits(&out), x.wrapping_sub(y) & 0xFFFF, "{x}-{y}");
        }
    }

    #[test]
    fn max_signed_picks_larger_twos_complement_value() {
        let bits = 16;
        let mut b = CircuitBuilder::new();
        let a: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let bb: Vec<WireId> = (0..bits).map(|_| b.evaluator_input()).collect();
        let m = b.max_signed(&a, &bb);
        for w in m {
            b.output(w);
        }
        let c = b.build();
        // The carry-only comparator plus the mux: 2·bits − 1 ANDs.
        assert_eq!(c.and_count(), 2 * bits - 1);
        for (x, y) in [(5i16, 3i16), (3, 5), (-4, 2), (2, -4), (-7, -2), (0, 0), (-1, -1), (1, 1)] {
            let out = garble_and_eval(
                &c,
                &to_bits(x as u16 as u64, bits),
                &to_bits(y as u16 as u64, bits),
                2,
            );
            assert_eq!(from_bits(&out) as u16 as i16, x.max(y), "max({x},{y})");
        }
    }

    #[test]
    fn ge_signed_matches_plain_comparison() {
        let bits = 8;
        let mut b = CircuitBuilder::new();
        let a: Vec<WireId> = (0..bits).map(|_| b.garbler_input()).collect();
        let bb: Vec<WireId> = (0..bits).map(|_| b.evaluator_input()).collect();
        let ge = b.ge_signed(&a, &bb);
        b.output(ge);
        let c = b.build();
        assert_eq!(c.and_count(), bits - 1);
        // Exhaustive over the no-overflow range |a−b| < 2^(bits−1).
        for x in -32i64..32 {
            for y in -32i64..32 {
                let out = c
                    .eval_plain(&to_bits(x as u64 & 0xFF, bits), &to_bits(y as u64 & 0xFF, bits))
                    .unwrap();
                assert_eq!(out[0], x >= y, "ge({x},{y})");
            }
        }
    }

    #[test]
    fn maxpool_unit_circuit_and_count_reflects_the_lean_comparator() {
        // 4 reconstruction adders + 3 tournament maxes (127 ANDs each)
        // + the re-mask adder. The carry-only comparator is what brings
        // a max from 191 to 127 ANDs.
        let c = maxpool4_unit_circuit();
        assert_eq!(c.and_count(), 4 * 64 + 3 * (2 * 64 - 1) + 64);
    }

    #[test]
    fn maxpool4_circuit_plain_eval_matches_spec() {
        // Exhaustive-ish check of the 4-way max circuit via plain eval.
        let bits = 32;
        let c = maxpool4_masked_circuit(1, bits);
        let mask = 0xFFFF_FFFFu64;
        for vals in [[1i32, 2, 3, 4], [4, 3, 2, 1], [-5, -1, -9, -3], [7, 7, 7, 7], [-1, 0, 1, -2]]
        {
            let mut prg = Prg::from_u64(9);
            let shares0: Vec<u64> = (0..4).map(|_| prg.next_u64() & mask).collect();
            let shares1: Vec<u64> = vals
                .iter()
                .zip(shares0.iter())
                .map(|(&v, &s0)| ((v as i64 as u64).wrapping_sub(s0)) & mask)
                .collect();
            let r = prg.next_u64() & mask;
            let mut e_bits = Vec::new();
            for &s in &shares0 {
                e_bits.extend(to_bits(s, bits));
            }
            let mut g_bits = Vec::new();
            for &s in &shares1 {
                g_bits.extend(to_bits(s, bits));
            }
            g_bits.extend(to_bits(r.wrapping_neg() & mask, bits));
            let out = c.eval_plain(&g_bits, &e_bits).unwrap();
            let got = (from_bits(&out).wrapping_add(r)) & mask;
            let expect = (*vals.iter().max().unwrap() as i64 as u64) & mask;
            assert_eq!(got, expect, "max of {vals:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn garbled_max_matches_plain_eval(vals in proptest::array::uniform4(-8000i16..8000), seed in any::<u64>()) {
            let bits = 16;
            let mask = 0xFFFFu64;
            let c = maxpool4_masked_circuit(1, bits);
            let mut prg = Prg::from_u64(seed);
            let shares0: Vec<u64> = (0..4).map(|_| prg.next_u64() & mask).collect();
            let shares1: Vec<u64> = vals.iter().zip(shares0.iter())
                .map(|(&v, &s0)| ((v as i64 as u64).wrapping_sub(s0)) & mask).collect();
            let r = prg.next_u64() & mask;
            let mut e_bits = Vec::new();
            for &s in &shares0 { e_bits.extend(to_bits(s, bits)); }
            let mut g_bits = Vec::new();
            for &s in &shares1 { g_bits.extend(to_bits(s, bits)); }
            g_bits.extend(to_bits(r.wrapping_neg() & mask, bits));
            let plain = c.eval_plain(&g_bits, &e_bits).unwrap();
            let garbled = garble_and_eval(&c, &g_bits, &e_bits, seed ^ 0xABCD);
            prop_assert_eq!(&plain, &garbled);
            let got = (from_bits(&garbled).wrapping_add(r)) & mask;
            let expect = (*vals.iter().max().unwrap() as i64 as u64) & mask;
            prop_assert_eq!(got, expect);
        }
    }
}
