//! Offline-garbled masked non-linearities — the Delphi phase split done
//! properly: **no garbling, no base OTs and no table transfer on the
//! online path**.
//!
//! The trick (Mishra et al., USENIX Security 2020) is to make the
//! *evaluator's* circuit input a value that exists before the input
//! does. During preprocessing the dealer samples a uniform mask `m` per
//! input element and an output mask `r` per item, garbles the masked
//! circuit ([`crate::gc::garble_open`]) and fixes everything that is
//! already known:
//!
//! * the evaluator's active labels for the bits of `m` (with a trusted
//!   dealer these are dealt directly; a real deployment transfers them
//!   with the session-long IKNP extension of [`crate::ot`], whose
//!   traffic the engine charges to the offline phase);
//! * the garbler's active labels for the output-mask input `−r`;
//! * the AND tables and output-decode bits, handed to the evaluator.
//!
//! Only the garbler's *value-dependent* input wires stay open: their
//! label **pairs** go into the garbler's half. Online, per layer:
//!
//! 1. evaluator → garbler: `δ = x₀ − m` (one frame, 8 bytes/element);
//! 2. garbler → evaluator: the active labels for `g = x₁ + δ = x − m`
//!    (one frame, 16 bytes/label) — selecting labels is an XOR, the
//!    garbler does no cryptographic work;
//! 3. the evaluator evaluates every item (fanned out across the
//!    available cores) and decodes its output share `f(x) − r`; the
//!    garbler's share is `r`.
//!
//! `δ` is uniform (masked by `m`) and the labels reveal exactly one
//! circuit path, so the online messages leak nothing beyond the
//! standard garbled-circuit guarantees. One round trip per layer, total.
//!
//! Items (one ReLU element, one 4-way max window) are garbled and
//! evaluated **independently** against the process-wide unit circuits
//! ([`crate::gc::relu_unit_circuit`] / [`crate::gc::maxpool4_unit_circuit`]),
//! which is what makes both phases embarrassingly parallel and
//! deterministic: per-item garbling seeds are drawn sequentially from
//! the dealer PRG, then the band size only controls parallelism, never
//! the result.
//!
//! Free-XOR shrinks the dealt material twice over: the evaluator's
//! tables are half-gates two-row tables (32 B per AND instead of 64),
//! and the garbler's open label *pairs* collapse to one zero label per
//! wire plus the per-item global offset Δ (`l1 = l0 ⊕ Δ`). Handing Δ to
//! the garbler is sound — the garbler knows every label pair by
//! definition; it is only the *evaluator's* half that must never see Δ.

use crate::gc::{
    evaluate, from_bits, garble_open, maxpool4_unit_circuit, relu_unit_circuit, select_labels,
    to_bits, Circuit, UNIT_BITS,
};
use crate::prg::Prg;
use crate::share::ShareVec;
use crate::{MpcError, Result};
use c2pi_transport::Channel;
use rayon::prelude::*;

/// Which masked unit circuit a pre-garbled batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskedOp {
    /// `relu(x) − r` over one 64-bit ring element per item.
    Relu,
    /// `max(v₀..v₃) − r` over one 2×2 pool window (four elements) per
    /// item.
    Maxpool4,
}

impl MaskedOp {
    /// The cached single-item circuit topology.
    pub fn unit_circuit(&self) -> &'static Circuit {
        match self {
            MaskedOp::Relu => relu_unit_circuit(),
            MaskedOp::Maxpool4 => maxpool4_unit_circuit(),
        }
    }

    /// Ring elements fed into one item (1 for ReLU, 4 for a window).
    pub fn in_elems(&self) -> usize {
        match self {
            MaskedOp::Relu => 1,
            MaskedOp::Maxpool4 => 4,
        }
    }

    /// AND gates garbled per item.
    pub fn ands_per_item(&self) -> usize {
        self.unit_circuit().and_count()
    }

    /// XOR gates per item — free under free-XOR (no table, no hash);
    /// counted so cost reports can show what the scheme gets for
    /// nothing.
    pub fn xors_per_item(&self) -> usize {
        self.unit_circuit().xor_count()
    }
}

/// The evaluator's (client's) half of an offline-garbled batch: its
/// input masks, the tables, its active input labels, the garbler's
/// already-fixed output-mask labels and the decode bits. Everything in
/// here is input-independent.
#[derive(Debug, Clone)]
pub struct PreGarbledClient {
    op: MaskedOp,
    /// Input masks `m`, one per input element (item-major).
    masks: Vec<u64>,
    /// Two-row half-gates AND tables, item-major.
    tables: Vec<[u128; 2]>,
    /// Active evaluator labels for the bits of `m`, item-major.
    eval_labels: Vec<u128>,
    /// Active garbler labels for the `−r` output-mask inputs.
    fixed_labels: Vec<u128>,
    /// Output permute bits.
    decode: Vec<bool>,
}

/// The garbler's (server's) half: Δ-compressed labels for its
/// value-dependent input wires plus its dealt output share `r`. Under
/// free-XOR the one-label of every wire is `l0 ⊕ Δ`, so the dealer
/// ships one zero label per online wire and one Δ per item instead of
/// full pairs — half the bytes, reconstructed by XOR at select time.
#[derive(Debug, Clone)]
pub struct PreGarbledServer {
    op: MaskedOp,
    /// Zero labels for the garbler's online inputs (`x − m` bits),
    /// item-major.
    labels0: Vec<u128>,
    /// The free-XOR offset Δ of each item's garbling.
    deltas: Vec<u128>,
    /// The garbler's output share, one element per item.
    out_share: Vec<u64>,
}

impl PreGarbledClient {
    /// The masked op this batch was garbled for.
    pub fn op(&self) -> MaskedOp {
        self.op
    }

    /// Number of items in the batch.
    pub fn items(&self) -> usize {
        self.decode.len() / UNIT_BITS
    }

    /// Number of input ring elements (`items × in_elems`).
    pub fn inputs(&self) -> usize {
        self.masks.len()
    }

    /// Serialized size of this half — what an expanded (pre
    /// seed-compression) dealer would ship to the evaluator.
    pub fn expanded_bytes(&self) -> u64 {
        (self.masks.len() * 8
            + self.tables.len() * 32
            + self.eval_labels.len() * 16
            + self.fixed_labels.len() * 16
            + self.decode.len().div_ceil(8)) as u64
    }
}

impl PreGarbledServer {
    /// The masked op this batch was garbled for.
    pub fn op(&self) -> MaskedOp {
        self.op
    }

    /// Number of items in the batch.
    pub fn items(&self) -> usize {
        self.out_share.len()
    }

    /// Number of input ring elements (`items × in_elems`).
    pub fn inputs(&self) -> usize {
        self.labels0.len() / UNIT_BITS
    }

    /// Serialized size of this half — what an expanded (pre
    /// seed-compression) dealer would ship to the garbler. Δ-compressed:
    /// one label per online wire plus 16 B of Δ per item (the classic
    /// layout shipped full 32 B pairs).
    pub fn expanded_bytes(&self) -> u64 {
        (self.labels0.len() * 16 + self.deltas.len() * 16 + self.out_share.len() * 8) as u64
    }

    /// Selects the active labels for the garbler's online input values
    /// `g` (item-major ring elements) — the garbler's entire online
    /// compute: one conditional XOR with Δ per bit, no PRF.
    ///
    /// # Errors
    ///
    /// Returns a protocol error when `g` disagrees with the material.
    pub fn select_garbler_labels(&self, g: &[u64]) -> Result<Vec<u128>> {
        if g.len() != self.inputs() {
            return Err(MpcError::Protocol(format!(
                "pre-garbled material for {} inputs, got {}",
                self.inputs(),
                g.len()
            )));
        }
        let in_elems = self.op.in_elems();
        let mut labels = Vec::with_capacity(self.labels0.len());
        for (e, &v) in g.iter().enumerate() {
            let delta = self.deltas[e / in_elems];
            let zeros = &self.labels0[e * UNIT_BITS..(e + 1) * UNIT_BITS];
            for (bit, &l0) in zeros.iter().enumerate() {
                labels.push(if (v >> bit) & 1 == 1 { l0 ^ delta } else { l0 });
            }
        }
        Ok(labels)
    }
}

/// One *band's* garbled artifacts, produced inside the parallel
/// fan-out and concatenated afterwards. Accumulating per band (not per
/// item) keeps allocations at five exact-sized vectors per worker band
/// and makes the final flatten a handful of bulk copies.
#[derive(Debug, Default, Clone)]
struct BandGarbling {
    tables: Vec<[u128; 2]>,
    eval_labels: Vec<u128>,
    fixed_labels: Vec<u128>,
    decode: Vec<bool>,
    labels0: Vec<u128>,
    deltas: Vec<u128>,
}

/// Garbles `items` instances of `op`'s masked unit circuit with fresh
/// input masks and output shares, fanning the per-item garbling out in
/// bands of `par_band` items. The result is a pure function of the
/// `prg` state — the band size only controls parallelism.
pub fn pregarble(
    op: MaskedOp,
    items: usize,
    prg: &mut Prg,
    par_band: usize,
) -> (PreGarbledClient, PreGarbledServer) {
    let in_elems = op.in_elems();
    let ands = op.ands_per_item();
    let inputs = items * in_elems;
    let masks = prg.next_u64s(inputs);
    let out_share = prg.next_u64s(items);
    let seeds: Vec<[u8; 32]> = (0..items)
        .map(|_| {
            let mut s = [0u8; 32];
            prg.fill_bytes(&mut s);
            s
        })
        .collect();
    let circuit = op.unit_circuit();
    let online_wires = in_elems * UNIT_BITS;
    let band = par_band.max(1);
    let mut bands: Vec<BandGarbling> = vec![BandGarbling::default(); items.div_ceil(band).max(1)];
    {
        let masks = &masks;
        let out_share = &out_share;
        let seeds = &seeds;
        // One-slot chunks: the rayon shim only offers par_chunks_mut,
        // so this is its spelling of `bands.par_iter_mut()` — the `1`
        // is not a tuning knob; band sizing happens via `band` above.
        bands.par_chunks_mut(1).enumerate().for_each(|(bi, chunk)| {
            let slot = &mut chunk[0];
            let start = bi * band;
            let end = (start + band).min(items);
            slot.tables.reserve_exact((end - start) * ands);
            slot.eval_labels.reserve_exact((end - start) * online_wires);
            slot.fixed_labels.reserve_exact((end - start) * UNIT_BITS);
            slot.decode.reserve_exact((end - start) * UNIT_BITS);
            slot.labels0.reserve_exact((end - start) * online_wires);
            slot.deltas.reserve_exact(end - start);
            for i in start..end {
                let open = garble_open(circuit, &mut Prg::from_seed(seeds[i]));
                for (w, &(l0, l1)) in open.evaluator_label_pairs.iter().enumerate() {
                    let m = masks[i * in_elems + w / UNIT_BITS];
                    slot.eval_labels.push(if (m >> (w % UNIT_BITS)) & 1 == 1 { l1 } else { l0 });
                }
                let mask_bits = to_bits(out_share[i].wrapping_neg(), UNIT_BITS);
                slot.fixed_labels
                    .extend(select_labels(&open.garbler_label_pairs[online_wires..], &mask_bits));
                slot.labels0.extend(open.garbler_label_pairs[..online_wires].iter().map(|p| p.0));
                slot.deltas.push(open.delta);
                slot.tables.extend(open.tables);
                slot.decode.extend(open.output_decode);
            }
        });
    }
    let mut client = PreGarbledClient {
        op,
        masks,
        tables: Vec::with_capacity(items * ands),
        eval_labels: Vec::with_capacity(inputs * UNIT_BITS),
        fixed_labels: Vec::with_capacity(items * UNIT_BITS),
        decode: Vec::with_capacity(items * UNIT_BITS),
    };
    let mut labels0 = Vec::with_capacity(inputs * UNIT_BITS);
    let mut deltas = Vec::with_capacity(items);
    for slot in bands {
        client.tables.extend(slot.tables);
        client.eval_labels.extend(slot.eval_labels);
        client.fixed_labels.extend(slot.fixed_labels);
        client.decode.extend(slot.decode);
        labels0.extend(slot.labels0);
        deltas.extend(slot.deltas);
    }
    (client, PreGarbledServer { op, labels0, deltas, out_share })
}

fn pack_labels(labels: &[u128]) -> Vec<u8> {
    let mut out = Vec::with_capacity(labels.len() * 16);
    for l in labels {
        out.extend_from_slice(&l.to_le_bytes());
    }
    out
}

fn unpack_labels(raw: &[u8]) -> Result<Vec<u128>> {
    if !raw.len().is_multiple_of(16) {
        return Err(MpcError::Protocol(format!("label frame of {} bytes", raw.len())));
    }
    Ok(raw.chunks_exact(16).map(|c| u128::from_le_bytes(c.try_into().expect("16 bytes"))).collect())
}

/// Garbler (server) side of the online phase over one pre-garbled
/// layer: receives `δ`, selects the active labels for `x₁ + δ` (pure
/// XOR — no garbling, no OT), sends them back, and returns the dealt
/// output share `r`.
///
/// # Errors
///
/// Returns transport errors, or a protocol error when the share length
/// disagrees with the material.
pub fn pre_gc_garbler<C: Channel + ?Sized>(
    ep: &C,
    mat: &PreGarbledServer,
    share: &ShareVec,
) -> Result<ShareVec> {
    if share.len() != mat.inputs() {
        return Err(MpcError::Protocol(format!(
            "pre-garbled material for {} inputs, share has {}",
            mat.inputs(),
            share.len()
        )));
    }
    let delta = ep.recv_u64s().map_err(MpcError::from)?;
    if delta.len() != mat.inputs() {
        return Err(MpcError::Protocol(format!(
            "expected {} masked inputs, got {}",
            mat.inputs(),
            delta.len()
        )));
    }
    let g: Vec<u64> =
        share.as_raw().iter().zip(delta.iter()).map(|(&x1, &d)| x1.wrapping_add(d)).collect();
    let labels = mat.select_garbler_labels(&g)?;
    ep.send_bytes(&pack_labels(&labels)).map_err(MpcError::from)?;
    Ok(ShareVec::from_raw(mat.out_share.clone()))
}

/// Garbler side of one pre-garbled layer **fused over a batch of
/// evaluators**, each with its own material and channel: receives every
/// member's `δ` flight, selects the active labels for all `k` members'
/// unit circuits in one parallel region, then answers each member's
/// label flight. Per member the wire traffic is exactly one `δ`/label
/// round trip — identical to [`pre_gc_garbler`] — only the garbler's
/// compute between the flights is batched.
///
/// Label selection is a per-wire conditional XOR with each member's own
/// material, so every member's labels (and dealt output share) are
/// bit-for-bit what the unbatched garbler would have sent.
///
/// # Errors
///
/// Returns transport errors, or a protocol error when slice lengths or
/// any member's share disagrees with its material.
pub fn pre_gc_garbler_batch<C: Channel + ?Sized>(
    eps: &[&C],
    mats: &[&PreGarbledServer],
    shares: &[&ShareVec],
) -> Result<Vec<ShareVec>> {
    let k = eps.len();
    if mats.len() != k || shares.len() != k || k == 0 {
        return Err(MpcError::BadConfig(format!(
            "pre_gc_garbler_batch over {k} channels, {} materials, {} shares",
            mats.len(),
            shares.len()
        )));
    }
    let mut gs = Vec::with_capacity(k);
    for ((ep, mat), share) in eps.iter().zip(mats).zip(shares) {
        if share.len() != mat.inputs() {
            return Err(MpcError::Protocol(format!(
                "pre-garbled material for {} inputs, share has {}",
                mat.inputs(),
                share.len()
            )));
        }
        let delta = ep.recv_u64s().map_err(MpcError::from)?;
        if delta.len() != mat.inputs() {
            return Err(MpcError::Protocol(format!(
                "expected {} masked inputs, got {}",
                mat.inputs(),
                delta.len()
            )));
        }
        let g: Vec<u64> =
            share.as_raw().iter().zip(delta.iter()).map(|(&x1, &d)| x1.wrapping_add(d)).collect();
        gs.push(g);
    }
    // One parallel region selects the labels of all k members' circuits.
    let mut selected: Vec<Result<Vec<u128>>> = (0..k).map(|_| Ok(Vec::new())).collect();
    selected.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
        slot[0] = mats[i].select_garbler_labels(&gs[i]);
    });
    let mut out = Vec::with_capacity(k);
    for ((labels, ep), mat) in selected.into_iter().zip(eps).zip(mats) {
        ep.send_bytes(&pack_labels(&labels?)).map_err(MpcError::from)?;
        out.push(ShareVec::from_raw(mat.out_share.clone()));
    }
    Ok(out)
}

/// Evaluator (client) side of the online phase: sends `δ = x₀ − m`,
/// receives the garbler's active labels, evaluates every item (fanned
/// out in bands of `par_band` items) and returns its output share
/// `f(x) − r`.
///
/// # Errors
///
/// Returns transport errors, or a protocol error when frame sizes or
/// the share length disagree with the material.
pub fn pre_gc_evaluator<C: Channel + ?Sized>(
    ep: &C,
    mat: &PreGarbledClient,
    share: &ShareVec,
    par_band: usize,
) -> Result<ShareVec> {
    if share.len() != mat.inputs() {
        return Err(MpcError::Protocol(format!(
            "pre-garbled material for {} inputs, share has {}",
            mat.inputs(),
            share.len()
        )));
    }
    let delta: Vec<u64> =
        share.as_raw().iter().zip(mat.masks.iter()).map(|(&x0, &m)| x0.wrapping_sub(m)).collect();
    ep.send_u64s(&delta).map_err(MpcError::from)?;
    let garbler_labels = unpack_labels(&ep.recv_bytes().map_err(MpcError::from)?)?;
    if garbler_labels.len() != mat.inputs() * UNIT_BITS {
        return Err(MpcError::Protocol(format!(
            "expected {} garbler labels, got {}",
            mat.inputs() * UNIT_BITS,
            garbler_labels.len()
        )));
    }
    eval_pregarbled(mat, &garbler_labels, par_band)
}

/// Evaluates a pre-garbled batch given the garbler's active online
/// labels (exposed separately for benchmarking the evaluation kernel).
///
/// # Errors
///
/// Returns a protocol error when the label count disagrees with the
/// material.
pub fn eval_pregarbled(
    mat: &PreGarbledClient,
    garbler_labels: &[u128],
    par_band: usize,
) -> Result<ShareVec> {
    let items = mat.items();
    let in_elems = mat.op.in_elems();
    let ands = mat.op.ands_per_item();
    if garbler_labels.len() != items * in_elems * UNIT_BITS
        || mat.tables.len() != items * ands
        || mat.eval_labels.len() != items * in_elems * UNIT_BITS
        || mat.fixed_labels.len() != items * UNIT_BITS
    {
        return Err(MpcError::Protocol("pre-garbled artifact counts disagree".into()));
    }
    let circuit = mat.op.unit_circuit();
    let online_wires = in_elems * UNIT_BITS;
    let mut out = vec![0u64; items];
    let band = par_band.max(1);
    out.par_chunks_mut(band).enumerate().for_each(|(bi, chunk)| {
        let mut garbler = vec![0u128; online_wires + UNIT_BITS];
        for (k, slot) in chunk.iter_mut().enumerate() {
            let i = bi * band + k;
            garbler[..online_wires]
                .copy_from_slice(&garbler_labels[i * online_wires..(i + 1) * online_wires]);
            garbler[online_wires..]
                .copy_from_slice(&mat.fixed_labels[i * UNIT_BITS..(i + 1) * UNIT_BITS]);
            let bits = evaluate(
                circuit,
                &mat.tables[i * ands..(i + 1) * ands],
                &garbler,
                &mat.eval_labels[i * online_wires..(i + 1) * online_wires],
                &mat.decode[i * UNIT_BITS..(i + 1) * UNIT_BITS],
            )
            .expect("lengths validated above");
            *slot = from_bits(&bits);
        }
    });
    Ok(ShareVec::from_raw(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedPoint;
    use crate::share::{reconstruct, share_secret};
    use c2pi_transport::channel_pair;

    fn run_layer(
        op: MaskedOp,
        values: &[f32],
        seed: u64,
        par_band: usize,
    ) -> (Vec<u64>, c2pi_transport::TrafficSnapshot) {
        let fp = FixedPoint::default();
        let secret: Vec<u64> = values.iter().map(|&v| fp.encode(v)).collect();
        let mut prg = Prg::from_u64(seed);
        let (x0, x1) = share_secret(&secret, &mut prg);
        let items = values.len() / op.in_elems();
        let (cmat, smat) = pregarble(op, items, &mut prg, par_band);
        let (client, server, counter) = channel_pair();
        let t = std::thread::spawn(move || pre_gc_garbler(&server, &smat, &x1).unwrap());
        let y0 = pre_gc_evaluator(&client, &cmat, &x0, par_band).unwrap();
        let y1 = t.join().unwrap();
        (reconstruct(&y0, &y1), counter.snapshot())
    }

    #[test]
    fn offline_garbled_relu_matches_plaintext() {
        let fp = FixedPoint::default();
        let values = vec![-3.0f32, -0.5, -0.001, 0.0, 0.001, 0.5, 3.0, 10.0];
        let (y, traffic) = run_layer(MaskedOp::Relu, &values, 5, 3);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(y[i], fp.encode(v.max(0.0)), "relu({v})");
        }
        // The whole layer is one round trip: δ up, labels down.
        assert_eq!(traffic.flights, 2);
        assert_eq!(traffic.messages, 2);
        assert_eq!(traffic.bytes_client_to_server, 8 * values.len() as u64);
        assert_eq!(traffic.bytes_server_to_client, 16 * 64 * values.len() as u64);
    }

    #[test]
    fn offline_garbled_maxpool_matches_plaintext() {
        let fp = FixedPoint::default();
        let values = vec![1.0f32, -2.0, 0.5, 0.75, -1.0, -2.0, -3.0, -0.25];
        let (y, traffic) = run_layer(MaskedOp::Maxpool4, &values, 7, 1);
        assert_eq!(y.len(), 2);
        assert_eq!(y[0], fp.encode(1.0));
        assert_eq!(y[1], fp.encode(-0.25));
        assert_eq!(traffic.flights, 2);
    }

    #[test]
    fn band_size_does_not_change_the_material_or_the_result() {
        // Parallel fan-out must be invisible: the per-item seeds are
        // drawn sequentially, so any band size garbles identically.
        let values: Vec<f32> = (0..13).map(|i| i as f32 - 6.0).collect();
        let (a, _) = run_layer(MaskedOp::Relu, &values, 11, 1);
        let (b, _) = run_layer(MaskedOp::Relu, &values, 11, 4);
        let (c, _) = run_layer(MaskedOp::Relu, &values, 11, 64);
        assert_eq!(a, b);
        assert_eq!(a, c);
        let mut prg_x = Prg::from_u64(19);
        let mut prg_y = Prg::from_u64(19);
        let (cx, sx) = pregarble(MaskedOp::Relu, 5, &mut prg_x, 2);
        let (cy, sy) = pregarble(MaskedOp::Relu, 5, &mut prg_y, 5);
        assert_eq!(cx.tables, cy.tables);
        assert_eq!(cx.eval_labels, cy.eval_labels);
        assert_eq!(sx.labels0, sy.labels0);
        assert_eq!(sx.deltas, sy.deltas);
        assert_eq!(sx.out_share, sy.out_share);
    }

    #[test]
    fn batched_garbler_is_bit_identical_to_per_member_runs() {
        // Three members, each with independently drawn material and
        // shares. The fused garbler must send every member the exact
        // label flight (and return the exact out-share) that three
        // separate pre_gc_garbler calls would have produced.
        let fp = FixedPoint::default();
        let members: Vec<Vec<f32>> = vec![
            vec![-3.0, -0.5, 0.0, 2.5],
            vec![10.0, -10.0, 0.25, -0.25],
            vec![1.0, 2.0, 3.0, -4.0],
        ];
        let mut prg = Prg::from_u64(41);
        let mut cmats = Vec::new();
        let mut smats = Vec::new();
        let mut x0s = Vec::new();
        let mut x1s = Vec::new();
        for vals in &members {
            let secret: Vec<u64> = vals.iter().map(|&v| fp.encode(v)).collect();
            let (x0, x1) = share_secret(&secret, &mut prg);
            let (cmat, smat) = pregarble(MaskedOp::Relu, vals.len(), &mut prg, 2);
            cmats.push(cmat);
            smats.push(smat);
            x0s.push(x0);
            x1s.push(x1);
        }
        // Reference: per-member unbatched runs on clones of the same
        // material and shares.
        let mut ref_y = Vec::new();
        for i in 0..members.len() {
            let (client, server, _) = channel_pair();
            let smat = smats[i].clone();
            let x1 = x1s[i].clone();
            let t = std::thread::spawn(move || pre_gc_garbler(&server, &smat, &x1).unwrap());
            let y0 = pre_gc_evaluator(&client, &cmats[i], &x0s[i], 2).unwrap();
            let y1 = t.join().unwrap();
            ref_y.push(reconstruct(&y0, &y1));
        }
        // Fused: one garbler thread over all three channels.
        let mut servers = Vec::new();
        let mut clients = Vec::new();
        for _ in 0..members.len() {
            let (c, s, _) = channel_pair();
            clients.push(c);
            servers.push(s);
        }
        let smats_cl = smats.clone();
        let x1s_cl = x1s.clone();
        let t = std::thread::spawn(move || {
            let eps: Vec<&_> = servers.iter().collect();
            let mats: Vec<&PreGarbledServer> = smats_cl.iter().collect();
            let shares: Vec<&ShareVec> = x1s_cl.iter().collect();
            pre_gc_garbler_batch(&eps, &mats, &shares).unwrap()
        });
        let mut eval_threads = Vec::new();
        for ((client, cmat), x0) in clients.into_iter().zip(cmats).zip(x0s) {
            eval_threads.push(std::thread::spawn(move || {
                pre_gc_evaluator(&client, &cmat, &x0, 2).unwrap()
            }));
        }
        let y1s = t.join().unwrap();
        for (i, (et, y1)) in eval_threads.into_iter().zip(y1s).enumerate() {
            let y0 = et.join().unwrap();
            assert_eq!(reconstruct(&y0, &y1), ref_y[i], "member {i} diverged");
            for (j, &v) in members[i].iter().enumerate() {
                assert_eq!(ref_y[i][j], fp.encode(v.max(0.0)), "relu({v})");
            }
        }
        // Length mismatches rejected up front.
        let (_, lone, _) = channel_pair();
        let eps: Vec<&_> = vec![&lone];
        assert!(pre_gc_garbler_batch(&eps, &[], &[]).is_err());
    }

    #[test]
    fn mismatched_share_lengths_are_rejected() {
        let mut prg = Prg::from_u64(23);
        let (cmat, smat) = pregarble(MaskedOp::Relu, 4, &mut prg, 2);
        let (client, server, _) = channel_pair();
        let bad = ShareVec::from_raw(vec![1, 2, 3]);
        assert!(pre_gc_evaluator(&client, &cmat, &bad, 2).is_err());
        assert!(pre_gc_garbler(&server, &smat, &bad).is_err());
    }

    #[test]
    fn expanded_bytes_reflect_half_gates_and_delta_compression() {
        // The dealt-material accounting the planner prices: two-row
        // tables on the client half, one-label-plus-Δ on the server
        // half. A classic 4-row/full-pair layout would double both the
        // table term and the server labels.
        let mut prg = Prg::from_u64(37);
        let (cmat, smat) = pregarble(MaskedOp::Relu, 2, &mut prg, 1);
        let ands = MaskedOp::Relu.ands_per_item();
        assert_eq!(
            cmat.expanded_bytes(),
            (2 * 8 + 2 * ands * 32 + 2 * 64 * 16 + 2 * 64 * 16 + 2 * 8) as u64
        );
        assert_eq!(smat.expanded_bytes(), (2 * 64 * 16 + 2 * 16 + 2 * 8) as u64);
        assert!(MaskedOp::Relu.xors_per_item() > 0);
    }

    #[test]
    fn delta_is_uniformly_masked() {
        // The one value-dependent message the evaluator sends is δ =
        // x₀ − m; for a constant input it must not be constant.
        let mut prg = Prg::from_u64(29);
        let (cmat, _) = pregarble(MaskedOp::Relu, 32, &mut prg, 8);
        let x0 = ShareVec::from_raw(vec![42u64; 32]);
        let deltas: Vec<u64> =
            x0.as_raw().iter().zip(cmat.masks.iter()).map(|(&x, &m)| x.wrapping_sub(m)).collect();
        let distinct: std::collections::HashSet<&u64> = deltas.iter().collect();
        assert!(distinct.len() > 16, "δ looks non-uniform: {distinct:?}");
    }
}
