//! ChaCha12 pseudorandom generator and PRF, written from scratch.
//!
//! The sanctioned offline crate set has no AES implementation, so the
//! garbling PRF, OT-extension expansion and share expansion all run on
//! ChaCha12 (12 rounds: the conservative speed/security point used by
//! `rand`'s own StdRng). The implementation below is the RFC 8439 block
//! function with a 12-round schedule.

/// ChaCha block function with a configurable double-round count.
fn chacha_core(key: &[u32; 8], counter: u64, nonce: u64, double_rounds: usize) -> [u32; 16] {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut state = [0u32; 16];
    state[0..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce as u32;
    state[15] = (nonce >> 32) as u32;
    let mut w = state;
    for _ in 0..double_rounds {
        // Two rounds per iteration: one column round, one diagonal round.
        quarter(&mut w, 0, 4, 8, 12);
        quarter(&mut w, 1, 5, 9, 13);
        quarter(&mut w, 2, 6, 10, 14);
        quarter(&mut w, 3, 7, 11, 15);
        quarter(&mut w, 0, 5, 10, 15);
        quarter(&mut w, 1, 6, 11, 12);
        quarter(&mut w, 2, 7, 8, 13);
        quarter(&mut w, 3, 4, 9, 14);
    }
    for (o, s) in w.iter_mut().zip(state.iter()) {
        *o = o.wrapping_add(*s);
    }
    w
}

/// ChaCha12 block state (the PRG/PRF security point).
fn chacha_block(key: &[u32; 8], counter: u64, nonce: u64) -> [u32; 16] {
    chacha_core(key, counter, nonce, 6)
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// A seeded ChaCha12 stream generator.
///
/// ```
/// use c2pi_mpc::prg::Prg;
/// let mut a = Prg::from_seed([7u8; 32]);
/// let mut b = Prg::from_seed([7u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prg {
    key: [u32; 8],
    nonce: u64,
    counter: u64,
    buf: [u32; 16],
    pos: usize,
}

impl Prg {
    /// Creates a generator from a 256-bit seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        Prg { key, nonce: 0, counter: 0, buf: [0; 16], pos: 16 }
    }

    /// Creates a generator from a 256-bit seed and an explicit stream
    /// nonce. Distinct nonces under the same seed yield independent
    /// streams — how the OT extension re-derives fresh expansions from
    /// one set of base-OT seeds per session.
    pub fn from_seed_nonce(seed: [u8; 32], nonce: u64) -> Self {
        let mut prg = Prg::from_seed(seed);
        prg.nonce = nonce;
        prg
    }

    /// Creates a generator from a 128-bit seed (zero-padded), the label
    /// size used by the garbled-circuit module.
    pub fn from_seed128(seed: u128) -> Self {
        let mut s = [0u8; 32];
        s[..16].copy_from_slice(&seed.to_le_bytes());
        Prg::from_seed(s)
    }

    /// Creates a generator from a `u64` convenience seed.
    pub fn from_u64(seed: u64) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[8..16].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
        Prg::from_seed(s)
    }

    fn refill(&mut self) {
        self.buf = chacha_block(&self.key, self.counter, self.nonce);
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) | ((self.next_u32() as u64) << 32)
    }

    /// Next 128 random bits (one GC wire label).
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) | ((self.next_u64() as u128) << 64)
    }

    /// Fills a `u64` vector.
    pub fn next_u64s(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }

    /// Next random bit.
    pub fn next_bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }

    /// Fills a byte buffer.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Forks an independent child generator keyed by the next 256 bits
    /// of this stream. Children are computationally independent of each
    /// other and of the parent's later output — the right way to derive
    /// per-inference seeds from a session master seed (unlike
    /// `seed + counter`, which produces related ChaCha keys).
    pub fn fork(&mut self) -> Prg {
        let mut seed = [0u8; 32];
        self.fill_bytes(&mut seed);
        Prg::from_seed(seed)
    }
}

/// Derives the stream of per-inference seeds a session consumes, domain
/// separated from every other use of the session's master seed.
///
/// ```
/// use c2pi_mpc::prg::SeedSequence;
/// let mut a = SeedSequence::new(7, b"dealer");
/// let mut b = SeedSequence::new(7, b"noise");
/// assert_ne!(a.next(), b.next()); // distinct domains diverge
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    prg: Prg,
}

impl SeedSequence {
    /// Creates a sequence from a master seed and a domain label.
    pub fn new(master: u64, domain: &[u8]) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&master.to_le_bytes());
        for (i, &b) in domain.iter().take(24).enumerate() {
            key[8 + i] = b;
        }
        SeedSequence { prg: Prg::from_seed(key) }
    }

    /// The next per-inference seed: the first word of a freshly
    /// [`Prg::fork`]ed child, so consecutive seeds come from
    /// computationally independent 256-bit keys rather than adjacent
    /// positions of one stream.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.prg.fork().next_u64()
    }
}

/// Stateless random-access companion of [`SeedSequence`]: the seed for
/// position `index` of the `(master, domain)` stream, without walking
/// the sequence. Evaluation loops that visit items by index (per-image
/// defense draws, per-inference session noise) derive their seeds here
/// so that every consumer of the same `(master, domain, index)` triple
/// sees the same seed — the unification behind
/// `c2pi-core`'s defense plumbing.
///
/// ```
/// use c2pi_mpc::prg::indexed_seed;
/// // Deterministic and domain separated:
/// assert_eq!(indexed_seed(7, b"defense", 3), indexed_seed(7, b"defense", 3));
/// assert_ne!(indexed_seed(7, b"defense", 3), indexed_seed(7, b"defense", 4));
/// assert_ne!(indexed_seed(7, b"defense", 3), indexed_seed(7, b"dealer", 3));
/// // Domains longer than the 16 direct key bytes still separate —
/// // including permutations a naive positional fold would collide:
/// assert_ne!(
///     indexed_seed(7, b"c2pi/long-domain/alpha", 0),
///     indexed_seed(7, b"c2pi/long-domain/beta", 0),
/// );
/// assert_ne!(
///     indexed_seed(7, b"AxxxxxxxxxxxxxxxB", 0),
///     indexed_seed(7, b"BxxxxxxxxxxxxxxxA", 0),
/// );
/// ```
pub fn indexed_seed(master: u64, domain: &[u8], index: u64) -> u64 {
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&master.to_le_bytes());
    if domain.len() <= 16 {
        key[8..8 + domain.len()].copy_from_slice(domain);
    } else {
        // Compress long domains to a 16-byte digest through the PRG: a
        // position-dependent polynomial fold seeds one ChaCha block.
        // (A plain positional xor would be commutative per slot and let
        // crafted domains collide.)
        let mut dkey = [0u8; 32];
        for (i, &b) in domain.iter().enumerate() {
            dkey[i % 32] = dkey[i % 32].wrapping_mul(31).wrapping_add(b);
        }
        dkey[31] ^= domain.len() as u8;
        let mut digest = [0u8; 16];
        Prg::from_seed(dkey).fill_bytes(&mut digest);
        key[8..24].copy_from_slice(&digest);
    }
    key[24..32].copy_from_slice(&index.to_le_bytes());
    Prg::from_seed(key).next_u64()
}

/// Fixed-key PRF used for garbling and OT hashing:
/// `H(key, tweak) -> u128`.
///
/// Instantiated as one ChaCha12 block keyed by `key` (a 128-bit wire
/// label, zero-extended) with the tweak in the nonce slot.
pub fn prf128(key: u128, tweak: u64) -> u128 {
    let mut k = [0u32; 8];
    let bytes = key.to_le_bytes();
    for (i, kk) in k.iter_mut().take(4).enumerate() {
        *kk = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    let block = chacha_block(&k, 0, tweak);
    (block[0] as u128)
        | ((block[1] as u128) << 32)
        | ((block[2] as u128) << 64)
        | ((block[3] as u128) << 96)
}

/// Tweakable correlation-robust hash for half-gates garbling:
/// `H(label, tweak) -> u128`.
///
/// Garbling hashes need correlation robustness, not full PRF/PRG
/// strength — real GC implementations run fixed-key AES here, far below
/// a 12-round ChaCha PRF. This is one ChaCha**8** block (the fastest
/// unbroken round count, used by `rand`'s throughput profile) keyed by
/// the 128-bit wire label with the per-gate tweak in the nonce slot,
/// counter 2 for domain separation from [`prf128`]/[`prf128_pair`].
/// Half-gates spends four of these per AND garbled and two per AND
/// evaluated, so the reduced rounds are the kernel's cost driver.
pub fn hash128(label: u128, tweak: u64) -> u128 {
    let mut k = [0u32; 8];
    let bytes = label.to_le_bytes();
    for (i, kk) in k.iter_mut().take(4).enumerate() {
        *kk = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    let block = chacha_core(&k, 2, tweak, 4);
    (block[0] as u128)
        | ((block[1] as u128) << 32)
        | ((block[2] as u128) << 64)
        | ((block[3] as u128) << 96)
}

/// PRF variant keyed by *two* labels, used by AND-gate garbling:
/// `H(a, b, tweak)`.
///
/// The two 128-bit labels fill the 256-bit ChaCha key exactly, so the
/// pair PRF costs a single block — the per-AND-gate cost driver of both
/// garbling (four rows) and evaluation (one row).
pub fn prf128_pair(a: u128, b: u128, tweak: u64) -> u128 {
    let mut k = [0u32; 8];
    let ab = a.to_le_bytes();
    let bb = b.to_le_bytes();
    for i in 0..4 {
        k[i] = u32::from_le_bytes(ab[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        k[i + 4] = u32::from_le_bytes(bb[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    let block = chacha_block(&k, 1, tweak);
    (block[0] as u128)
        | ((block[1] as u128) << 32)
        | ((block[2] as u128) << 64)
        | ((block[3] as u128) << 96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prg::from_u64(42);
        let mut b = Prg::from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prg::from_u64(1);
        let mut b = Prg::from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn output_looks_uniform() {
        // Bit-balance sanity check on 64k bits.
        let mut prg = Prg::from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += prg.next_u64().count_ones();
        }
        let total = 1024 * 64;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        let mut prg = Prg::from_u64(9);
        let mut buf = [0u8; 7];
        prg.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn prf_is_deterministic_and_tweak_sensitive() {
        let k = 0x0123_4567_89ab_cdef_u128;
        assert_eq!(prf128(k, 1), prf128(k, 1));
        assert_ne!(prf128(k, 1), prf128(k, 2));
        assert_ne!(prf128(k, 1), prf128(k ^ 1, 1));
    }

    #[test]
    fn hash128_is_deterministic_tweak_sensitive_and_separated_from_prf() {
        let l = 0xfeed_beef_dead_c0de_u128;
        assert_eq!(hash128(l, 3), hash128(l, 3));
        assert_ne!(hash128(l, 3), hash128(l, 4));
        assert_ne!(hash128(l, 3), hash128(l ^ 1, 3));
        // Distinct counter domain: never collides with the PRF stream.
        assert_ne!(hash128(l, 3), prf128(l, 3));
    }

    #[test]
    fn pair_prf_depends_on_both_keys() {
        let (a, b) = (11u128, 22u128);
        assert_ne!(prf128_pair(a, b, 0), prf128_pair(b, a, 0));
        assert_ne!(prf128_pair(a, b, 0), prf128_pair(a, b ^ 1, 0));
        assert_eq!(prf128_pair(a, b, 5), prf128_pair(a, b, 5));
    }

    #[test]
    fn forked_children_are_independent() {
        let mut parent = Prg::from_u64(11);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
        // Same parent seed reproduces the same children.
        let mut parent2 = Prg::from_u64(11);
        let mut c1b = parent2.fork();
        let a2: Vec<u64> = (0..8).map(|_| c1b.next_u64()).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn seed_sequences_are_domain_separated() {
        let mut dealer = SeedSequence::new(42, b"dealer");
        let mut noise = SeedSequence::new(42, b"noise");
        let d: Vec<u64> = (0..4).map(|_| dealer.next()).collect();
        let n: Vec<u64> = (0..4).map(|_| noise.next()).collect();
        assert_ne!(d, n);
        let mut dealer2 = SeedSequence::new(42, b"dealer");
        let d2: Vec<u64> = (0..4).map(|_| dealer2.next()).collect();
        assert_eq!(d, d2);
        // Consecutive seeds differ (fresh randomness per inference).
        assert_ne!(d[0], d[1]);
    }

    #[test]
    fn u128_stream_is_consistent_with_u64s() {
        let mut a = Prg::from_u64(3);
        let mut b = Prg::from_u64(3);
        let lo = b.next_u64() as u128;
        let hi = b.next_u64() as u128;
        assert_eq!(a.next_u128(), lo | (hi << 64));
    }
}
