//! The two secure ReLU protocols of the reproduction, plus secure
//! pairwise max (for max pooling):
//!
//! * [`gc_relu_garbler`] / [`gc_relu_evaluator`] — Delphi-style garbled
//!   circuit ReLU: the garbler (server) garbles a batched
//!   reconstruct→ReLU→re-mask circuit; the evaluator (client) obtains its
//!   input labels by OT and ends with the additive share `y − r`;
//! * [`relu_interactive`] — Cheetah/CrypTFlow2-style comparison-based
//!   ReLU: DReLU via the GMW millionaires' tree, boolean→arithmetic
//!   conversion, then one Beaver multiplication;
//! * [`max_interactive`] — `max(a,b) = b + drelu(a−b)·(a−b)`, the
//!   building block of secure max pooling.

use crate::beaver::{b2a, mul_elementwise};
use crate::dealer::{BaseOtReceiver, BaseOtSender, TripleShare};
use crate::gc::{
    evaluate, from_bits, garble, maxpool4_masked_circuit, relu_masked_circuit, to_bits, Circuit,
};
use crate::gmw::drelu_batch;
use crate::ot::{ot_receive, ot_send, BitTriples};
use crate::prg::Prg;
use crate::share::ShareVec;
use crate::{MpcError, Result};
use c2pi_transport::Channel;

/// Ring width used by the GC ReLU circuit.
pub const RING_BITS: usize = 64;

/// Exact number of bit triples [`relu_interactive`] consumes per element
/// (the millionaires' tree over `bits`-wide leaves).
pub fn drelu_bit_triples(bits: usize) -> usize {
    let mut total = bits; // leaf ANDs
    let mut width = bits;
    while width > 1 {
        let half = width / 2;
        total += 2 * half;
        width = half + width % 2;
    }
    total
}

/// Garbler side of a generic masked-output GC protocol: garbles the
/// circuit with the given garbler bits, sends tables / its own labels /
/// decode bits, then serves the evaluator's label OT.
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn gc_exec_garbler<C: Channel + ?Sized>(
    ep: &C,
    circuit: &Circuit,
    garbler_bits: &[bool],
    base: &BaseOtSender,
    prg: &mut Prg,
) -> Result<()> {
    let garbled = garble(circuit, garbler_bits, prg)?;
    // Frame 1: AND tables (two half-gates rows per gate). Frame 2:
    // garbler labels. Frame 3: decode bits.
    let mut tables = Vec::with_capacity(garbled.tables.len() * 4);
    for rows in &garbled.tables {
        for row in rows {
            tables.push(*row as u64);
            tables.push((*row >> 64) as u64);
        }
    }
    ep.send_u64s(&tables)?;
    let mut labels = Vec::with_capacity(garbled.garbler_labels.len() * 2);
    for l in &garbled.garbler_labels {
        labels.push(*l as u64);
        labels.push((*l >> 64) as u64);
    }
    ep.send_u64s(&labels)?;
    let mut decode = vec![0u8; garbled.output_decode.len().div_ceil(8)];
    for (i, &b) in garbled.output_decode.iter().enumerate() {
        if b {
            decode[i / 8] |= 1 << (i % 8);
        }
    }
    ep.send_bytes(&decode)?;
    // Transfer the evaluator's input labels by OT.
    ot_send(ep, base, &garbled.evaluator_label_pairs)?;
    Ok(())
}

/// Garbler (server) side of the GC ReLU over a batch of additively
/// shared ring elements. Returns the garbler's fresh output share `r`.
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn gc_relu_garbler<C: Channel + ?Sized>(
    ep: &C,
    x1_share: &ShareVec,
    base: &BaseOtSender,
    prg: &mut Prg,
) -> Result<ShareVec> {
    let n = x1_share.len();
    let circuit = relu_masked_circuit(n, RING_BITS);
    let r: Vec<u64> = prg.next_u64s(n);
    let mut garbler_bits = Vec::with_capacity(2 * RING_BITS * n);
    for (&share, &mask) in x1_share.as_raw().iter().zip(r.iter()) {
        garbler_bits.extend(to_bits(share, RING_BITS));
        garbler_bits.extend(to_bits(mask.wrapping_neg(), RING_BITS));
    }
    gc_exec_garbler(ep, &circuit, &garbler_bits, base, prg)?;
    Ok(ShareVec::from_raw(r))
}

/// Evaluator side of a generic masked-output GC protocol: receives the
/// garbled artifacts, obtains its labels by OT using `choices`, and
/// returns the decoded output bits.
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn gc_exec_evaluator<C: Channel + ?Sized>(
    ep: &C,
    circuit: &Circuit,
    choices: &[bool],
    base: &BaseOtReceiver,
) -> Result<Vec<bool>> {
    let table_words = ep.recv_u64s()?;
    if table_words.len() != circuit.and_count() * 4 {
        return Err(MpcError::Protocol(format!(
            "expected {} table words, got {}",
            circuit.and_count() * 4,
            table_words.len()
        )));
    }
    let tables: Vec<[u128; 2]> = table_words
        .chunks(4)
        .map(|c| {
            let mut rows = [0u128; 2];
            for (r, row) in rows.iter_mut().enumerate() {
                *row = (c[2 * r] as u128) | ((c[2 * r + 1] as u128) << 64);
            }
            rows
        })
        .collect();
    let label_words = ep.recv_u64s()?;
    if label_words.len() != circuit.garbler_input_count() * 2 {
        return Err(MpcError::Protocol("garbler label frame size mismatch".into()));
    }
    let garbler_labels: Vec<u128> =
        label_words.chunks(2).map(|c| (c[0] as u128) | ((c[1] as u128) << 64)).collect();
    let decode_raw = ep.recv_bytes()?;
    let decode: Vec<bool> =
        (0..circuit.output_count()).map(|i| (decode_raw[i / 8] >> (i % 8)) & 1 == 1).collect();
    let my_labels = ot_receive(ep, base, choices)?;
    evaluate(circuit, &tables, &garbler_labels, &my_labels, &decode)
}

/// Evaluator (client) side of the GC ReLU. Returns the evaluator's
/// output share `relu(x) − r`.
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn gc_relu_evaluator<C: Channel + ?Sized>(
    ep: &C,
    x0_share: &ShareVec,
    base: &BaseOtReceiver,
) -> Result<ShareVec> {
    let n = x0_share.len();
    let circuit = relu_masked_circuit(n, RING_BITS);
    let mut choices = Vec::with_capacity(n * RING_BITS);
    for i in 0..n {
        choices.extend(to_bits(x0_share.as_raw()[i], RING_BITS));
    }
    let out_bits = gc_exec_evaluator(ep, &circuit, &choices, base)?;
    let out: Vec<u64> = out_bits.chunks(RING_BITS).map(from_bits).collect();
    Ok(ShareVec::from_raw(out))
}

/// Garbler (server) side of the GC 4-way max over batches of four
/// additively shared values (2×2 max-pool windows). `shares` holds the
/// garbler's shares laid out `[v0, v1, v2, v3]` per window,
/// consecutively. Returns the garbler's fresh output share `r` (one per
/// window).
///
/// # Errors
///
/// Returns transport or protocol errors, or a config error when the
/// input is not a multiple of four.
pub fn gc_maxpool4_garbler<C: Channel + ?Sized>(
    ep: &C,
    shares: &ShareVec,
    base: &BaseOtSender,
    prg: &mut Prg,
) -> Result<ShareVec> {
    if !shares.len().is_multiple_of(4) {
        return Err(MpcError::BadConfig("gc maxpool input not a multiple of 4".into()));
    }
    let n = shares.len() / 4;
    let circuit = maxpool4_masked_circuit(n, RING_BITS);
    let r: Vec<u64> = prg.next_u64s(n);
    let mut garbler_bits = Vec::with_capacity(5 * RING_BITS * n);
    for (quad, &mask) in shares.as_raw().chunks_exact(4).zip(r.iter()) {
        for &share in quad {
            garbler_bits.extend(to_bits(share, RING_BITS));
        }
        garbler_bits.extend(to_bits(mask.wrapping_neg(), RING_BITS));
    }
    gc_exec_garbler(ep, &circuit, &garbler_bits, base, prg)?;
    Ok(ShareVec::from_raw(r))
}

/// Evaluator (client) side of the GC 4-way max. Returns the evaluator's
/// output share `max(v0..v3) − r` per window.
///
/// # Errors
///
/// Returns transport or protocol errors, or a config error when the
/// input is not a multiple of four.
pub fn gc_maxpool4_evaluator<C: Channel + ?Sized>(
    ep: &C,
    shares: &ShareVec,
    base: &BaseOtReceiver,
) -> Result<ShareVec> {
    if !shares.len().is_multiple_of(4) {
        return Err(MpcError::BadConfig("gc maxpool input not a multiple of 4".into()));
    }
    let n = shares.len() / 4;
    let circuit = maxpool4_masked_circuit(n, RING_BITS);
    let mut choices = Vec::with_capacity(4 * RING_BITS * n);
    for w in 0..n {
        for j in 0..4 {
            choices.extend(to_bits(shares.as_raw()[4 * w + j], RING_BITS));
        }
    }
    let out_bits = gc_exec_evaluator(ep, &circuit, &choices, base)?;
    let out: Vec<u64> = out_bits.chunks(RING_BITS).map(from_bits).collect();
    Ok(ShareVec::from_raw(out))
}

/// Comparison-based ReLU over additively shared values: returns fresh
/// additive shares of `relu(x)` per element.
///
/// Consumes [`drelu_bit_triples`]`(63)` bit triples and two arithmetic
/// triples per element (`t_b2a` and `t_mul` must each hold `n` triples).
///
/// # Errors
///
/// Returns transport errors or triple exhaustion.
pub fn relu_interactive<C: Channel + ?Sized>(
    ep: &C,
    is_party0: bool,
    x_share: &ShareVec,
    bit_triples: &mut BitTriples,
    t_b2a: &TripleShare,
    t_mul: &TripleShare,
) -> Result<ShareVec> {
    let sign = drelu_batch(ep, is_party0, x_share.as_raw(), bit_triples)?;
    let b_arith = b2a(ep, is_party0, &sign, t_b2a)?;
    mul_elementwise(ep, is_party0, x_share, &b_arith, t_mul)
}

/// Secure pairwise maximum: `max(a, b) = b + drelu(a−b)·(a−b)`.
///
/// # Errors
///
/// Returns transport errors or triple exhaustion.
pub fn max_interactive<C: Channel + ?Sized>(
    ep: &C,
    is_party0: bool,
    a: &ShareVec,
    b: &ShareVec,
    bit_triples: &mut BitTriples,
    t_b2a: &TripleShare,
    t_mul: &TripleShare,
) -> Result<ShareVec> {
    if a.len() != b.len() {
        return Err(MpcError::BadConfig("max_interactive length mismatch".into()));
    }
    let diff = a.sub(b);
    let relu_diff = relu_interactive(ep, is_party0, &diff, bit_triples, t_b2a, t_mul)?;
    Ok(b.add(&relu_diff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::Dealer;
    use crate::fixed::FixedPoint;
    use crate::ot::{gen_bit_triples, KAPPA};
    use crate::share::{reconstruct, share_secret};
    use c2pi_transport::channel_pair;

    fn shares_of(values: &[f32], fp: FixedPoint, seed: u64) -> (ShareVec, ShareVec, Vec<u64>) {
        let secret: Vec<u64> = values.iter().map(|&v| fp.encode(v)).collect();
        let mut prg = Prg::from_u64(seed);
        let (s0, s1) = share_secret(&secret, &mut prg);
        (s0, s1, secret)
    }

    #[test]
    fn gc_relu_end_to_end() {
        let fp = FixedPoint::default();
        let values = vec![-3.0f32, -0.5, -0.001, 0.0, 0.001, 0.5, 3.0, 10.0];
        let (s0, s1, _) = shares_of(&values, fp, 61);
        let mut dealer = Dealer::new(62);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, counter) = channel_pair();
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(63);
            gc_relu_garbler(&server, &s1, &snd_base, &mut prg).unwrap()
        });
        let y0 = gc_relu_evaluator(&client, &s0, &rcv_base).unwrap();
        let y1 = t.join().unwrap();
        let y = reconstruct(&y0, &y1);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(y[i], fp.encode(v.max(0.0)), "relu({v})");
        }
        // The protocol completes in two round trips (tables + OT).
        assert!(counter.snapshot().round_trips() <= 2);
    }

    #[test]
    fn gc_relu_communication_scales_with_batch() {
        let fp = FixedPoint::default();
        let mut sizes = Vec::new();
        for n in [4usize, 8] {
            let values: Vec<f32> = (0..n).map(|i| i as f32 - 2.0).collect();
            let (s0, s1, _) = shares_of(&values, fp, 70 + n as u64);
            let mut dealer = Dealer::new(71);
            let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
            let (client, server, counter) = channel_pair();
            let t = std::thread::spawn(move || {
                let mut prg = Prg::from_u64(72);
                gc_relu_garbler(&server, &s1, &snd_base, &mut prg).unwrap()
            });
            gc_relu_evaluator(&client, &s0, &rcv_base).unwrap();
            t.join().unwrap();
            sizes.push(counter.snapshot().bytes_total());
        }
        // Doubling the batch roughly doubles traffic.
        let ratio = sizes[1] as f64 / sizes[0] as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    fn triple_pools(n: usize, seed: u64) -> (BitTriples, BitTriples) {
        let mut dealer = Dealer::new(seed);
        let (c_snd, s_rcv) = dealer.base_ots(KAPPA);
        let (s_snd, c_rcv) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(seed ^ 3);
            gen_bit_triples(&server, false, &s_snd, &s_rcv, n, &mut prg).unwrap()
        });
        let mut prg = Prg::from_u64(seed ^ 4);
        let mine = gen_bit_triples(&client, true, &c_snd, &c_rcv, n, &mut prg).unwrap();
        (mine, t.join().unwrap())
    }

    #[test]
    fn interactive_relu_end_to_end() {
        let fp = FixedPoint::default();
        let values = vec![-2.0f32, -0.25, 0.0, 0.25, 2.0, -7.5, 7.5];
        let n = values.len();
        let (s0, s1, _) = shares_of(&values, fp, 81);
        let need = n * drelu_bit_triples(63);
        let (mut bt0, mut bt1) = triple_pools(need, 82);
        let mut dealer = Dealer::new(83);
        let (ta0, ta1) = dealer.beaver_triples(n);
        let (tb0, tb1) = dealer.beaver_triples(n);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || {
            relu_interactive(&server, false, &s1, &mut bt1, &ta1, &tb1).unwrap()
        });
        let y0 = relu_interactive(&client, true, &s0, &mut bt0, &ta0, &tb0).unwrap();
        let y1 = t.join().unwrap();
        let y = reconstruct(&y0, &y1);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(y[i], fp.encode(v.max(0.0)), "relu({v})");
        }
    }

    #[test]
    fn interactive_relu_is_leaner_than_gc() {
        // The core Cheetah-vs-Delphi communication asymmetry the paper's
        // Table II rests on.
        let fp = FixedPoint::default();
        let values: Vec<f32> = (0..16).map(|i| (i as f32) - 8.0).collect();
        let n = values.len();
        // GC cost.
        let (s0, s1, _) = shares_of(&values, fp, 91);
        let mut dealer = Dealer::new(92);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, gc_counter) = channel_pair();
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(93);
            gc_relu_garbler(&server, &s1, &snd_base, &mut prg).unwrap()
        });
        gc_relu_evaluator(&client, &s0, &rcv_base).unwrap();
        t.join().unwrap();
        let gc_bytes = gc_counter.snapshot().bytes_total();
        // Interactive cost (online only; triples pre-generated).
        let (s0, s1, _) = shares_of(&values, fp, 94);
        let need = n * drelu_bit_triples(63);
        let (mut bt0, mut bt1) = triple_pools(need, 95);
        let (ta0, ta1) = dealer.beaver_triples(n);
        let (tb0, tb1) = dealer.beaver_triples(n);
        let (client, server, int_counter) = channel_pair();
        let t = std::thread::spawn(move || {
            relu_interactive(&server, false, &s1, &mut bt1, &ta1, &tb1).unwrap()
        });
        relu_interactive(&client, true, &s0, &mut bt0, &ta0, &tb0).unwrap();
        t.join().unwrap();
        let int_bytes = int_counter.snapshot().bytes_total();
        assert!(
            int_bytes * 3 < gc_bytes,
            "interactive {int_bytes} should be well under gc {gc_bytes}"
        );
    }

    #[test]
    fn secure_max_selects_larger_value() {
        let fp = FixedPoint::default();
        let a_vals = vec![1.0f32, -2.0, 0.5, -0.5];
        let b_vals = vec![0.5f32, -1.0, 0.5, 3.0];
        let n = a_vals.len();
        let (a0, a1, _) = shares_of(&a_vals, fp, 101);
        let (b0, b1, _) = shares_of(&b_vals, fp, 102);
        let need = n * drelu_bit_triples(63);
        let (mut bt0, mut bt1) = triple_pools(need, 103);
        let mut dealer = Dealer::new(104);
        let (ta0, ta1) = dealer.beaver_triples(n);
        let (tb0, tb1) = dealer.beaver_triples(n);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || {
            max_interactive(&server, false, &a1, &b1, &mut bt1, &ta1, &tb1).unwrap()
        });
        let y0 = max_interactive(&client, true, &a0, &b0, &mut bt0, &ta0, &tb0).unwrap();
        let y1 = t.join().unwrap();
        let y = reconstruct(&y0, &y1);
        for i in 0..n {
            assert_eq!(y[i], fp.encode(a_vals[i].max(b_vals[i])), "max element {i}");
        }
    }

    #[test]
    fn gc_maxpool4_end_to_end() {
        let fp = FixedPoint::default();
        // Two windows of four values each.
        let values = vec![1.0f32, -2.0, 0.5, 0.75, -1.0, -2.0, -3.0, -0.25];
        let (s0, s1, _) = shares_of(&values, fp, 111);
        let mut dealer = Dealer::new(112);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(113);
            gc_maxpool4_garbler(&server, &s1, &snd_base, &mut prg).unwrap()
        });
        let y0 = gc_maxpool4_evaluator(&client, &s0, &rcv_base).unwrap();
        let y1 = t.join().unwrap();
        let y = reconstruct(&y0, &y1);
        assert_eq!(y.len(), 2);
        assert_eq!(y[0], fp.encode(1.0));
        assert_eq!(y[1], fp.encode(-0.25));
    }

    #[test]
    fn gc_maxpool_rejects_ragged_input() {
        let mut dealer = Dealer::new(114);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let s = ShareVec::from_raw(vec![1, 2, 3]);
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(115);
            gc_maxpool4_garbler(&server, &s2, &snd_base, &mut prg).is_err()
        });
        assert!(gc_maxpool4_evaluator(&client, &s, &rcv_base).is_err());
        assert!(t.join().unwrap());
    }

    #[test]
    fn dealer_bit_triples_work_with_interactive_relu() {
        let fp = FixedPoint::default();
        let values = vec![-1.5f32, 0.75, -0.125, 4.0];
        let n = values.len();
        let (s0, s1, _) = shares_of(&values, fp, 121);
        let mut dealer = Dealer::new(122);
        let (mut bt0, mut bt1) = dealer.bit_triples(n * drelu_bit_triples(63));
        let (ta0, ta1) = dealer.beaver_triples(n);
        let (tb0, tb1) = dealer.beaver_triples(n);
        let (client, server, counter) = channel_pair();
        let t = std::thread::spawn(move || {
            relu_interactive(&server, false, &s1, &mut bt1, &ta1, &tb1).unwrap()
        });
        let y0 = relu_interactive(&client, true, &s0, &mut bt0, &ta0, &tb0).unwrap();
        let y1 = t.join().unwrap();
        let y = reconstruct(&y0, &y1);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(y[i], fp.encode(v.max(0.0)), "relu({v})");
        }
        // With silent triples the online traffic is a few hundred bytes
        // per element, mirroring Cheetah's lean non-linear protocol.
        let per_elem = counter.snapshot().bytes_total() / n as u64;
        assert!(per_elem < 1500, "online bytes per relu: {per_elem}");
    }

    #[test]
    fn drelu_triple_budget_formula() {
        // 63-bit comparison: 63 leaves + tree merges.
        assert_eq!(drelu_bit_triples(63), 63 + 62 + 32 + 16 + 8 + 4 + 2);
        assert_eq!(drelu_bit_triples(1), 1);
        assert_eq!(drelu_bit_triples(2), 2 + 2);
    }
}
