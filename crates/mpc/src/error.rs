//! Error type for MPC operations.

use c2pi_transport::TransportError;
use std::fmt;

/// Error returned by fallible MPC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// The underlying channel failed.
    Transport(TransportError),
    /// The dealer's correlated randomness ran out or is mismatched.
    Dealer(String),
    /// A protocol message had an unexpected size or content.
    Protocol(String),
    /// Invalid configuration (vector length mismatch, zero sizes, …).
    BadConfig(String),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::Transport(e) => write!(f, "transport error: {e}"),
            MpcError::Dealer(msg) => write!(f, "dealer error: {msg}"),
            MpcError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            MpcError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for MpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpcError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for MpcError {
    fn from(e: TransportError) -> Self {
        MpcError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MpcError::from(TransportError::Disconnected);
        assert!(e.to_string().contains("transport"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MpcError::Dealer("out".into())).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MpcError>();
    }
}
