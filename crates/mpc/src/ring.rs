//! Matrix arithmetic over the ring `Z_2^64`, plus the ring-domain
//! `im2col` that lets each party convert its share of a convolution input
//! locally (im2col is linear, so it commutes with additive sharing).

use crate::{MpcError, Result};
use c2pi_tensor::conv::Conv2dGeom;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of ring elements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl RingMatrix {
    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns an error when the buffer length differs from `rows·cols`.
    pub fn from_vec(data: Vec<u64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MpcError::BadConfig(format!(
                "buffer of {} for {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(RingMatrix { rows, cols, data })
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RingMatrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major elements.
    pub fn as_slice(&self) -> &[u64] {
        &self.data
    }

    /// Mutable row-major elements.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<u64> {
        self.data
    }

    /// Wrapping matrix product.
    ///
    /// # Errors
    ///
    /// Returns an error when inner dimensions disagree.
    pub fn matmul(&self, rhs: &RingMatrix) -> Result<RingMatrix> {
        if self.cols != rhs.rows {
            return Err(MpcError::BadConfig(format!(
                "ring matmul {}x{} times {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = vec![0u64; self.rows * rhs.cols];
        for i in 0..self.rows {
            for kk in 0..self.cols {
                let a = self.data[i * self.cols + kk];
                if a == 0 {
                    continue;
                }
                let brow = &rhs.data[kk * rhs.cols..(kk + 1) * rhs.cols];
                let orow = &mut out[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o = o.wrapping_add(a.wrapping_mul(b));
                }
            }
        }
        RingMatrix::from_vec(out, self.rows, rhs.cols)
    }

    /// Elementwise wrapping sum.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn add(&self, rhs: &RingMatrix) -> Result<RingMatrix> {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return Err(MpcError::BadConfig("ring add shape mismatch".into()));
        }
        RingMatrix::from_vec(
            self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| a.wrapping_add(b)).collect(),
            self.rows,
            self.cols,
        )
    }

    /// Elementwise wrapping difference.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes differ.
    pub fn sub(&self, rhs: &RingMatrix) -> Result<RingMatrix> {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return Err(MpcError::BadConfig("ring sub shape mismatch".into()));
        }
        RingMatrix::from_vec(
            self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| a.wrapping_sub(b)).collect(),
            self.rows,
            self.cols,
        )
    }

    /// Stacks matrices with equal row counts along the column (batch)
    /// axis: `hstack([A, B, …]) = [A | B | …]`. Because ring matmul
    /// accumulates each output column independently, `W·hstack(Xs)` is
    /// bit-for-bit the column-stacking of every `W·Xᵢ` — the identity
    /// the batched linear protocol rests on.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty list or disagreeing row counts.
    pub fn hstack(mats: &[&RingMatrix]) -> Result<RingMatrix> {
        let rows =
            mats.first().ok_or_else(|| MpcError::BadConfig("hstack of nothing".into()))?.rows;
        if mats.iter().any(|m| m.rows != rows) {
            return Err(MpcError::BadConfig("hstack row counts disagree".into()));
        }
        let cols: usize = mats.iter().map(|m| m.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for m in mats {
                data.extend_from_slice(&m.data[r * m.cols..(r + 1) * m.cols]);
            }
        }
        RingMatrix::from_vec(data, rows, cols)
    }

    /// Splits this matrix back into column blocks of the given widths —
    /// the inverse of [`RingMatrix::hstack`].
    ///
    /// # Errors
    ///
    /// Returns an error when the widths do not sum to the column count.
    pub fn split_cols(&self, widths: &[usize]) -> Result<Vec<RingMatrix>> {
        if widths.iter().sum::<usize>() != self.cols {
            return Err(MpcError::BadConfig(format!(
                "split_cols widths sum to {}, matrix has {} columns",
                widths.iter().sum::<usize>(),
                self.cols
            )));
        }
        let mut parts: Vec<Vec<u64>> =
            widths.iter().map(|&w| Vec::with_capacity(self.rows * w)).collect();
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut at = 0;
            for (part, &w) in parts.iter_mut().zip(widths) {
                part.extend_from_slice(&row[at..at + w]);
                at += w;
            }
        }
        parts
            .into_iter()
            .zip(widths)
            .map(|(data, &w)| RingMatrix::from_vec(data, self.rows, w))
            .collect()
    }
}

/// Ring-domain `im2col` for one image stored as a flat
/// channel-major `[c·h·w]` vector of ring elements. Mirrors
/// [`c2pi_tensor::conv::im2col`] exactly (zero padding becomes ring 0).
///
/// # Errors
///
/// Returns an error when the buffer length or geometry is inconsistent.
pub fn im2col_ring(
    input: &[u64],
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeom,
) -> Result<RingMatrix> {
    if input.len() != c * h * w {
        return Err(MpcError::BadConfig(format!("im2col buffer {} for {c}x{h}x{w}", input.len())));
    }
    let (oh, ow) =
        geom.output_hw(h, w).map_err(|e| MpcError::BadConfig(format!("im2col geometry: {e}")))?;
    let k = geom.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    let mut out = vec![0u64; rows * cols];
    let pad = geom.padding as isize;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride) as isize + (ky * geom.dilation) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = (ch * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride) as isize + (kx * geom.dilation) as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[base + oy * ow + ox] = input[in_row + ix as usize];
                    }
                }
            }
        }
    }
    RingMatrix::from_vec(out, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedPoint;
    use c2pi_tensor::conv::im2col;
    use c2pi_tensor::Tensor;

    #[test]
    fn matmul_known_values() {
        let a = RingMatrix::from_vec(vec![1, 2, 3, 4], 2, 2).unwrap();
        let b = RingMatrix::from_vec(vec![5, 6, 7, 8], 2, 2).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    fn matmul_wraps_modulo_2_64() {
        let a = RingMatrix::from_vec(vec![u64::MAX], 1, 1).unwrap();
        let b = RingMatrix::from_vec(vec![2], 1, 1).unwrap();
        assert_eq!(a.matmul(&b).unwrap().as_slice(), &[u64::MAX - 1]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = RingMatrix::zeros(2, 3);
        let b = RingMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.add(&RingMatrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = RingMatrix::from_vec(vec![1, u64::MAX], 1, 2).unwrap();
        let b = RingMatrix::from_vec(vec![5, 7], 1, 2).unwrap();
        assert_eq!(a.add(&b).unwrap().sub(&b).unwrap(), a);
    }

    #[test]
    fn hstack_and_split_cols_round_trip() {
        let a = RingMatrix::from_vec(vec![1, 2, 3, 4, 5, 6], 2, 3).unwrap();
        let b = RingMatrix::from_vec(vec![7, 8, 9, 10], 2, 2).unwrap();
        let stacked = RingMatrix::hstack(&[&a, &b]).unwrap();
        assert_eq!((stacked.rows(), stacked.cols()), (2, 5));
        assert_eq!(stacked.as_slice(), &[1, 2, 3, 7, 8, 4, 5, 6, 9, 10]);
        let parts = stacked.split_cols(&[3, 2]).unwrap();
        assert_eq!(parts, vec![a.clone(), b]);
        assert!(RingMatrix::hstack(&[]).is_err());
        assert!(RingMatrix::hstack(&[&a, &RingMatrix::zeros(3, 1)]).is_err());
        assert!(stacked.split_cols(&[4, 2]).is_err());
    }

    #[test]
    fn matmul_of_column_stacked_inputs_is_bit_identical_per_member() {
        // W·[X₁|X₂|…] column-blocks into the per-member products exactly
        // — the identity the batched masked-linear server rests on.
        let mut prg = crate::prg::Prg::from_u64(77);
        let w = RingMatrix::from_vec(prg.next_u64s(4 * 6), 4, 6).unwrap();
        let members: Vec<RingMatrix> =
            (0..3).map(|_| RingMatrix::from_vec(prg.next_u64s(6 * 5), 6, 5).unwrap()).collect();
        let refs: Vec<&RingMatrix> = members.iter().collect();
        let fused = w.matmul(&RingMatrix::hstack(&refs).unwrap()).unwrap();
        let split = fused.split_cols(&[5, 5, 5]).unwrap();
        for (got, x) in split.iter().zip(&members) {
            assert_eq!(got, &w.matmul(x).unwrap());
        }
    }

    #[test]
    fn ring_im2col_matches_float_im2col() {
        let fp = FixedPoint::default();
        let geom = Conv2dGeom::new(3, 2, 1, 1);
        let img = Tensor::rand_uniform(&[1, 2, 6, 6], -2.0, 2.0, 1);
        let float_cols = im2col(&img, geom).unwrap();
        let ring_input = fp.encode_tensor(&img);
        let ring_cols = im2col_ring(&ring_input, 2, 6, 6, geom).unwrap();
        assert_eq!(ring_cols.rows() * ring_cols.cols(), float_cols.len());
        for (rv, fv) in ring_cols.as_slice().iter().zip(float_cols.as_slice()) {
            assert!((fp.decode(*rv) - fv).abs() < 1e-3);
        }
    }

    #[test]
    fn ring_im2col_is_additive() {
        // im2col(x0 + x1) == im2col(x0) + im2col(x1) — the property that
        // lets each party transform its share locally.
        let geom = Conv2dGeom::new(3, 1, 1, 1);
        let mut prg = crate::prg::Prg::from_u64(5);
        let x: Vec<u64> = prg.next_u64s(2 * 5 * 5);
        let (s0, s1) = crate::share::share_secret(&x, &mut prg);
        let full = im2col_ring(&x, 2, 5, 5, geom).unwrap();
        let c0 = im2col_ring(s0.as_raw(), 2, 5, 5, geom).unwrap();
        let c1 = im2col_ring(s1.as_raw(), 2, 5, 5, geom).unwrap();
        assert_eq!(c0.add(&c1).unwrap(), full);
    }
}

#[cfg(test)]
mod ring_proptests {
    use super::*;
    use crate::prg::Prg;
    use proptest::prelude::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> RingMatrix {
        let mut prg = Prg::from_u64(seed);
        RingMatrix::from_vec(prg.next_u64s(rows * cols), rows, cols).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn matmul_is_associative(m in 1usize..4, k in 1usize..4, n in 1usize..4, p in 1usize..4, seed in any::<u64>()) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed ^ 1);
            let c = random_matrix(n, p, seed ^ 2);
            let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn matmul_distributes_over_add(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in any::<u64>()) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed ^ 3);
            let c = random_matrix(k, n, seed ^ 4);
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn matmul_commutes_with_share_reconstruction(k in 1usize..4, n in 1usize..4, seed in any::<u64>()) {
            // W(X0 + X1) == WX0 + WX1 — the linearity the masked-linear
            // protocol rests on.
            let w = random_matrix(2, k, seed);
            let mut prg = Prg::from_u64(seed ^ 9);
            let x: Vec<u64> = prg.next_u64s(k * n);
            let (x0, x1) = crate::share::share_secret(&x, &mut prg);
            let xm = RingMatrix::from_vec(x, k, n).unwrap();
            let x0m = RingMatrix::from_vec(x0.into_raw(), k, n).unwrap();
            let x1m = RingMatrix::from_vec(x1.into_raw(), k, n).unwrap();
            let full = w.matmul(&xm).unwrap();
            let split = w.matmul(&x0m).unwrap().add(&w.matmul(&x1m).unwrap()).unwrap();
            prop_assert_eq!(full, split);
        }
    }
}
