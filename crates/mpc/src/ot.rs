//! IKNP oblivious-transfer extension (semi-honest), plus the bit-triple
//! generator built on top of it.
//!
//! The 128 base OTs come from the [`crate::dealer`] (DESIGN.md §3 — no
//! elliptic-curve crate exists offline); everything from there on is the
//! real protocol: PRG expansion of the base seeds, the `u = t ⊕ PRG ⊕ r`
//! correction matrix (the dominant 16 bytes/OT of traffic), the
//! correlation-robust hash, and the masked message pairs — all moving
//! through the byte-counted channel.
//!
//! One set of [`KAPPA`] base OTs per *session* is enough: the stateful
//! [`OtExtSender`] / [`OtExtReceiver`] pair stretches it to any number
//! of label transfers across any number of extension rounds, deriving
//! each round's matrix expansion from a fresh PRG nonce (both sides
//! advance the tweak in lockstep). This replaces the old
//! one-base-OT-set-per-batch pattern — base OTs are the expensive,
//! amortised setup; extensions are the cheap repeatable part.

use crate::dealer::{BaseOtReceiver, BaseOtSender};
use crate::prg::{prf128, Prg};
use crate::{MpcError, Result};
use c2pi_transport::Channel;

/// Security parameter: number of base OTs / label width in bits.
pub const KAPPA: usize = 128;

fn expand_bits(seed: &[u8; 32], tweak: u64, n: usize) -> Vec<bool> {
    let mut prg = Prg::from_seed_nonce(*seed, tweak);
    let mut out = Vec::with_capacity(n);
    let mut word = 0u64;
    for i in 0..n {
        if i % 64 == 0 {
            word = prg.next_u64();
        }
        out.push((word >> (i % 64)) & 1 == 1);
        if i % 64 == 63 {
            word = 0;
        }
    }
    out
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect()
}

/// Runs the receiver side of an IKNP extension for `choices.len()`
/// message-pair OTs, returning the chosen 128-bit messages.
///
/// Single-shot form (expansion tweak 0): correct for base-OT material
/// used once. When one base set serves many rounds, go through
/// [`OtExtReceiver`], which advances the tweak per round.
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn ot_receive<C: Channel + ?Sized>(
    ep: &C,
    base: &BaseOtReceiver,
    choices: &[bool],
) -> Result<Vec<u128>> {
    ot_receive_tweaked(ep, base, 0, choices)
}

fn ot_receive_tweaked<C: Channel + ?Sized>(
    ep: &C,
    base: &BaseOtReceiver,
    tweak: u64,
    choices: &[bool],
) -> Result<Vec<u128>> {
    let m = choices.len();
    if base.seed_pairs.len() != KAPPA {
        return Err(MpcError::BadConfig(format!(
            "expected {KAPPA} base OTs, got {}",
            base.seed_pairs.len()
        )));
    }
    // Row i: t_i = PRG(k0_i); u_i = t_i ⊕ PRG(k1_i) ⊕ r.
    let mut t_rows: Vec<Vec<bool>> = Vec::with_capacity(KAPPA);
    let mut u_frame: Vec<u8> = Vec::with_capacity(KAPPA * m.div_ceil(8));
    for (k0, k1) in &base.seed_pairs {
        let t = expand_bits(k0, tweak, m);
        let g1 = expand_bits(k1, tweak, m);
        let u: Vec<bool> = t
            .iter()
            .zip(g1.iter())
            .zip(choices.iter())
            .map(|((&ti, &gi), &ri)| ti ^ gi ^ ri)
            .collect();
        u_frame.extend_from_slice(&pack_bits(&u));
        t_rows.push(t);
    }
    ep.send_bytes(&u_frame)?;
    // Column j of T is the receiver's hash key for OT j.
    let mut t_cols = vec![0u128; m];
    for (i, row) in t_rows.iter().enumerate() {
        for (j, &bit) in row.iter().enumerate() {
            if bit {
                t_cols[j] |= 1u128 << i;
            }
        }
    }
    // Receive masked pairs and unmask the chosen one.
    let pads = ep.recv_bytes()?;
    if pads.len() != m * 32 {
        return Err(MpcError::Protocol(format!(
            "expected {} pad bytes, got {}",
            m * 32,
            pads.len()
        )));
    }
    let mut out = Vec::with_capacity(m);
    for (j, &r) in choices.iter().enumerate() {
        let off = j * 32 + if r { 16 } else { 0 };
        let y = u128::from_le_bytes(pads[off..off + 16].try_into().expect("16 bytes"));
        out.push(y ^ prf128(t_cols[j], j as u64));
    }
    Ok(out)
}

/// Runs the sender side of an IKNP extension, transferring one of each
/// 128-bit message pair according to the receiver's choices.
///
/// Single-shot form (expansion tweak 0); see [`OtExtSender`] for the
/// multi-round stateful counterpart.
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn ot_send<C: Channel + ?Sized>(
    ep: &C,
    base: &BaseOtSender,
    pairs: &[(u128, u128)],
) -> Result<()> {
    ot_send_tweaked(ep, base, 0, pairs)
}

fn ot_send_tweaked<C: Channel + ?Sized>(
    ep: &C,
    base: &BaseOtSender,
    tweak: u64,
    pairs: &[(u128, u128)],
) -> Result<()> {
    let m = pairs.len();
    if base.seeds.len() != KAPPA || base.choices.len() != KAPPA {
        return Err(MpcError::BadConfig(format!(
            "expected {KAPPA} base OTs, got {}",
            base.seeds.len()
        )));
    }
    let u_frame = ep.recv_bytes()?;
    let row_bytes = m.div_ceil(8);
    if u_frame.len() != KAPPA * row_bytes {
        return Err(MpcError::Protocol(format!(
            "u-matrix of {} bytes, expected {}",
            u_frame.len(),
            KAPPA * row_bytes
        )));
    }
    // q_i = PRG(k_{s_i}) ⊕ s_i·u_i ; column j then equals t_j ⊕ r_j·s.
    let mut q_cols = vec![0u128; m];
    let mut s_word = 0u128;
    for i in 0..KAPPA {
        if base.choices[i] {
            s_word |= 1u128 << i;
        }
        let g = expand_bits(&base.seeds[i], tweak, m);
        let u = unpack_bits(&u_frame[i * row_bytes..(i + 1) * row_bytes], m);
        for j in 0..m {
            let qij = g[j] ^ (base.choices[i] & u[j]);
            if qij {
                q_cols[j] |= 1u128 << i;
            }
        }
    }
    let mut pads = Vec::with_capacity(m * 32);
    for (j, &(m0, m1)) in pairs.iter().enumerate() {
        let y0 = prf128(q_cols[j], j as u64) ^ m0;
        let y1 = prf128(q_cols[j] ^ s_word, j as u64) ^ m1;
        pads.extend_from_slice(&y0.to_le_bytes());
        pads.extend_from_slice(&y1.to_le_bytes());
    }
    ep.send_bytes(&pads)?;
    Ok(())
}

/// Stateful sender side of a session-long IKNP extension: one set of
/// [`KAPPA`] base OTs stretched across any number of
/// [`OtExtSender::extend`] rounds. Each round expands the base seeds
/// under a fresh PRG nonce, so rounds are independent; both parties
/// must make their rounds in the same order (the tweaks advance in
/// lockstep).
///
/// Deliberately not `Clone`: two live copies would expand the same
/// `(seed, nonce)` stream for different payloads, which is exactly the
/// reuse the per-round nonce exists to prevent. Likewise, a round that
/// returns an error must not be retried on the same state — the peer's
/// counter may or may not have advanced; wrap fresh base-OT material
/// instead.
#[derive(Debug)]
pub struct OtExtSender {
    base: BaseOtSender,
    tweak: u64,
}

/// Stateful receiver side of a session-long IKNP extension (see
/// [`OtExtSender`], including the no-`Clone`/no-retry contract).
#[derive(Debug)]
pub struct OtExtReceiver {
    base: BaseOtReceiver,
    tweak: u64,
}

/// First tweak the stateful extension wrappers use: tweak 0 is reserved
/// for the single-shot [`ot_send`]/[`ot_receive`] form, so a base set
/// that served one single-shot transfer and is then wrapped can never
/// reuse a `(seed, nonce)` expansion across different payloads.
const FIRST_ROUND_TWEAK: u64 = 1;

impl OtExtSender {
    /// Wraps the session's base-OT material.
    pub fn new(base: BaseOtSender) -> Self {
        OtExtSender { base, tweak: FIRST_ROUND_TWEAK }
    }

    /// Extension rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.tweak - FIRST_ROUND_TWEAK
    }

    /// Transfers one of each message pair according to the peer
    /// receiver's choices, then advances to the next round. The round
    /// counter only advances on success, so both sides stay in lockstep
    /// over *completed* rounds.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors. After an error this
    /// extension state is poisoned for the channel (the peer's round
    /// counter is indeterminate) — do not retry on it.
    pub fn extend<C: Channel + ?Sized>(&mut self, ep: &C, pairs: &[(u128, u128)]) -> Result<()> {
        ot_send_tweaked(ep, &self.base, self.tweak, pairs)?;
        self.tweak += 1;
        Ok(())
    }
}

impl OtExtReceiver {
    /// Wraps the session's base-OT material.
    pub fn new(base: BaseOtReceiver) -> Self {
        OtExtReceiver { base, tweak: FIRST_ROUND_TWEAK }
    }

    /// Extension rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.tweak - FIRST_ROUND_TWEAK
    }

    /// Receives the chosen message of each pair the peer sender offers,
    /// then advances to the next round (on success only — see
    /// [`OtExtSender::extend`]).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors. After an error this
    /// extension state is poisoned for the channel — do not retry on it.
    pub fn extend<C: Channel + ?Sized>(&mut self, ep: &C, choices: &[bool]) -> Result<Vec<u128>> {
        let out = ot_receive_tweaked(ep, &self.base, self.tweak, choices)?;
        self.tweak += 1;
        Ok(out)
    }
}

/// One party's share of a batch of boolean AND (bit Beaver) triples:
/// `a ⊕ a'`, `b ⊕ b'`, `c ⊕ c'` with `c = a·b` across parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitTriples {
    /// Share of the `a` bits.
    pub a: Vec<bool>,
    /// Share of the `b` bits.
    pub b: Vec<bool>,
    /// Share of the `c = a∧b` bits.
    pub c: Vec<bool>,
}

impl BitTriples {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Splits off the first `n` triples.
    ///
    /// # Errors
    ///
    /// Returns a dealer error when fewer than `n` remain.
    pub fn take(&mut self, n: usize) -> Result<BitTriples> {
        if self.a.len() < n {
            return Err(MpcError::Dealer(format!(
                "bit-triple pool exhausted: need {n}, have {}",
                self.a.len()
            )));
        }
        let rest_a = self.a.split_off(n);
        let rest_b = self.b.split_off(n);
        let rest_c = self.c.split_off(n);
        let taken = BitTriples {
            a: std::mem::replace(&mut self.a, rest_a),
            b: std::mem::replace(&mut self.b, rest_b),
            c: std::mem::replace(&mut self.c, rest_c),
        };
        Ok(taken)
    }
}

/// Generates `n` boolean AND triples via two batched OT extensions
/// (Gilboa-style cross products). `is_initiator` decides which party
/// opens the first extension; both parties must pass opposite values.
///
/// Each party supplies the base-OT material for the direction where it
/// *sends* extended OTs (`my_send_base`) and where it receives
/// (`my_recv_base`).
///
/// # Errors
///
/// Returns transport or protocol errors.
pub fn gen_bit_triples<C: Channel + ?Sized>(
    ep: &C,
    is_initiator: bool,
    my_send_base: &BaseOtSender,
    my_recv_base: &BaseOtReceiver,
    n: usize,
    prg: &mut Prg,
) -> Result<BitTriples> {
    // Local random shares of a and b.
    let a: Vec<bool> = (0..n).map(|_| prg.next_bool()).collect();
    let b: Vec<bool> = (0..n).map(|_| prg.next_bool()).collect();
    // Cross term 1: my a × peer b. I act as OT sender with pads hiding a.
    // Cross term 2: peer a × my b. I act as OT receiver with choices b.
    let r_pad: Vec<bool> = (0..n).map(|_| prg.next_bool()).collect();
    let pairs: Vec<(u128, u128)> =
        r_pad.iter().zip(a.iter()).map(|(&r, &ai)| (r as u128, (r ^ ai) as u128)).collect();
    let received: Vec<u128>;
    if is_initiator {
        ot_send(ep, my_send_base, &pairs)?;
        received = ot_receive(ep, my_recv_base, &b)?;
    } else {
        received = ot_receive(ep, my_recv_base, &b)?;
        ot_send(ep, my_send_base, &pairs)?;
    }
    // c share: a·b (local) ⊕ r (my pad for peer's cross term)
    //          ⊕ received bit (peer's pad ⊕ peer_a·my_b).
    let c: Vec<bool> =
        (0..n).map(|i| (a[i] & b[i]) ^ r_pad[i] ^ ((received[i] & 1) == 1)).collect();
    Ok(BitTriples { a, b, c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::Dealer;
    use c2pi_transport::channel_pair;

    /// One extension round's inputs: the sender's pairs and the
    /// receiver's choices.
    type Round = (Vec<(u128, u128)>, Vec<bool>);

    #[test]
    fn pack_unpack_round_trip() {
        let bits = vec![true, false, true, true, false, false, false, true, true, false];
        assert_eq!(unpack_bits(&pack_bits(&bits), bits.len()), bits);
    }

    #[test]
    fn expand_bits_is_deterministic_and_tweak_separated() {
        let seed = [3u8; 32];
        assert_eq!(expand_bits(&seed, 0, 100), expand_bits(&seed, 0, 100));
        assert_ne!(expand_bits(&seed, 0, 100), expand_bits(&[4u8; 32], 0, 100));
        // Distinct tweaks give independent expansions of the same seed —
        // what lets one base-OT set serve many extension rounds.
        assert_ne!(expand_bits(&seed, 0, 100), expand_bits(&seed, 1, 100));
    }

    #[test]
    fn one_base_set_serves_many_extension_rounds() {
        let mut dealer = Dealer::new(29);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let mut prg = Prg::from_u64(31);
        let rounds: Vec<Round> = (0..3)
            .map(|r| {
                let m = 50 + 17 * r;
                let pairs: Vec<(u128, u128)> =
                    (0..m).map(|_| (prg.next_u128(), prg.next_u128())).collect();
                let choices: Vec<bool> = (0..m).map(|_| prg.next_bool()).collect();
                (pairs, choices)
            })
            .collect();
        let send_rounds: Vec<Vec<(u128, u128)>> = rounds.iter().map(|(p, _)| p.clone()).collect();
        let t = std::thread::spawn(move || {
            let mut snd = OtExtSender::new(snd_base);
            for pairs in &send_rounds {
                snd.extend(&server, pairs).unwrap();
            }
            assert_eq!(snd.rounds(), 3);
        });
        let mut rcv = OtExtReceiver::new(rcv_base);
        for (pairs, choices) in &rounds {
            let got = rcv.extend(&client, choices).unwrap();
            let want: Vec<u128> = pairs
                .iter()
                .zip(choices.iter())
                .map(|(&(m0, m1), &c)| if c { m1 } else { m0 })
                .collect();
            assert_eq!(got, want);
        }
        t.join().unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn extension_rounds_are_correct_for_random_choices(
            seed in proptest::prelude::any::<u64>(),
            lens in proptest::collection::vec(1usize..80, 1..4),
        ) {
            let mut dealer = Dealer::new(seed);
            let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
            let (client, server, _) = channel_pair();
            let mut prg = Prg::from_u64(seed ^ 0x0BAD_CAFE);
            let rounds: Vec<Round> = lens
                .iter()
                .map(|&m| {
                    let pairs: Vec<(u128, u128)> =
                        (0..m).map(|_| (prg.next_u128(), prg.next_u128())).collect();
                    let choices: Vec<bool> = (0..m).map(|_| prg.next_bool()).collect();
                    (pairs, choices)
                })
                .collect();
            let send_rounds: Vec<Vec<(u128, u128)>> =
                rounds.iter().map(|(p, _)| p.clone()).collect();
            let t = std::thread::spawn(move || {
                let mut snd = OtExtSender::new(snd_base);
                for pairs in &send_rounds {
                    snd.extend(&server, pairs).unwrap();
                }
            });
            let mut rcv = OtExtReceiver::new(rcv_base);
            for (pairs, choices) in &rounds {
                let got = rcv.extend(&client, choices).unwrap();
                for (j, (&(m0, m1), &c)) in pairs.iter().zip(choices.iter()).enumerate() {
                    proptest::prop_assert_eq!(got[j], if c { m1 } else { m0 });
                }
            }
            t.join().unwrap();
        }
    }

    #[test]
    fn ot_transfers_chosen_messages() {
        let mut dealer = Dealer::new(11);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let mut prg = Prg::from_u64(5);
        let pairs: Vec<(u128, u128)> =
            (0..200).map(|_| (prg.next_u128(), prg.next_u128())).collect();
        let choices: Vec<bool> = (0..200).map(|_| prg.next_bool()).collect();
        let expected: Vec<u128> = pairs
            .iter()
            .zip(choices.iter())
            .map(|(&(m0, m1), &c)| if c { m1 } else { m0 })
            .collect();
        let pairs_clone = pairs.clone();
        let t = std::thread::spawn(move || ot_send(&server, &snd_base, &pairs_clone).unwrap());
        let got = ot_receive(&client, &rcv_base, &choices).unwrap();
        t.join().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn ot_receiver_does_not_learn_other_message() {
        // Statistical check: the unchosen pads decrypt to garbage, i.e.
        // re-deriving with flipped choice bits gives wrong messages.
        let mut dealer = Dealer::new(13);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let pairs: Vec<(u128, u128)> = (0..64).map(|i| (i as u128, (i as u128) << 64)).collect();
        let choices = vec![false; 64];
        let pairs_clone = pairs.clone();
        let t = std::thread::spawn(move || ot_send(&server, &snd_base, &pairs_clone).unwrap());
        let got = ot_receive(&client, &rcv_base, &choices).unwrap();
        t.join().unwrap();
        // Receiver got the m0 messages, never the m1s.
        for (j, g) in got.iter().enumerate() {
            assert_eq!(*g, j as u128);
        }
    }

    #[test]
    fn ot_traffic_is_dominated_by_u_matrix() {
        let mut dealer = Dealer::new(17);
        let (snd_base, rcv_base) = dealer.base_ots(KAPPA);
        let (client, server, counter) = channel_pair();
        let m = 1024usize;
        let pairs: Vec<(u128, u128)> = vec![(0, 1); m];
        let choices = vec![true; m];
        let t = std::thread::spawn(move || ot_send(&server, &snd_base, &pairs).unwrap());
        ot_receive(&client, &rcv_base, &choices).unwrap();
        t.join().unwrap();
        let snap = counter.snapshot();
        // u-matrix: 128 * m/8 bytes client→server; pads: 32·m server→client.
        assert_eq!(snap.bytes_client_to_server, (KAPPA * m.div_ceil(8)) as u64);
        assert_eq!(snap.bytes_server_to_client, (32 * m) as u64);
        assert_eq!(snap.round_trips(), 1);
    }

    #[test]
    fn bit_triples_satisfy_and_relation() {
        let mut dealer = Dealer::new(19);
        let (c_snd, s_rcv) = dealer.base_ots(KAPPA);
        let (s_snd, c_rcv) = dealer.base_ots(KAPPA);
        let (client, server, _) = channel_pair();
        let n = 500;
        let t = std::thread::spawn(move || {
            let mut prg = Prg::from_u64(100);
            gen_bit_triples(&server, false, &s_snd, &s_rcv, n, &mut prg).unwrap()
        });
        let mut prg = Prg::from_u64(200);
        let mine = gen_bit_triples(&client, true, &c_snd, &c_rcv, n, &mut prg).unwrap();
        let theirs = t.join().unwrap();
        let mut and_holds = 0usize;
        for i in 0..n {
            let a = mine.a[i] ^ theirs.a[i];
            let b = mine.b[i] ^ theirs.b[i];
            let c = mine.c[i] ^ theirs.c[i];
            assert_eq!(c, a & b, "triple {i}");
            and_holds += 1;
        }
        assert_eq!(and_holds, n);
        // Shares look random: both parties have a mix of 0s and 1s.
        assert!(mine.a.iter().any(|&x| x) && mine.a.iter().any(|&x| !x));
    }

    #[test]
    fn bit_triple_pool_take() {
        let mut t = BitTriples { a: vec![true; 10], b: vec![false; 10], c: vec![true; 10] };
        let first = t.take(4).unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(t.len(), 6);
        assert!(t.take(7).is_err());
    }

    #[test]
    fn wrong_base_ot_count_rejected() {
        let mut dealer = Dealer::new(23);
        let (snd, rcv) = dealer.base_ots(16); // too few
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || ot_send(&server, &snd, &[(0, 1)]).is_err());
        let r = ot_receive(&client, &rcv, &[true]);
        assert!(r.is_err());
        assert!(t.join().unwrap());
    }
}
