//! Trusted-dealer correlated randomness.
//!
//! A real Delphi deployment produces these correlations with
//! linearly homomorphic encryption in an input-independent offline phase;
//! Cheetah produces them with lattice HE. No HE crate exists in the
//! sanctioned offline set, so the dealer stands in for those offline
//! phases (DESIGN.md §3) — the PI engines charge the *modelled* offline
//! ciphertext traffic separately, while all online interaction runs for
//! real over the byte-counted channel.
//!
//! Every correlation is generated deterministically from the dealer seed
//! and split into a client half and a server half **before** the two
//! protocol threads start, so no hidden channel exists between parties.

use crate::prg::Prg;
use crate::ring::RingMatrix;
use crate::share::{share_secret, ShareVec};
use crate::Result;

/// A scalar/elementwise Beaver triple share: `(a, b, c)` with
/// `c = a·b` reconstructed across parties.
#[derive(Debug, Clone)]
pub struct TripleShare {
    /// Share of the `a` mask vector.
    pub a: ShareVec,
    /// Share of the `b` mask vector.
    pub b: ShareVec,
    /// Share of the product vector `c`.
    pub c: ShareVec,
}

/// One party's half of a masked-linear correlation for a *server-known*
/// matrix `W [m, k]` applied to a shared `[k, n]` input (the Delphi /
/// Cheetah linear-layer offline artifact).
///
/// Client half: the mask `A` and the share `c0`; server half: the share
/// `c1`, with `c0 + c1 = W·A`.
#[derive(Debug, Clone)]
pub struct LinearCorrClient {
    /// Random mask matrix `A [k, n]`, known only to the client.
    pub mask: RingMatrix,
    /// Client's share of `W·A`.
    pub wa_share: RingMatrix,
}

/// Server half of the masked-linear correlation.
#[derive(Debug, Clone)]
pub struct LinearCorrServer {
    /// Server's share of `W·A`.
    pub wa_share: RingMatrix,
}

/// Client half of an elementwise masked-affine correlation for a
/// server-known scale vector `s`: mask `a` plus a share of `s·a`.
#[derive(Debug, Clone)]
pub struct AffineCorrClient {
    /// Random mask vector, known only to the client.
    pub mask: Vec<u64>,
    /// Client's share of `s ⊙ a`.
    pub sa_share: ShareVec,
}

/// Server half of the masked-affine correlation.
#[derive(Debug, Clone)]
pub struct AffineCorrServer {
    /// Server's share of `s ⊙ a`.
    pub sa_share: ShareVec,
}

/// Base-OT material for the IKNP extension (the extension *sender*'s
/// side receives one seed per base OT, chosen by its selection bits).
#[derive(Debug, Clone)]
pub struct BaseOtSender {
    /// Selection bits `s_i`.
    pub choices: Vec<bool>,
    /// The chosen seeds `k_{s_i}`.
    pub seeds: Vec<[u8; 32]>,
}

/// Base-OT material for the extension *receiver*'s side (both seeds per
/// base OT).
#[derive(Debug, Clone)]
pub struct BaseOtReceiver {
    /// Seed pairs `(k0_i, k1_i)`.
    pub seed_pairs: Vec<([u8; 32], [u8; 32])>,
}

/// The trusted dealer.
#[derive(Debug)]
pub struct Dealer {
    prg: Prg,
}

impl Dealer {
    /// Creates a dealer from a seed. All correlations are deterministic
    /// in this seed.
    pub fn new(seed: u64) -> Self {
        Dealer { prg: Prg::from_u64(seed ^ 0xDEA1_DEA1_DEA1_DEA1) }
    }

    /// Generates `n` elementwise Beaver triples, returning the
    /// (client, server) halves.
    pub fn beaver_triples(&mut self, n: usize) -> (TripleShare, TripleShare) {
        let a: Vec<u64> = self.prg.next_u64s(n);
        let b: Vec<u64> = self.prg.next_u64s(n);
        let c: Vec<u64> = a.iter().zip(b.iter()).map(|(&x, &y)| x.wrapping_mul(y)).collect();
        let (a0, a1) = share_secret(&a, &mut self.prg);
        let (b0, b1) = share_secret(&b, &mut self.prg);
        let (c0, c1) = share_secret(&c, &mut self.prg);
        (TripleShare { a: a0, b: b0, c: c0 }, TripleShare { a: a1, b: b1, c: c1 })
    }

    /// Generates the masked-linear correlation for a server-known matrix
    /// `w [m, k]` and a shared input with `n` columns.
    ///
    /// # Errors
    ///
    /// Propagates ring-dimension errors (a bug in the caller's shapes).
    pub fn linear_corr(
        &mut self,
        w: &RingMatrix,
        n: usize,
    ) -> Result<(LinearCorrClient, LinearCorrServer)> {
        let k = w.cols();
        let mask = RingMatrix::from_vec(self.prg.next_u64s(k * n), k, n)?;
        let wa = w.matmul(&mask)?;
        let (c0, c1) = share_secret(wa.as_slice(), &mut self.prg);
        let wa0 = RingMatrix::from_vec(c0.into_raw(), w.rows(), n)?;
        let wa1 = RingMatrix::from_vec(c1.into_raw(), w.rows(), n)?;
        Ok((LinearCorrClient { mask, wa_share: wa0 }, LinearCorrServer { wa_share: wa1 }))
    }

    /// Generates the masked-affine correlation for a server-known scale
    /// vector (per-channel batch-norm folding, average-pool scaling).
    pub fn affine_corr(&mut self, scale: &[u64]) -> (AffineCorrClient, AffineCorrServer) {
        let mask: Vec<u64> = self.prg.next_u64s(scale.len());
        let sa: Vec<u64> =
            scale.iter().zip(mask.iter()).map(|(&s, &a)| s.wrapping_mul(a)).collect();
        let (c0, c1) = share_secret(&sa, &mut self.prg);
        (AffineCorrClient { mask, sa_share: c0 }, AffineCorrServer { sa_share: c1 })
    }

    /// Generates `kappa` base OTs for the IKNP extension. The extension
    /// sender (who will transmit extended messages) receives chosen
    /// seeds; the extension receiver holds both seeds per OT.
    pub fn base_ots(&mut self, kappa: usize) -> (BaseOtSender, BaseOtReceiver) {
        let mut choices = Vec::with_capacity(kappa);
        let mut chosen = Vec::with_capacity(kappa);
        let mut pairs = Vec::with_capacity(kappa);
        for _ in 0..kappa {
            let mut k0 = [0u8; 32];
            let mut k1 = [0u8; 32];
            self.prg.fill_bytes(&mut k0);
            self.prg.fill_bytes(&mut k1);
            let s = self.prg.next_bool();
            choices.push(s);
            chosen.push(if s { k1 } else { k0 });
            pairs.push((k0, k1));
        }
        (BaseOtSender { choices, seeds: chosen }, BaseOtReceiver { seed_pairs: pairs })
    }

    /// Forks an independent PRG off the dealer stream — the garbling
    /// randomness of an offline-garbled layer is drawn from such a
    /// fork, so dealing stays a pure function of the dealer seed while
    /// per-layer garbling can proceed without holding the dealer.
    pub fn fork_prg(&mut self) -> Prg {
        self.prg.fork()
    }

    /// Fresh shares of a uniformly random vector (used as re-masking
    /// randomness in layer hand-offs).
    pub fn random_shared(&mut self, n: usize) -> (ShareVec, ShareVec) {
        let secret: Vec<u64> = self.prg.next_u64s(n);
        share_secret(&secret, &mut self.prg)
    }

    /// Generates `n` boolean AND triples directly (the silent-OT /
    /// Ferret-style correlation used by the Cheetah-flavoured engine,
    /// whose online phase then only exchanges the GMW openings; the
    /// IKNP-generated alternative lives in [`crate::ot::gen_bit_triples`]
    /// and is benchmarked as an ablation).
    pub fn bit_triples(&mut self, n: usize) -> (crate::ot::BitTriples, crate::ot::BitTriples) {
        let mut gen_bits =
            |k: usize| -> Vec<bool> { (0..k).map(|_| self.prg.next_bool()).collect() };
        let a0 = gen_bits(n);
        let a1 = gen_bits(n);
        let b0 = gen_bits(n);
        let b1 = gen_bits(n);
        let c0 = gen_bits(n);
        let c1: Vec<bool> = (0..n).map(|i| ((a0[i] ^ a1[i]) & (b0[i] ^ b1[i])) ^ c0[i]).collect();
        (
            crate::ot::BitTriples { a: a0, b: b0, c: c0 },
            crate::ot::BitTriples { a: a1, b: b1, c: c1 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share::reconstruct;

    #[test]
    fn beaver_triples_satisfy_c_equals_ab() {
        let mut dealer = Dealer::new(1);
        let (t0, t1) = dealer.beaver_triples(32);
        let a = reconstruct(&t0.a, &t1.a);
        let b = reconstruct(&t0.b, &t1.b);
        let c = reconstruct(&t0.c, &t1.c);
        for i in 0..32 {
            assert_eq!(c[i], a[i].wrapping_mul(b[i]));
        }
    }

    #[test]
    fn triples_are_fresh_each_call() {
        let mut dealer = Dealer::new(2);
        let (x0, _) = dealer.beaver_triples(4);
        let (y0, _) = dealer.beaver_triples(4);
        assert_ne!(x0.a.as_raw(), y0.a.as_raw());
    }

    #[test]
    fn linear_corr_reconstructs_to_w_times_mask() {
        let mut dealer = Dealer::new(3);
        let mut prg = Prg::from_u64(9);
        let w = RingMatrix::from_vec(prg.next_u64s(6), 2, 3).unwrap();
        let (cl, sv) = dealer.linear_corr(&w, 4).unwrap();
        let wa = w.matmul(&cl.mask).unwrap();
        let got = reconstruct(
            &ShareVec::from_raw(cl.wa_share.as_slice().to_vec()),
            &ShareVec::from_raw(sv.wa_share.as_slice().to_vec()),
        );
        assert_eq!(got, wa.as_slice());
    }

    #[test]
    fn base_ots_are_consistent() {
        let mut dealer = Dealer::new(4);
        let (snd, rcv) = dealer.base_ots(128);
        assert_eq!(snd.choices.len(), 128);
        for i in 0..128 {
            let expect = if snd.choices[i] { rcv.seed_pairs[i].1 } else { rcv.seed_pairs[i].0 };
            assert_eq!(snd.seeds[i], expect);
        }
        // Both choice values appear (overwhelmingly likely).
        assert!(snd.choices.iter().any(|&c| c));
        assert!(snd.choices.iter().any(|&c| !c));
    }

    #[test]
    fn random_shared_reconstructs_uniform() {
        let mut dealer = Dealer::new(5);
        let (r0, r1) = dealer.random_shared(64);
        let r = reconstruct(&r0, &r1);
        // Not all equal (overwhelmingly likely for uniform).
        assert!(r.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn dealer_is_deterministic_in_seed() {
        let (a0, _) = Dealer::new(7).beaver_triples(4);
        let (b0, _) = Dealer::new(7).beaver_triples(4);
        assert_eq!(a0.a.as_raw(), b0.a.as_raw());
    }
}
