//! Trusted-dealer correlated randomness.
//!
//! A real Delphi deployment produces these correlations with
//! linearly homomorphic encryption in an input-independent offline phase;
//! Cheetah produces them with lattice HE. No HE crate exists in the
//! sanctioned offline set, so the dealer stands in for those offline
//! phases (DESIGN.md §3) — the PI engines charge the *modelled* offline
//! ciphertext traffic separately, while all online interaction runs for
//! real over the byte-counted channel.
//!
//! Every correlation is generated deterministically from the dealer seed
//! and split into a client half and a server half **before** the two
//! protocol threads start, so no hidden channel exists between parties.

use crate::prg::Prg;
use crate::ring::RingMatrix;
use crate::share::{share_secret, ShareVec};
use crate::{MpcError, Result};

/// The compact artifact a seed-compressed dealer actually ships per
/// inference: a PRG seed, a session nonce and the per-step item counts
/// the expansion will walk. Both parties expand their
/// correlated-randomness halves locally from the same `DealtSeed`
/// (deterministically, via [`Dealer::for_dealt`]), so the dealt bytes on
/// the wire are this struct's encoding — tens to hundreds of bytes —
/// instead of the megabytes of expanded triples, labels and tables.
///
/// The nonce is a fingerprint of the deployment (backend, plan shape,
/// master configuration) mixed into the expansion PRG: the same 64-bit
/// seed dealt under two different deployments expands to unrelated
/// correlations, so persisted seeds cannot be replayed across sessions.
/// The step metadata lets the receiving party validate that the peer's
/// plan shape matches its own before expanding anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DealtSeed {
    /// Per-inference PRG seed both parties expand locally.
    pub seed: u64,
    /// Session nonce (deployment fingerprint) domain-separating the
    /// expansion — see the type docs.
    pub nonce: u64,
    /// Per-step `(kind, items)` metadata of the plan the expansion
    /// walks.
    pub steps: Vec<(u8, u32)>,
}

const DEALT_MAGIC: u16 = 0xD517;
const DEALT_VERSION: u8 = 1;
/// Fixed wire overhead of [`DealtSeed::encode`]: magic, version,
/// reserved byte, seed, nonce, step count.
const DEALT_HEADER_BYTES: usize = 2 + 1 + 1 + 8 + 8 + 2;

impl DealtSeed {
    /// Serializes to the wire format (little-endian, versioned).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes() as usize);
        out.extend_from_slice(&DEALT_MAGIC.to_le_bytes());
        out.push(DEALT_VERSION);
        out.push(0);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&(self.steps.len() as u16).to_le_bytes());
        for &(kind, items) in &self.steps {
            out.push(kind);
            out.extend_from_slice(&items.to_le_bytes());
        }
        out
    }

    /// Parses the wire format produced by [`DealtSeed::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::Protocol`] for truncated, oversized or
    /// wrong-version input.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let fail = |why: &str| MpcError::Protocol(format!("dealt seed: {why}"));
        if bytes.len() < DEALT_HEADER_BYTES {
            return Err(fail("truncated header"));
        }
        if u16::from_le_bytes([bytes[0], bytes[1]]) != DEALT_MAGIC {
            return Err(fail("bad magic"));
        }
        if bytes[2] != DEALT_VERSION {
            return Err(fail("unsupported version"));
        }
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[4..12]);
        let seed = u64::from_le_bytes(w);
        w.copy_from_slice(&bytes[12..20]);
        let nonce = u64::from_le_bytes(w);
        let count = u16::from_le_bytes([bytes[20], bytes[21]]) as usize;
        if bytes.len() != DEALT_HEADER_BYTES + 5 * count {
            return Err(fail("step metadata length mismatch"));
        }
        let mut steps = Vec::with_capacity(count);
        for i in 0..count {
            let at = DEALT_HEADER_BYTES + 5 * i;
            let mut items = [0u8; 4];
            items.copy_from_slice(&bytes[at + 1..at + 5]);
            steps.push((bytes[at], u32::from_le_bytes(items)));
        }
        Ok(DealtSeed { seed, nonce, steps })
    }

    /// Size of the encoded form — the bytes a seed-compressed dealer
    /// actually ships per inference.
    pub fn wire_bytes(&self) -> u64 {
        (DEALT_HEADER_BYTES + 5 * self.steps.len()) as u64
    }
}

/// A scalar/elementwise Beaver triple share: `(a, b, c)` with
/// `c = a·b` reconstructed across parties.
#[derive(Debug, Clone)]
pub struct TripleShare {
    /// Share of the `a` mask vector.
    pub a: ShareVec,
    /// Share of the `b` mask vector.
    pub b: ShareVec,
    /// Share of the product vector `c`.
    pub c: ShareVec,
}

/// One party's half of a masked-linear correlation for a *server-known*
/// matrix `W [m, k]` applied to a shared `[k, n]` input (the Delphi /
/// Cheetah linear-layer offline artifact).
///
/// Client half: the mask `A` and the share `c0`; server half: the share
/// `c1`, with `c0 + c1 = W·A`.
#[derive(Debug, Clone)]
pub struct LinearCorrClient {
    /// Random mask matrix `A [k, n]`, known only to the client.
    pub mask: RingMatrix,
    /// Client's share of `W·A`.
    pub wa_share: RingMatrix,
}

/// Server half of the masked-linear correlation.
#[derive(Debug, Clone)]
pub struct LinearCorrServer {
    /// Server's share of `W·A`.
    pub wa_share: RingMatrix,
}

/// Client half of an elementwise masked-affine correlation for a
/// server-known scale vector `s`: mask `a` plus a share of `s·a`.
#[derive(Debug, Clone)]
pub struct AffineCorrClient {
    /// Random mask vector, known only to the client.
    pub mask: Vec<u64>,
    /// Client's share of `s ⊙ a`.
    pub sa_share: ShareVec,
}

/// Server half of the masked-affine correlation.
#[derive(Debug, Clone)]
pub struct AffineCorrServer {
    /// Server's share of `s ⊙ a`.
    pub sa_share: ShareVec,
}

/// Base-OT material for the IKNP extension (the extension *sender*'s
/// side receives one seed per base OT, chosen by its selection bits).
#[derive(Debug, Clone)]
pub struct BaseOtSender {
    /// Selection bits `s_i`.
    pub choices: Vec<bool>,
    /// The chosen seeds `k_{s_i}`.
    pub seeds: Vec<[u8; 32]>,
}

/// Base-OT material for the extension *receiver*'s side (both seeds per
/// base OT).
#[derive(Debug, Clone)]
pub struct BaseOtReceiver {
    /// Seed pairs `(k0_i, k1_i)`.
    pub seed_pairs: Vec<([u8; 32], [u8; 32])>,
}

/// The trusted dealer.
///
/// Alongside generating correlations, the dealer tallies how many bytes
/// the generated material occupies in expanded form ([`Dealer::expanded_bytes`]).
/// Under seed-compressed dealing nothing of that size ever crosses the
/// wire — the tally is what the pre-compression dealer *would* have
/// shipped, and the ledger/cost model report it next to the actual
/// [`DealtSeed`] wire bytes.
#[derive(Debug)]
pub struct Dealer {
    prg: Prg,
    expanded: u64,
}

impl Dealer {
    /// Creates a dealer from a seed. All correlations are deterministic
    /// in this seed.
    pub fn new(seed: u64) -> Self {
        Dealer { prg: Prg::from_u64(seed ^ 0xDEA1_DEA1_DEA1_DEA1), expanded: 0 }
    }

    /// Creates the expansion dealer for a [`DealtSeed`]: the PRG key
    /// mixes the per-inference seed with a fixed domain label, and the
    /// session nonce enters as the stream nonce — so equal seeds under
    /// different deployments (different nonce) expand to unrelated
    /// correlations.
    pub fn for_dealt(dealt: &DealtSeed) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&dealt.seed.to_le_bytes());
        key[8..24].copy_from_slice(b"c2pi/dealt-seed!");
        Dealer { prg: Prg::from_seed_nonce(key, dealt.nonce), expanded: 0 }
    }

    /// Records `bytes` of expanded material generated outside the
    /// dealer's own methods (e.g. pre-garbled tables drawn from a
    /// [`Dealer::fork_prg`] stream).
    pub fn note_expanded(&mut self, bytes: u64) {
        self.expanded += bytes;
    }

    /// Total bytes the correlations generated so far occupy expanded —
    /// what dealing would have shipped without seed compression.
    pub fn expanded_bytes(&self) -> u64 {
        self.expanded
    }

    /// Generates `n` elementwise Beaver triples, returning the
    /// (client, server) halves.
    pub fn beaver_triples(&mut self, n: usize) -> (TripleShare, TripleShare) {
        // Six share vectors of n words across the two halves.
        self.expanded += 48 * n as u64;
        let a: Vec<u64> = self.prg.next_u64s(n);
        let b: Vec<u64> = self.prg.next_u64s(n);
        let c: Vec<u64> = a.iter().zip(b.iter()).map(|(&x, &y)| x.wrapping_mul(y)).collect();
        let (a0, a1) = share_secret(&a, &mut self.prg);
        let (b0, b1) = share_secret(&b, &mut self.prg);
        let (c0, c1) = share_secret(&c, &mut self.prg);
        (TripleShare { a: a0, b: b0, c: c0 }, TripleShare { a: a1, b: b1, c: c1 })
    }

    /// Generates the masked-linear correlation for a server-known matrix
    /// `w [m, k]` and a shared input with `n` columns.
    ///
    /// # Errors
    ///
    /// Propagates ring-dimension errors (a bug in the caller's shapes).
    pub fn linear_corr(
        &mut self,
        w: &RingMatrix,
        n: usize,
    ) -> Result<(LinearCorrClient, LinearCorrServer)> {
        let k = w.cols();
        // Mask A [k, n] plus the two W·A shares [m, n].
        self.expanded += 8 * (k * n + 2 * w.rows() * n) as u64;
        let mask = RingMatrix::from_vec(self.prg.next_u64s(k * n), k, n)?;
        let wa = w.matmul(&mask)?;
        let (c0, c1) = share_secret(wa.as_slice(), &mut self.prg);
        let wa0 = RingMatrix::from_vec(c0.into_raw(), w.rows(), n)?;
        let wa1 = RingMatrix::from_vec(c1.into_raw(), w.rows(), n)?;
        Ok((LinearCorrClient { mask, wa_share: wa0 }, LinearCorrServer { wa_share: wa1 }))
    }

    /// Generates the masked-affine correlation for a server-known scale
    /// vector (per-channel batch-norm folding, average-pool scaling).
    pub fn affine_corr(&mut self, scale: &[u64]) -> (AffineCorrClient, AffineCorrServer) {
        // Mask plus the two s⊙a shares.
        self.expanded += 24 * scale.len() as u64;
        let mask: Vec<u64> = self.prg.next_u64s(scale.len());
        let sa: Vec<u64> =
            scale.iter().zip(mask.iter()).map(|(&s, &a)| s.wrapping_mul(a)).collect();
        let (c0, c1) = share_secret(&sa, &mut self.prg);
        (AffineCorrClient { mask, sa_share: c0 }, AffineCorrServer { sa_share: c1 })
    }

    /// Generates `kappa` base OTs for the IKNP extension. The extension
    /// sender (who will transmit extended messages) receives chosen
    /// seeds; the extension receiver holds both seeds per OT.
    pub fn base_ots(&mut self, kappa: usize) -> (BaseOtSender, BaseOtReceiver) {
        // Chosen seeds (32κ), seed pairs (64κ) and the choice bits.
        self.expanded += 96 * kappa as u64 + kappa.div_ceil(8) as u64;
        let mut choices = Vec::with_capacity(kappa);
        let mut chosen = Vec::with_capacity(kappa);
        let mut pairs = Vec::with_capacity(kappa);
        for _ in 0..kappa {
            let mut k0 = [0u8; 32];
            let mut k1 = [0u8; 32];
            self.prg.fill_bytes(&mut k0);
            self.prg.fill_bytes(&mut k1);
            let s = self.prg.next_bool();
            choices.push(s);
            chosen.push(if s { k1 } else { k0 });
            pairs.push((k0, k1));
        }
        (BaseOtSender { choices, seeds: chosen }, BaseOtReceiver { seed_pairs: pairs })
    }

    /// Forks an independent PRG off the dealer stream — the garbling
    /// randomness of an offline-garbled layer is drawn from such a
    /// fork, so dealing stays a pure function of the dealer seed while
    /// per-layer garbling can proceed without holding the dealer.
    pub fn fork_prg(&mut self) -> Prg {
        self.prg.fork()
    }

    /// Fresh shares of a uniformly random vector (used as re-masking
    /// randomness in layer hand-offs).
    pub fn random_shared(&mut self, n: usize) -> (ShareVec, ShareVec) {
        // Two share vectors of n words.
        self.expanded += 16 * n as u64;
        let secret: Vec<u64> = self.prg.next_u64s(n);
        share_secret(&secret, &mut self.prg)
    }

    /// Generates `n` boolean AND triples directly (the silent-OT /
    /// Ferret-style correlation used by the Cheetah-flavoured engine,
    /// whose online phase then only exchanges the GMW openings; the
    /// IKNP-generated alternative lives in [`crate::ot::gen_bit_triples`]
    /// and is benchmarked as an ablation).
    pub fn bit_triples(&mut self, n: usize) -> (crate::ot::BitTriples, crate::ot::BitTriples) {
        // Six bit vectors, bit-packed.
        self.expanded += (6 * n).div_ceil(8) as u64;
        let mut gen_bits =
            |k: usize| -> Vec<bool> { (0..k).map(|_| self.prg.next_bool()).collect() };
        let a0 = gen_bits(n);
        let a1 = gen_bits(n);
        let b0 = gen_bits(n);
        let b1 = gen_bits(n);
        let c0 = gen_bits(n);
        let c1: Vec<bool> = (0..n).map(|i| ((a0[i] ^ a1[i]) & (b0[i] ^ b1[i])) ^ c0[i]).collect();
        (
            crate::ot::BitTriples { a: a0, b: b0, c: c0 },
            crate::ot::BitTriples { a: a1, b: b1, c: c1 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::share::reconstruct;

    #[test]
    fn beaver_triples_satisfy_c_equals_ab() {
        let mut dealer = Dealer::new(1);
        let (t0, t1) = dealer.beaver_triples(32);
        let a = reconstruct(&t0.a, &t1.a);
        let b = reconstruct(&t0.b, &t1.b);
        let c = reconstruct(&t0.c, &t1.c);
        for i in 0..32 {
            assert_eq!(c[i], a[i].wrapping_mul(b[i]));
        }
    }

    #[test]
    fn triples_are_fresh_each_call() {
        let mut dealer = Dealer::new(2);
        let (x0, _) = dealer.beaver_triples(4);
        let (y0, _) = dealer.beaver_triples(4);
        assert_ne!(x0.a.as_raw(), y0.a.as_raw());
    }

    #[test]
    fn linear_corr_reconstructs_to_w_times_mask() {
        let mut dealer = Dealer::new(3);
        let mut prg = Prg::from_u64(9);
        let w = RingMatrix::from_vec(prg.next_u64s(6), 2, 3).unwrap();
        let (cl, sv) = dealer.linear_corr(&w, 4).unwrap();
        let wa = w.matmul(&cl.mask).unwrap();
        let got = reconstruct(
            &ShareVec::from_raw(cl.wa_share.as_slice().to_vec()),
            &ShareVec::from_raw(sv.wa_share.as_slice().to_vec()),
        );
        assert_eq!(got, wa.as_slice());
    }

    #[test]
    fn base_ots_are_consistent() {
        let mut dealer = Dealer::new(4);
        let (snd, rcv) = dealer.base_ots(128);
        assert_eq!(snd.choices.len(), 128);
        for i in 0..128 {
            let expect = if snd.choices[i] { rcv.seed_pairs[i].1 } else { rcv.seed_pairs[i].0 };
            assert_eq!(snd.seeds[i], expect);
        }
        // Both choice values appear (overwhelmingly likely).
        assert!(snd.choices.iter().any(|&c| c));
        assert!(snd.choices.iter().any(|&c| !c));
    }

    #[test]
    fn random_shared_reconstructs_uniform() {
        let mut dealer = Dealer::new(5);
        let (r0, r1) = dealer.random_shared(64);
        let r = reconstruct(&r0, &r1);
        // Not all equal (overwhelmingly likely for uniform).
        assert!(r.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn dealer_is_deterministic_in_seed() {
        let (a0, _) = Dealer::new(7).beaver_triples(4);
        let (b0, _) = Dealer::new(7).beaver_triples(4);
        assert_eq!(a0.a.as_raw(), b0.a.as_raw());
    }

    fn sample_dealt() -> DealtSeed {
        DealtSeed { seed: 41, nonce: 0xFEED_F00D, steps: vec![(1, 108), (3, 72), (6, 0)] }
    }

    #[test]
    fn dealt_seed_roundtrips_and_stays_compact() {
        let ds = sample_dealt();
        let wire = ds.encode();
        assert_eq!(wire.len() as u64, ds.wire_bytes());
        assert!(wire.len() < 100, "dealt seed should be tens of bytes, got {}", wire.len());
        assert_eq!(DealtSeed::decode(&wire).unwrap(), ds);
    }

    #[test]
    fn dealt_seed_decode_rejects_malformed_input() {
        let wire = sample_dealt().encode();
        assert!(DealtSeed::decode(&wire[..10]).is_err(), "truncated header");
        assert!(DealtSeed::decode(&wire[..wire.len() - 1]).is_err(), "truncated steps");
        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xFF;
        assert!(DealtSeed::decode(&bad_magic).is_err(), "bad magic");
        let mut bad_version = wire.clone();
        bad_version[2] += 1;
        assert!(DealtSeed::decode(&bad_version).is_err(), "bad version");
    }

    #[test]
    fn for_dealt_is_deterministic_and_nonce_separated() {
        let ds = sample_dealt();
        let (a0, _) = Dealer::for_dealt(&ds).beaver_triples(8);
        let (b0, _) = Dealer::for_dealt(&ds).beaver_triples(8);
        assert_eq!(a0.a.as_raw(), b0.a.as_raw(), "same dealt seed must expand identically");
        let other = DealtSeed { nonce: ds.nonce ^ 1, ..ds };
        let (c0, _) = Dealer::for_dealt(&other).beaver_triples(8);
        assert_ne!(a0.a.as_raw(), c0.a.as_raw(), "nonce must domain-separate expansion");
    }

    #[test]
    fn expanded_bytes_tally_what_dealing_would_have_shipped() {
        let mut dealer = Dealer::new(11);
        assert_eq!(dealer.expanded_bytes(), 0);
        dealer.beaver_triples(10);
        assert_eq!(dealer.expanded_bytes(), 480);
        dealer.base_ots(128);
        assert_eq!(dealer.expanded_bytes(), 480 + 96 * 128 + 16);
        dealer.note_expanded(1000);
        assert_eq!(dealer.expanded_bytes(), 480 + 96 * 128 + 16 + 1000);
    }
}
