//! Arithmetic secure computation over `Z_2^64`: Beaver-triple
//! multiplication, the masked linear-layer protocol, boolean→arithmetic
//! conversion and share truncation.

use crate::dealer::{LinearCorrClient, LinearCorrServer, TripleShare};
use crate::fixed::FixedPoint;
use crate::gmw::BitShareVec;
use crate::ring::RingMatrix;
use crate::share::ShareVec;
use crate::{MpcError, Result};
use c2pi_transport::Channel;

/// Batched secure elementwise multiplication of two additively shared
/// vectors using Beaver triples. One simultaneous exchange of the opened
/// `d = x−a`, `e = y−b` values.
///
/// `is_initiator` breaks the symmetry (the initiator adds the public
/// `d·e` term); parties pass opposite values.
///
/// # Errors
///
/// Returns transport errors or length mismatches.
pub fn mul_elementwise<C: Channel + ?Sized>(
    ep: &C,
    is_initiator: bool,
    x: &ShareVec,
    y: &ShareVec,
    triple: &TripleShare,
) -> Result<ShareVec> {
    let n = x.len();
    if y.len() != n || triple.a.len() != n || triple.b.len() != n || triple.c.len() != n {
        return Err(MpcError::BadConfig(format!(
            "mul_elementwise lengths: x={} y={} triple={}",
            n,
            y.len(),
            triple.a.len()
        )));
    }
    let d_share = x.sub(&triple.a);
    let e_share = y.sub(&triple.b);
    let mut opened = Vec::with_capacity(2 * n);
    opened.extend_from_slice(d_share.as_raw());
    opened.extend_from_slice(e_share.as_raw());
    let peer;
    if is_initiator {
        ep.send_u64s(&opened)?;
        peer = ep.recv_u64s()?;
    } else {
        peer = ep.recv_u64s()?;
        ep.send_u64s(&opened)?;
    }
    if peer.len() != 2 * n {
        return Err(MpcError::Protocol(format!(
            "expected {} opened values, got {}",
            2 * n,
            peer.len()
        )));
    }
    let mut z = Vec::with_capacity(n);
    for i in 0..n {
        let d = opened[i].wrapping_add(peer[i]);
        let e = opened[n + i].wrapping_add(peer[n + i]);
        // z = c + d·b + e·a (+ d·e once).
        let mut zi = triple.c.as_raw()[i]
            .wrapping_add(d.wrapping_mul(triple.b.as_raw()[i]))
            .wrapping_add(e.wrapping_mul(triple.a.as_raw()[i]));
        if is_initiator {
            zi = zi.wrapping_add(d.wrapping_mul(e));
        }
        z.push(zi);
    }
    Ok(ShareVec::from_raw(z))
}

/// Client side of the masked linear-layer protocol (Delphi/Cheetah
/// online phase): sends `X₀ − A` in one flight and keeps `share(W·A)` as
/// its output share.
///
/// # Errors
///
/// Returns transport errors or shape mismatches.
pub fn linear_client<C: Channel + ?Sized>(
    ep: &C,
    x0: &RingMatrix,
    corr: &LinearCorrClient,
) -> Result<RingMatrix> {
    let masked = x0.sub(&corr.mask)?;
    ep.send_u64s(masked.as_slice())?;
    Ok(corr.wa_share.clone())
}

/// Server side of the masked linear-layer protocol: receives `X₀ − A`,
/// computes `W·(X₀ − A) + W·X₁ + share(W·A)` as its output share.
///
/// # Errors
///
/// Returns transport errors or shape mismatches.
pub fn linear_server<C: Channel + ?Sized>(
    ep: &C,
    w: &RingMatrix,
    x1: &RingMatrix,
    corr: &LinearCorrServer,
) -> Result<RingMatrix> {
    let raw = ep.recv_u64s()?;
    let masked = RingMatrix::from_vec(raw, x1.rows(), x1.cols())?;
    let wd = w.matmul(&masked)?;
    let wx1 = w.matmul(x1)?;
    wd.add(&wx1)?.add(&corr.wa_share)
}

/// Server side of the masked linear protocol **fused over a batch of
/// clients** sharing one weight matrix: receives each member's
/// `X₀ − A` flight (one per member, exactly as unbatched), column-stacks
/// the batch and runs **one** wide `W·[·|·|…]` product instead of `k`
/// narrow ones, then splits the columns back and adds each member's own
/// `share(W·Aᵢ)`.
///
/// Ring matmul accumulates every output column independently (and
/// wrapping `u64` addition is exact), so each member's output share is
/// bit-for-bit what [`linear_server`] would have produced — batching
/// changes the compute schedule, never the bytes.
///
/// # Errors
///
/// Returns transport errors or shape mismatches; the per-member slices
/// must have equal length.
pub fn linear_server_batch<C: Channel + ?Sized>(
    eps: &[&C],
    w: &RingMatrix,
    x1s: &[RingMatrix],
    corrs: &[&LinearCorrServer],
) -> Result<Vec<RingMatrix>> {
    let k = eps.len();
    if x1s.len() != k || corrs.len() != k || k == 0 {
        return Err(MpcError::BadConfig(format!(
            "linear_server_batch over {k} channels, {} shares, {} correlations",
            x1s.len(),
            corrs.len()
        )));
    }
    let mut maskeds = Vec::with_capacity(k);
    for (ep, x1) in eps.iter().zip(x1s) {
        let raw = ep.recv_u64s()?;
        maskeds.push(RingMatrix::from_vec(raw, x1.rows(), x1.cols())?);
    }
    let widths: Vec<usize> = x1s.iter().map(RingMatrix::cols).collect();
    let masked_refs: Vec<&RingMatrix> = maskeds.iter().collect();
    let x1_refs: Vec<&RingMatrix> = x1s.iter().collect();
    let wd = w.matmul(&RingMatrix::hstack(&masked_refs)?)?;
    let wx1 = w.matmul(&RingMatrix::hstack(&x1_refs)?)?;
    let fused = wd.add(&wx1)?;
    fused
        .split_cols(&widths)?
        .into_iter()
        .zip(corrs)
        .map(|(y, corr)| y.add(&corr.wa_share))
        .collect()
}

/// Client side of the masked elementwise affine protocol (server-known
/// scale `s` applied to a shared vector): sends `x₀ − a` and keeps its
/// share of `s⊙a`.
///
/// # Errors
///
/// Returns transport errors or length mismatches.
pub fn affine_client<C: Channel + ?Sized>(
    ep: &C,
    x0: &ShareVec,
    corr: &crate::dealer::AffineCorrClient,
) -> Result<ShareVec> {
    if corr.mask.len() != x0.len() {
        return Err(MpcError::BadConfig("affine correlation length mismatch".into()));
    }
    let masked: Vec<u64> =
        x0.as_raw().iter().zip(corr.mask.iter()).map(|(&x, &a)| x.wrapping_sub(a)).collect();
    ep.send_u64s(&masked)?;
    Ok(corr.sa_share.clone())
}

/// Server side of the masked elementwise affine protocol: receives
/// `x₀ − a`, outputs `s⊙(x₀−a) + s⊙x₁ + share(s⊙a)`.
///
/// # Errors
///
/// Returns transport errors or length mismatches.
pub fn affine_server<C: Channel + ?Sized>(
    ep: &C,
    scale: &[u64],
    x1: &ShareVec,
    corr: &crate::dealer::AffineCorrServer,
) -> Result<ShareVec> {
    let masked = ep.recv_u64s()?;
    if masked.len() != x1.len() || scale.len() != x1.len() {
        return Err(MpcError::Protocol("affine frame length mismatch".into()));
    }
    let out: Vec<u64> = (0..x1.len())
        .map(|i| {
            scale[i]
                .wrapping_mul(masked[i].wrapping_add(x1.as_raw()[i]))
                .wrapping_add(corr.sa_share.as_raw()[i])
        })
        .collect();
    Ok(ShareVec::from_raw(out))
}

/// Probabilistic local truncation (SecureML style): each party shifts
/// its share by `frac_bits`; the reconstructed value equals the truly
/// truncated value up to ±1 LSB except with probability `|x| / 2^64`.
///
/// The client shifts its share as an unsigned value; the server negates,
/// shifts, and negates back. Both operations are local (no traffic).
pub fn truncate_share(share: &ShareVec, is_client: bool, fp: FixedPoint) -> ShareVec {
    let f = fp.frac_bits();
    let out: Vec<u64> = share
        .as_raw()
        .iter()
        .map(|&s| if is_client { s >> f } else { (s.wrapping_neg() >> f).wrapping_neg() })
        .collect();
    ShareVec::from_raw(out)
}

/// Boolean→arithmetic share conversion for a batch of XOR-shared bits:
/// returns additive shares of each bit's value in `Z_2^64` using
/// `b = b₀ + b₁ − 2·b₀·b₁`, with the cross term from one Beaver
/// multiplication (each party's private bit enters as a degenerate
/// additive sharing).
///
/// # Errors
///
/// Returns transport errors or length mismatches.
pub fn b2a<C: Channel + ?Sized>(
    ep: &C,
    is_initiator: bool,
    bits: &BitShareVec,
    triple: &TripleShare,
) -> Result<ShareVec> {
    let n = bits.len();
    let mine: Vec<u64> = bits.0.iter().map(|&b| b as u64).collect();
    // Degenerate sharings: initiator's bit is x = (mine, 0); peer's bit
    // is y = (0, theirs). Both parties call with the same convention.
    let x = if is_initiator {
        ShareVec::from_raw(mine.clone())
    } else {
        ShareVec::from_raw(vec![0u64; n])
    };
    let y = if is_initiator {
        ShareVec::from_raw(vec![0u64; n])
    } else {
        ShareVec::from_raw(mine.clone())
    };
    let cross = mul_elementwise(ep, is_initiator, &x, &y, triple)?;
    // b_arith share = own bit − 2·cross_share.
    let out: Vec<u64> = mine
        .iter()
        .zip(cross.as_raw().iter())
        .map(|(&b, &c)| b.wrapping_sub(c.wrapping_mul(2)))
        .collect();
    Ok(ShareVec::from_raw(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::Dealer;
    use crate::prg::Prg;
    use crate::share::{reconstruct, share_secret};
    use c2pi_transport::channel_pair;

    #[test]
    fn beaver_multiplication_is_correct() {
        let mut dealer = Dealer::new(51);
        let n = 64;
        let (t0, t1) = dealer.beaver_triples(n);
        let mut prg = Prg::from_u64(3);
        let x: Vec<u64> = prg.next_u64s(n);
        let y: Vec<u64> = prg.next_u64s(n);
        let (x0, x1) = share_secret(&x, &mut prg);
        let (y0, y1) = share_secret(&y, &mut prg);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || mul_elementwise(&server, false, &x1, &y1, &t1).unwrap());
        let z0 = mul_elementwise(&client, true, &x0, &y0, &t0).unwrap();
        let z1 = t.join().unwrap();
        let z = reconstruct(&z0, &z1);
        for i in 0..n {
            assert_eq!(z[i], x[i].wrapping_mul(y[i]), "element {i}");
        }
    }

    #[test]
    fn beaver_fixed_point_products_truncate_correctly() {
        let fp = FixedPoint::default();
        let mut dealer = Dealer::new(52);
        let vals_x = [1.5f32, -2.0, 0.25, -0.75, 3.0];
        let vals_y = [2.0f32, 1.5, -4.0, -2.0, 0.5];
        let n = vals_x.len();
        let (t0, t1) = dealer.beaver_triples(n);
        let x: Vec<u64> = vals_x.iter().map(|&v| fp.encode(v)).collect();
        let y: Vec<u64> = vals_y.iter().map(|&v| fp.encode(v)).collect();
        let mut prg = Prg::from_u64(4);
        let (x0, x1) = share_secret(&x, &mut prg);
        let (y0, y1) = share_secret(&y, &mut prg);
        let (client, server, _) = channel_pair();
        let t = std::thread::spawn(move || {
            let z1 = mul_elementwise(&server, false, &x1, &y1, &t1).unwrap();
            truncate_share(&z1, false, fp)
        });
        let z0 = mul_elementwise(&client, true, &x0, &y0, &t0).unwrap();
        let z0 = truncate_share(&z0, true, fp);
        let z1 = t.join().unwrap();
        let z = reconstruct(&z0, &z1);
        for i in 0..n {
            let got = fp.decode(z[i]);
            let want = vals_x[i] * vals_y[i];
            assert!((got - want).abs() < 0.01, "element {i}: {got} vs {want}");
        }
    }

    #[test]
    fn truncation_error_is_at_most_one_lsb() {
        let fp = FixedPoint::default();
        let mut prg = Prg::from_u64(5);
        let mut max_err = 0i64;
        for trial in 0..2000 {
            let v = ((trial as i64) - 1000) * 12345; // scaled values, both signs
            let secret = vec![(v as u64).wrapping_mul(1 << fp.frac_bits())];
            let (s0, s1) = share_secret(&secret, &mut prg);
            let t0 = truncate_share(&s0, true, fp);
            let t1 = truncate_share(&s1, false, fp);
            let got = reconstruct(&t0, &t1)[0] as i64;
            max_err = max_err.max((got - v).abs());
        }
        assert!(max_err <= 1, "max truncation error {max_err}");
    }

    #[test]
    fn masked_linear_computes_w_times_x() {
        let mut dealer = Dealer::new(53);
        let mut prg = Prg::from_u64(6);
        let (m, k, n) = (3, 4, 5);
        let w = RingMatrix::from_vec(prg.next_u64s(m * k), m, k).unwrap();
        let x: Vec<u64> = prg.next_u64s(k * n);
        let (x0, x1) = share_secret(&x, &mut prg);
        let x0m = RingMatrix::from_vec(x0.into_raw(), k, n).unwrap();
        let x1m = RingMatrix::from_vec(x1.into_raw(), k, n).unwrap();
        let (corr_c, corr_s) = dealer.linear_corr(&w, n).unwrap();
        let (client, server, counter) = channel_pair();
        let w_clone = w.clone();
        let t =
            std::thread::spawn(move || linear_server(&server, &w_clone, &x1m, &corr_s).unwrap());
        let y0 = linear_client(&client, &x0m, &corr_c).unwrap();
        let y1 = t.join().unwrap();
        let y = reconstruct(
            &ShareVec::from_raw(y0.as_slice().to_vec()),
            &ShareVec::from_raw(y1.as_slice().to_vec()),
        );
        let expect = w.matmul(&RingMatrix::from_vec(x, k, n).unwrap()).unwrap();
        assert_eq!(y, expect.as_slice());
        // Exactly one client→server flight of k·n ring elements.
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_client_to_server, (k * n * 8) as u64);
        assert_eq!(snap.bytes_server_to_client, 0);
        assert_eq!(snap.flights, 1);
    }

    #[test]
    fn batched_linear_server_is_bit_identical_to_per_member_runs() {
        let (m, k, n, batch) = (3, 4, 2, 3);
        let mut dealer = Dealer::new(57);
        let mut prg = Prg::from_u64(8);
        let w = RingMatrix::from_vec(prg.next_u64s(m * k), m, k).unwrap();
        let mut corr_cs = Vec::new();
        let mut corr_ss = Vec::new();
        let mut x0s = Vec::new();
        let mut x1s = Vec::new();
        for _ in 0..batch {
            let (cc, cs) = dealer.linear_corr(&w, n).unwrap();
            corr_cs.push(cc);
            corr_ss.push(cs);
            let x: Vec<u64> = prg.next_u64s(k * n);
            let (x0, x1) = share_secret(&x, &mut prg);
            x0s.push(RingMatrix::from_vec(x0.into_raw(), k, n).unwrap());
            x1s.push(RingMatrix::from_vec(x1.into_raw(), k, n).unwrap());
        }
        // Reference: each member served by the unbatched server over its
        // own replayed flight.
        let mut want = Vec::new();
        for i in 0..batch {
            let (client, server, _) = channel_pair();
            linear_client(&client, &x0s[i], &corr_cs[i]).unwrap();
            want.push(linear_server(&server, &w, &x1s[i], &corr_ss[i]).unwrap());
        }
        // Fused: same flights, one wide matmul, per-member counters.
        let pairs: Vec<_> = (0..batch).map(|_| channel_pair()).collect();
        for (i, (client, _, _)) in pairs.iter().enumerate() {
            linear_client(client, &x0s[i], &corr_cs[i]).unwrap();
        }
        let eps: Vec<_> = pairs.iter().map(|(_, s, _)| s).collect();
        let corr_refs: Vec<&LinearCorrServer> = corr_ss.iter().collect();
        let got = linear_server_batch(&eps, &w, &x1s, &corr_refs).unwrap();
        assert_eq!(got, want, "fused output shares must match the unbatched ones bit-for-bit");
        // Each member still pays exactly its own single flight.
        for (_, _, counter) in &pairs {
            let snap = counter.snapshot();
            assert_eq!(snap.bytes_client_to_server, (k * n * 8) as u64);
            assert_eq!(snap.flights, 1);
        }
        // Length mismatches are rejected up front.
        assert!(linear_server_batch(&eps[..2], &w, &x1s, &corr_refs).is_err());
    }

    #[test]
    fn b2a_converts_xor_shares() {
        let mut dealer = Dealer::new(54);
        let n = 32;
        let (t0, t1) = dealer.beaver_triples(n);
        let mut prg = Prg::from_u64(7);
        let b0: Vec<bool> = (0..n).map(|_| prg.next_bool()).collect();
        let b1: Vec<bool> = (0..n).map(|_| prg.next_bool()).collect();
        let (client, server, _) = channel_pair();
        let b1c = b1.clone();
        let t = std::thread::spawn(move || b2a(&server, false, &BitShareVec(b1c), &t1).unwrap());
        let a0 = b2a(&client, true, &BitShareVec(b0.clone()), &t0).unwrap();
        let a1 = t.join().unwrap();
        let a = reconstruct(&a0, &a1);
        for i in 0..n {
            assert_eq!(a[i], (b0[i] ^ b1[i]) as u64, "bit {i}");
        }
    }

    #[test]
    fn mul_rejects_mismatched_inputs() {
        let mut dealer = Dealer::new(55);
        let (t0, _) = dealer.beaver_triples(4);
        let (client, _server, _) = channel_pair();
        let x = ShareVec::from_raw(vec![1, 2, 3]);
        let y = ShareVec::from_raw(vec![1, 2, 3, 4]);
        assert!(mul_elementwise(&client, true, &x, &y, &t0).is_err());
    }
}
