//! Transport conformance suite: every [`Channel`] implementation must
//! satisfy the same contract — intact in-order framed delivery, exact
//! traffic accounting, and clean peer-drop errors — so the MPC
//! protocols can stay transport-generic. Each scenario below runs
//! against all three shipped implementations ([`MemChannel`],
//! [`SimChannel`], [`TcpChannel`]).
//!
//! Also here: the property tests for the TCP frame codec and the
//! consistency check between [`NetModel`]'s analytic latency estimate
//! and [`SimChannel`]'s measured in-line delays.

use c2pi_transport::{
    channel_pair, decode_frame, encode_frame, tcp_loopback_pair, Channel, NetModel, SimChannel,
    TrafficCounter, TransportError,
};
use proptest::prelude::*;
use std::time::Instant;

type Pair = (Box<dyn Channel>, Box<dyn Channel>, TrafficCounter);
type Implementations = Vec<(&'static str, fn() -> Pair)>;

/// A fast simulated model so the suite stays quick: 2 ms RTT, near
/// infinite bandwidth.
fn sim_model() -> NetModel {
    NetModel::custom("fast", 1e12, 2e-3)
}

/// The three shipped implementations under one factory signature.
fn implementations() -> Implementations {
    vec![
        ("mem", || {
            let (c, s, counter) = channel_pair();
            (Box::new(c) as Box<dyn Channel>, Box::new(s), counter)
        }),
        ("sim", || {
            let (c, s, counter) = channel_pair();
            (
                Box::new(SimChannel::new(c, sim_model())) as Box<dyn Channel>,
                Box::new(SimChannel::new(s, sim_model())),
                counter,
            )
        }),
        ("tcp", || {
            let (c, s, counter) = tcp_loopback_pair().expect("loopback pair");
            (Box::new(c) as Box<dyn Channel>, Box::new(s), counter)
        }),
    ]
}

#[test]
fn round_trip_typed_frames_both_directions() {
    for (name, make) in implementations() {
        let (c, s, _) = make();
        c.send_bytes(b"hello").unwrap();
        assert_eq!(s.recv_bytes().unwrap(), b"hello", "{name}");
        s.send_u64s(&[0, 1, u64::MAX]).unwrap();
        assert_eq!(c.recv_u64s().unwrap(), vec![0, 1, u64::MAX], "{name}");
        c.send_f32s(&[-1.5, 0.0, 3.25]).unwrap();
        assert_eq!(s.recv_f32s().unwrap(), vec![-1.5, 0.0, 3.25], "{name}");
        s.send_bytes(&[]).unwrap();
        assert_eq!(c.recv_bytes().unwrap(), Vec::<u8>::new(), "{name}: empty frame");
    }
}

#[test]
fn frames_arrive_in_send_order() {
    for (name, make) in implementations() {
        let (c, s, _) = make();
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(s.recv_u64s().unwrap()[0]);
            }
            got
        });
        for i in 0..100u64 {
            c.send_u64s(&[i]).unwrap();
        }
        let got = t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u64>>(), "{name}");
    }
}

#[test]
fn large_frames_survive_intact() {
    for (name, make) in implementations() {
        let (c, s, counter) = make();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let big_clone = big.clone();
        let t = std::thread::spawn(move || s.recv_bytes().unwrap());
        c.send_bytes(&big_clone).unwrap();
        assert_eq!(t.join().unwrap(), big, "{name}");
        assert_eq!(counter.snapshot().bytes_client_to_server, 1_000_000, "{name}");
    }
}

#[test]
fn traffic_accounting_is_exact_and_shared() {
    for (name, make) in implementations() {
        let (c, s, counter) = make();
        c.send_bytes(&[0u8; 64]).unwrap();
        s.recv_bytes().unwrap();
        s.send_bytes(&[0u8; 32]).unwrap();
        c.recv_bytes().unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_client_to_server, 64, "{name}");
        assert_eq!(snap.bytes_server_to_client, 32, "{name}");
        assert_eq!(snap.messages, 2, "{name}");
        assert_eq!(snap.flights, 2, "{name}");
        // The channel's own handle reads the same counters.
        assert_eq!(c.counter().snapshot(), snap, "{name}");
    }
}

#[test]
fn dropped_peer_errors_on_recv() {
    for (name, make) in implementations() {
        let (c, s, _) = make();
        drop(s);
        assert_eq!(c.recv_bytes().unwrap_err(), TransportError::Disconnected, "{name}");
    }
}

#[test]
fn a_protocol_round_runs_on_every_transport() {
    for (name, make) in implementations() {
        let (c, s, counter) = make();
        let t = std::thread::spawn(move || {
            let v = s.recv_u64s().unwrap();
            let doubled: Vec<u64> = v.iter().map(|x| x.wrapping_mul(2)).collect();
            s.send_u64s(&doubled).unwrap();
        });
        c.send_u64s(&[3, 5]).unwrap();
        assert_eq!(c.recv_u64s().unwrap(), vec![6, 10], "{name}");
        t.join().unwrap();
        assert_eq!(counter.snapshot().round_trips(), 1, "{name}");
    }
}

#[test]
fn sim_channel_wall_clock_matches_netmodel_estimate() {
    // Run a ping-pong protocol over SimChannel and check the measured
    // wall clock against NetModel::latency_seconds for the same traffic
    // profile — the in-line simulation and the analytic estimate are two
    // views of one cost model.
    let model = NetModel::custom("consistency", 1e8, 20e-3);
    let (c, s, counter) = channel_pair();
    let c = SimChannel::new(c, model.clone());
    let s = SimChannel::new(s, model.clone());
    let payload = vec![0u8; 100_000];
    let rounds = 4;
    let t = std::thread::spawn(move || {
        for _ in 0..rounds {
            let v = s.recv_bytes().unwrap();
            s.send_bytes(&v).unwrap();
        }
    });
    let start = Instant::now();
    for _ in 0..rounds {
        c.send_bytes(&payload).unwrap();
        c.recv_bytes().unwrap();
    }
    let measured = start.elapsed().as_secs_f64();
    t.join().unwrap();
    let estimate = model.latency_seconds(&counter.snapshot(), 0.0);
    // 8 flights × 10 ms + 800 KB / 100 MBps = 88 ms estimated. Sleeps
    // only overshoot, so the measurement brackets the estimate from
    // above; the ceiling is generous because scheduler pressure on
    // shared CI runners stretches every sleep.
    assert!(
        measured >= 0.9 * estimate,
        "measured {measured:.4}s under the {estimate:.4}s estimate"
    );
    assert!(
        measured <= 5.0 * estimate,
        "measured {measured:.4}s far above the {estimate:.4}s estimate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_codec_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let frame = encode_frame(&payload).unwrap();
        prop_assert_eq!(frame.len(), payload.len() + 4);
        let (decoded, consumed) = decode_frame(&frame).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn truncated_frames_are_rejected_not_misread(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut in 0usize..511,
    ) {
        let frame = encode_frame(&payload).unwrap();
        let cut = cut.min(frame.len() - 1);
        // Any strict prefix decodes to "incomplete", never to a frame.
        prop_assert_eq!(decode_frame(&frame[..cut]).unwrap(), None);
    }

    #[test]
    fn codec_consumes_exactly_one_frame_from_a_stream(
        a in proptest::collection::vec(any::<u8>(), 0..256),
        b in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut stream = encode_frame(&a).unwrap();
        stream.extend_from_slice(&encode_frame(&b).unwrap());
        let (first, consumed) = decode_frame(&stream).unwrap().expect("first frame");
        prop_assert_eq!(first, a);
        let (second, rest) = decode_frame(&stream[consumed..]).unwrap().expect("second frame");
        prop_assert_eq!(second, b);
        prop_assert_eq!(consumed + rest, stream.len());
    }
}
