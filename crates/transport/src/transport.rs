//! Transport factories: how a session materialises a connected channel
//! pair for each inference.
//!
//! A [`Transport`] is the deployment-level knob the serving API exposes
//! (`C2pi::builder(...).transport(...)`): it decides *what kind* of
//! channel the two party loops talk over without the protocols knowing.
//! Three implementations ship with the workspace:
//!
//! * [`MemTransport`] — the in-memory pair, today's default;
//! * [`SimTransport`] — in-memory frames with a [`NetModel`]'s LAN/WAN
//!   delays injected in line;
//! * [`TcpLoopbackTransport`] — real TCP framing over an ephemeral
//!   loopback socket (both parties still in-process; for genuinely
//!   separate processes connect [`crate::TcpChannel`]s directly, as the
//!   `two_party` example binaries do).

use crate::channel::{Channel, TrafficCounter};
use crate::mem::channel_pair;
use crate::netmodel::NetModel;
use crate::sim::SimChannel;
use crate::tcp::tcp_loopback_pair;
use crate::Result;
use std::sync::Arc;

/// A boxed channel end, as produced by a [`Transport`].
pub type BoxedChannel = Box<dyn Channel>;

/// Factory for connected (client, server) channel pairs plus their
/// shared traffic counter. Implementations must be cheap to call per
/// inference.
pub trait Transport: std::fmt::Debug + Send + Sync {
    /// Creates one connected channel pair.
    ///
    /// # Errors
    ///
    /// Returns transport-level errors (e.g. socket creation failures).
    fn pair(&self) -> Result<(BoxedChannel, BoxedChannel, TrafficCounter)>;

    /// Short human-readable label (`mem`, `sim-lan`, `tcp-loopback`, …)
    /// for reports and bench rows.
    fn label(&self) -> String;
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn pair(&self) -> Result<(BoxedChannel, BoxedChannel, TrafficCounter)> {
        (**self).pair()
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// The in-memory transport: crossbeam queues, zero injected latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemTransport;

impl Transport for MemTransport {
    fn pair(&self) -> Result<(BoxedChannel, BoxedChannel, TrafficCounter)> {
        let (c, s, counter) = channel_pair();
        Ok((Box::new(c), Box::new(s), counter))
    }

    fn label(&self) -> String {
        "mem".to_string()
    }
}

/// In-memory frames with a [`NetModel`]'s delays injected in line: the
/// protocol's wall clock now *includes* the network, instead of the
/// network being reconstructed analytically afterwards.
#[derive(Debug, Clone)]
pub struct SimTransport {
    model: NetModel,
}

impl SimTransport {
    /// Simulates `model`'s bandwidth and RTT.
    pub fn new(model: NetModel) -> Self {
        SimTransport { model }
    }

    /// The simulated model.
    pub fn model(&self) -> &NetModel {
        &self.model
    }
}

impl Transport for SimTransport {
    fn pair(&self) -> Result<(BoxedChannel, BoxedChannel, TrafficCounter)> {
        let (c, s, counter) = channel_pair();
        Ok((
            Box::new(SimChannel::new(c, self.model.clone())),
            Box::new(SimChannel::new(s, self.model.clone())),
            counter,
        ))
    }

    fn label(&self) -> String {
        format!("sim-{}", self.model.name)
    }
}

/// Real TCP framing over an ephemeral loopback socket, both ends in one
/// process — the cheapest way to put the actual wire format on a
/// session's critical path (tests, benches, CI smoke).
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpLoopbackTransport;

impl Transport for TcpLoopbackTransport {
    fn pair(&self) -> Result<(BoxedChannel, BoxedChannel, TrafficCounter)> {
        let (c, s, counter) = tcp_loopback_pair()?;
        Ok((Box::new(c), Box::new(s), counter))
    }

    fn label(&self) -> String {
        "tcp-loopback".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(t: &dyn Transport) {
        let (c, s, counter) = t.pair().unwrap();
        c.send_u64s(&[5, 6]).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![5, 6]);
        assert_eq!(counter.snapshot().bytes_client_to_server, 16);
    }

    #[test]
    fn all_factories_produce_working_pairs() {
        exercise(&MemTransport);
        exercise(&SimTransport::new(NetModel::custom("fast", 1e12, 0.0)));
        exercise(&TcpLoopbackTransport);
    }

    #[test]
    fn labels_identify_the_transport() {
        assert_eq!(MemTransport.label(), "mem");
        assert_eq!(SimTransport::new(NetModel::lan()).label(), "sim-lan");
        assert_eq!(TcpLoopbackTransport.label(), "tcp-loopback");
    }

    #[test]
    fn arc_transport_delegates() {
        let t: Arc<dyn Transport> = Arc::new(MemTransport);
        exercise(&t);
        assert_eq!(t.label(), "mem");
    }
}
