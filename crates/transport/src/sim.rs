//! In-line network simulation: a [`SimChannel`] wraps any [`Channel`]
//! and injects the bandwidth and propagation delays of a [`NetModel`]
//! *while the protocol runs*, instead of pricing the traffic
//! analytically after the fact.
//!
//! The delay schedule mirrors the first-order cost model of
//! [`NetModel::latency_seconds`]: every sent byte costs
//! `1 / bandwidth` seconds of serialization, and every *flight* (a send
//! that follows a receive — i.e. a direction change from this end's
//! perspective) costs one half round-trip of propagation. Because each
//! party sleeps before its own sends and a blocking protocol's critical
//! path alternates between the parties, the measured wall-clock of a
//! protocol run converges on the analytic estimate — which is exactly
//! what the consistency test in `tests/conformance.rs` asserts.

use crate::channel::{Channel, Side, TrafficCounter};
use crate::netmodel::NetModel;
use crate::Result;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A [`Channel`] decorator that sleeps out the latency a [`NetModel`]
/// assigns to each frame before forwarding it to the wrapped channel.
///
/// Traffic accounting passes straight through to the inner channel's
/// counter, so snapshots are identical to an unwrapped run — only the
/// wall clock changes.
#[derive(Debug)]
pub struct SimChannel<C: Channel> {
    inner: C,
    model: NetModel,
    /// Whether this end's previous operation was a send. A send after a
    /// receive (or the very first send) opens a new flight and pays the
    /// propagation delay.
    mid_flight: AtomicBool,
}

impl<C: Channel> SimChannel<C> {
    /// Wraps `inner`, delaying traffic according to `model`.
    pub fn new(inner: C, model: NetModel) -> Self {
        SimChannel { inner, model, mid_flight: AtomicBool::new(false) }
    }

    /// The network model being simulated.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    /// Unwraps the inner channel.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn sleep_secs(seconds: f64) {
        if seconds > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(seconds));
        }
    }
}

impl<C: Channel> Channel for SimChannel<C> {
    fn side(&self) -> Side {
        self.inner.side()
    }

    fn send_bytes(&self, data: &[u8]) -> Result<()> {
        if !self.mid_flight.swap(true, Ordering::SeqCst) {
            Self::sleep_secs(self.model.rtt_seconds / 2.0);
        }
        Self::sleep_secs(data.len() as f64 / self.model.bandwidth_bytes_per_sec);
        self.inner.send_bytes(data)
    }

    fn recv_bytes(&self) -> Result<Vec<u8>> {
        let frame = self.inner.recv_bytes()?;
        self.mid_flight.store(false, Ordering::SeqCst);
        Ok(frame)
    }

    fn counter(&self) -> TrafficCounter {
        self.inner.counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::channel_pair;
    use std::time::Instant;

    /// A fast model for tests: 10 ms RTT, effectively infinite bandwidth.
    fn fast_model() -> NetModel {
        NetModel::custom("test", 1e12, 10e-3)
    }

    #[test]
    fn frames_pass_through_unchanged() {
        let (c, s, counter) = channel_pair();
        let c = SimChannel::new(c, fast_model());
        let s = SimChannel::new(s, fast_model());
        c.send_u64s(&[1, 2, 3]).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![1, 2, 3]);
        s.send_bytes(b"ack").unwrap();
        assert_eq!(c.recv_bytes().unwrap(), b"ack");
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_client_to_server, 24);
        assert_eq!(snap.bytes_server_to_client, 3);
        assert_eq!(snap.flights, 2);
    }

    #[test]
    fn each_flight_pays_half_rtt() {
        let (c, s, _) = channel_pair();
        let c = SimChannel::new(c, fast_model());
        let s = SimChannel::new(s, fast_model());
        let t = std::thread::spawn(move || {
            for _ in 0..3 {
                let v = s.recv_u64s().unwrap();
                s.send_u64s(&v).unwrap();
            }
        });
        let start = Instant::now();
        for _ in 0..3 {
            c.send_u64s(&[9]).unwrap();
            c.recv_u64s().unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        t.join().unwrap();
        // 3 round trips = 6 flights × 5 ms = 30 ms minimum.
        assert!(elapsed >= 0.030, "elapsed {elapsed}");
    }

    #[test]
    fn back_to_back_sends_share_one_flight_delay() {
        let (c, s, _) = channel_pair();
        let c = SimChannel::new(c, fast_model());
        let start = Instant::now();
        for _ in 0..10 {
            c.send_bytes(b"x").unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        // One flight opened: ~5 ms, not 50 ms.
        assert!(elapsed < 0.040, "elapsed {elapsed}");
        drop(s);
    }
}
