//! Framed TCP transport: length-prefixed frames over
//! [`std::net::TcpStream`], so client and server run as genuinely
//! separate OS processes (see the `two_party` example binaries).
//!
//! ## Wire format
//!
//! Every frame is a 4-byte little-endian length prefix followed by
//! exactly that many payload bytes. The prefix is capped at
//! [`MAX_FRAME_BYTES`] so a corrupted or adversarial peer cannot force
//! an absurd allocation. The codec lives in [`encode_frame`] /
//! [`decode_frame`] and is property-tested in
//! `tests/conformance.rs` (round-trip, truncated-frame rejection).

use crate::channel::{Channel, Side, TrafficCounter};
use crate::{Result, TransportError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Largest accepted frame payload (1 GiB). The MPC protocols' biggest
/// frames are garbled-circuit tables, well below this.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Encodes one frame: 4-byte little-endian payload length, then the
/// payload.
///
/// # Errors
///
/// Returns a decode error when the payload exceeds [`MAX_FRAME_BYTES`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>> {
    check_frame_len(payload.len())?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes the first frame of `buf`. Returns `Ok(None)` when the buffer
/// holds only a truncated frame (more bytes needed), or
/// `Ok(Some((payload, consumed)))` for a complete frame.
///
/// # Errors
///
/// Returns a decode error when the length prefix exceeds
/// [`MAX_FRAME_BYTES`].
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    check_frame_len(len)?;
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((buf[4..4 + len].to_vec(), 4 + len)))
}

/// The single authority on the frame-size cap, shared by the encode,
/// decode and streaming-read paths.
fn check_frame_len(len: usize) -> Result<()> {
    if len > MAX_FRAME_BYTES {
        return Err(TransportError::Decode(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    Ok(())
}

fn io_error(e: std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::NotConnected => TransportError::Disconnected,
        _ => TransportError::Io(e.to_string()),
    }
}

/// One party's end of a framed TCP connection.
///
/// Reads and writes are each serialized through an internal mutex so
/// the handle can be shared like every other [`Channel`] without two
/// senders interleaving partial frames; the protocols themselves are
/// single-threaded per party, so there is no contention in practice.
///
/// Unlike [`crate::MemChannel`], the two ends usually live in different
/// processes, so each end owns its *own* [`TrafficCounter`]: sent
/// frames are charged to this side's direction and received frames to
/// the peer's, which makes each process's snapshot reflect the whole
/// conversation it took part in.
#[derive(Debug)]
pub struct TcpChannel {
    side: Side,
    writer: Mutex<TcpStream>,
    reader: Mutex<TcpStream>,
    counter: TrafficCounter,
    /// Whether received frames are charged to the peer's direction.
    /// True for a private per-process counter (the remote peer's sends
    /// would otherwise go unaccounted); false when both ends share one
    /// counter (loopback pairs), where the peer already charged its own
    /// sends.
    charge_peer_on_recv: bool,
}

impl TcpChannel {
    /// Wraps an established stream. `side` is this end's role.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when the stream cannot be
    /// configured or duplicated.
    pub fn from_stream(stream: TcpStream, side: Side) -> Result<Self> {
        let mut ch = Self::from_stream_with_counter(stream, side, TrafficCounter::new())?;
        ch.charge_peer_on_recv = true;
        Ok(ch)
    }

    /// Wraps an established stream, charging traffic to an existing
    /// counter (used by [`crate::TcpLoopbackTransport`] so both ends of
    /// an in-process loopback pair share one counter, like
    /// [`crate::channel_pair`]).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when the stream cannot be
    /// configured or duplicated.
    pub fn from_stream_with_counter(
        stream: TcpStream,
        side: Side,
        counter: TrafficCounter,
    ) -> Result<Self> {
        stream.set_nodelay(true).map_err(io_error)?;
        let reader = stream.try_clone().map_err(io_error)?;
        Ok(TcpChannel {
            side,
            writer: Mutex::new(stream),
            reader: Mutex::new(reader),
            counter,
            charge_peer_on_recv: false,
        })
    }

    /// Caps how long a [`Channel::recv_bytes`] blocks waiting for the
    /// peer (`None` removes the cap). A timed-out read surfaces as
    /// [`TransportError::Io`], not `Disconnected` — serving loops use
    /// this so a stalled or malicious client cannot wedge a worker
    /// forever.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when the socket rejects the
    /// option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.reader
            .lock()
            .expect("tcp reader mutex poisoned")
            .set_read_timeout(timeout)
            .map_err(io_error)
    }

    /// Write-side twin of [`TcpChannel::set_read_timeout`]: caps how
    /// long a [`Channel::send_bytes`] blocks when the peer stops
    /// draining its receive buffer (`None` removes the cap). Without
    /// it a stalled client wedges a serving worker mid-send once the
    /// kernel buffers fill; serving loops set both timeouts.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when the socket rejects the
    /// option.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.writer
            .lock()
            .expect("tcp writer mutex poisoned")
            .set_write_timeout(timeout)
            .map_err(io_error)
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs, side: Side) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(io_error)?;
        Self::from_stream(stream, side)
    }

    /// Connects to a listening peer, retrying until `timeout` elapses —
    /// the convenient form for demos and CI where the peer process is
    /// racing to bind its listener.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the timeout is exhausted.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        side: Side,
        timeout: Duration,
    ) -> Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr.clone(), side) {
                Ok(ch) => return Ok(ch),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Binds `addr` and accepts exactly one connection (the one-shot
    /// server pattern of the `two_party` demo).
    ///
    /// Prefer binding port 0 through [`TcpListenerTransport`] when the
    /// peer needs to learn the ephemeral port before connecting — a
    /// caller-fixed port forces the `sleep`-and-hope race this helper
    /// was historically used with.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when binding or accepting fails.
    pub fn serve_once(addr: impl ToSocketAddrs, side: Side) -> Result<Self> {
        TcpListenerTransport::bind(addr)?.accept(side)
    }
}

/// A bound-but-not-yet-connected TCP listener that hands channels to a
/// serving loop.
///
/// The two things this type exists for:
///
/// * **ephemeral ports** — bind `"127.0.0.1:0"` and read the
///   kernel-assigned port back with [`TcpListenerTransport::local_addr`]
///   / [`TcpListenerTransport::port`], so tests, examples and CI never
///   race on a fixed port number;
/// * **accept loops** — [`TcpListenerTransport::accept`] yields one
///   framed [`TcpChannel`] per client connection, which is what a
///   multi-client server (e.g. `c2pi-core`'s `PiServer`) spawns a worker
///   around.
///
/// ```no_run
/// use c2pi_transport::{Side, TcpChannel, TcpListenerTransport};
/// # fn main() -> c2pi_transport::Result<()> {
/// let listener = TcpListenerTransport::bind("127.0.0.1:0")?;
/// let addr = listener.local_addr(); // tell the client out of band
/// # let _ = addr;
/// let channel = listener.accept(Side::Server)?; // one client connected
/// # let _ = channel;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TcpListenerTransport {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpListenerTransport {
    /// Binds `addr`. Use port 0 for a kernel-assigned ephemeral port and
    /// read it back via [`TcpListenerTransport::local_addr`].
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when binding fails.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(io_error)?;
        let addr = listener.local_addr().map_err(io_error)?;
        Ok(TcpListenerTransport { listener, addr })
    }

    /// The actually-bound address (with the real port even when the bind
    /// address asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The actually-bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Blocks until one client connects, returning the framed channel
    /// for it. `side` is *this* end's protocol role (a serving loop
    /// passes [`Side::Server`]).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when accepting or configuring the
    /// stream fails.
    pub fn accept(&self, side: Side) -> Result<TcpChannel> {
        let (stream, _peer) = self.listener.accept().map_err(io_error)?;
        TcpChannel::from_stream(stream, side)
    }

    /// Switches the listener between blocking and nonblocking accepts.
    /// A readiness-driven accept loop (the `c2pi-core` reactor) sets
    /// nonblocking once and then drains connections with
    /// [`TcpListenerTransport::try_accept`] on every tick.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] when the socket rejects the mode.
    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        self.listener.set_nonblocking(nonblocking).map_err(io_error)
    }

    /// The underlying OS listener socket. A readiness-driven accept
    /// loop registers this with its poller (e.g. `polling`'s
    /// `add_listener`) so pending connections surface as events instead
    /// of being discovered by periodic `try_accept` polling.
    pub fn as_tcp_listener(&self) -> &TcpListener {
        &self.listener
    }

    /// Nonblocking accept: the raw stream of one pending connection, or
    /// `None` when nothing is queued (`WouldBlock`). Returns the bare
    /// [`TcpStream`] — a reactor registers it for readiness first and
    /// only wraps it into a [`TcpChannel`] once a worker takes it over.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] on real accept failures (interrupted
    /// accepts are reported as `None`, like `WouldBlock`).
    pub fn try_accept(&self) -> Result<Option<TcpStream>> {
        match self.listener.accept() {
            Ok((stream, _peer)) => Ok(Some(stream)),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => {
                Ok(None)
            }
            Err(e) => Err(io_error(e)),
        }
    }
}

impl Channel for TcpChannel {
    fn side(&self) -> Side {
        self.side
    }

    fn send_bytes(&self, data: &[u8]) -> Result<()> {
        check_frame_len(data.len())?;
        self.counter.record_send(self.side, data.len() as u64);
        let mut writer = self.writer.lock().expect("tcp writer mutex poisoned");
        // Small frames coalesce prefix + payload into one write (one
        // packet under TCP_NODELAY); large frames skip the O(n) copy.
        if data.len() <= 8192 {
            let frame = encode_frame(data)?;
            writer.write_all(&frame).map_err(io_error)
        } else {
            writer.write_all(&(data.len() as u32).to_le_bytes()).map_err(io_error)?;
            writer.write_all(data).map_err(io_error)
        }
    }

    fn recv_bytes(&self) -> Result<Vec<u8>> {
        let mut reader = self.reader.lock().expect("tcp reader mutex poisoned");
        let mut prefix = [0u8; 4];
        reader.read_exact(&mut prefix).map_err(io_error)?;
        let len = u32::from_le_bytes(prefix) as usize;
        check_frame_len(len)?;
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload).map_err(io_error)?;
        drop(reader);
        if self.charge_peer_on_recv {
            self.counter.record_send(self.side.peer(), len as u64);
        }
        Ok(payload)
    }

    fn counter(&self) -> TrafficCounter {
        self.counter.clone()
    }
}

/// Creates a connected (client, server) [`TcpChannel`] pair over an
/// ephemeral loopback port, sharing one traffic counter — TCP framing
/// with [`crate::channel_pair`] ergonomics, used by the conformance
/// suite and the loopback transport.
///
/// # Errors
///
/// Returns [`TransportError::Io`] when the loopback sockets cannot be
/// created.
pub fn tcp_loopback_pair() -> Result<(TcpChannel, TcpChannel, TrafficCounter)> {
    let listener = TcpListenerTransport::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr();
    // Loopback connects complete against the kernel backlog, so a
    // single-threaded connect-then-accept cannot deadlock.
    let client_stream = TcpStream::connect(addr).map_err(io_error)?;
    let (server_stream, _peer) = listener.listener.accept().map_err(io_error)?;
    let counter = TrafficCounter::new();
    let client =
        TcpChannel::from_stream_with_counter(client_stream, Side::Client, counter.clone())?;
    let server =
        TcpChannel::from_stream_with_counter(server_stream, Side::Server, counter.clone())?;
    Ok((client, server, counter))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let frame = encode_frame(b"hello").unwrap();
        let (payload, consumed) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn codec_reports_truncation() {
        let frame = encode_frame(&[7u8; 100]).unwrap();
        for cut in [0, 3, 4, 50, frame.len() - 1] {
            assert_eq!(decode_frame(&frame[..cut]).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn codec_rejects_oversized_prefix() {
        let mut bad = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(decode_frame(&bad), Err(TransportError::Decode(_))));
    }

    #[test]
    fn loopback_pair_round_trips() {
        let (c, s, counter) = tcp_loopback_pair().unwrap();
        c.send_u64s(&[1, 2, 3]).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![1, 2, 3]);
        s.send_bytes(b"ok").unwrap();
        assert_eq!(c.recv_bytes().unwrap(), b"ok");
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_client_to_server, 24);
        assert_eq!(snap.bytes_server_to_client, 2);
        assert_eq!(snap.flights, 2);
    }

    #[test]
    fn dropped_peer_surfaces_on_recv() {
        let (c, s, _) = tcp_loopback_pair().unwrap();
        drop(s);
        assert_eq!(c.recv_bytes().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn listener_reports_ephemeral_port_and_serves_connections() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        assert_ne!(listener.port(), 0, "kernel assigns a real port");
        let addr = listener.local_addr();
        let t = std::thread::spawn(move || {
            let c = TcpChannel::connect_retry(addr, Side::Client, Duration::from_secs(5)).unwrap();
            c.send_u64s(&[9]).unwrap();
            c.recv_u64s().unwrap()
        });
        let s = listener.accept(Side::Server).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![9]);
        s.send_u64s(&[10]).unwrap();
        assert_eq!(t.join().unwrap(), vec![10]);
        // The listener stays usable for the next client.
        let t = std::thread::spawn(move || {
            TcpChannel::connect_retry(addr, Side::Client, Duration::from_secs(5))
                .unwrap()
                .send_bytes(b"x")
                .unwrap()
        });
        let s = listener.accept(Side::Server).unwrap();
        assert_eq!(s.recv_bytes().unwrap(), b"x");
        t.join().unwrap();
    }

    #[test]
    fn write_timeout_unwedges_a_sender_with_a_stalled_peer() {
        // The peer never reads: our sends land in the kernel buffers
        // until they fill, at which point an uncapped write would block
        // forever. With a write timeout the send surfaces an error.
        let (c, _s, _) = tcp_loopback_pair().unwrap();
        c.set_write_timeout(Some(Duration::from_millis(100))).unwrap();
        let chunk = vec![0u8; 1 << 20];
        let start = Instant::now();
        let mut result = Ok(());
        // 64 MiB is far past loopback's combined socket buffering.
        for _ in 0..64 {
            result = c.send_bytes(&chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(result.is_err(), "send into a stalled peer must time out");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "write timeout must bound the stall, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn nonblocking_listener_reports_empty_then_pending_accepts() {
        let listener = TcpListenerTransport::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        assert!(listener.try_accept().unwrap().is_none(), "no client yet");
        let _client = TcpStream::connect(listener.local_addr()).unwrap();
        // Loopback connects complete against the backlog immediately,
        // but give a slow kernel a moment.
        let deadline = Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            if let Some(stream) = listener.try_accept().unwrap() {
                break stream;
            }
            assert!(Instant::now() < deadline, "pending connection never surfaced");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(
            accepted.peer_addr().unwrap().ip(),
            listener.local_addr().ip(),
            "accepted the loopback client"
        );
    }

    #[test]
    fn empty_frames_are_legal() {
        let (c, s, _) = tcp_loopback_pair().unwrap();
        c.send_bytes(&[]).unwrap();
        assert_eq!(s.recv_bytes().unwrap(), Vec::<u8>::new());
    }
}
