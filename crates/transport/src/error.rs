//! Error type for transport operations.

use std::fmt;

/// Error returned by fallible transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint was dropped while a message was expected.
    Disconnected,
    /// A received frame could not be decoded as the requested type.
    Decode(String),
    /// A transport-level I/O failure (socket setup, interrupted stream).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer endpoint disconnected"),
            TransportError::Decode(msg) => write!(f, "frame decode failed: {msg}"),
            TransportError::Io(msg) => write!(f, "transport i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TransportError::Disconnected.to_string().contains("disconnected"));
        assert!(TransportError::Decode("bad length".into()).to_string().contains("bad length"));
        assert!(TransportError::Io("refused".into()).to_string().contains("refused"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TransportError>();
    }
}
