//! # c2pi-transport
//!
//! In-memory duplex channels with exact byte, message and flight
//! accounting, plus the LAN/WAN network models used to convert traffic
//! into the latency numbers of the paper's Table II.
//!
//! Every MPC protocol in `c2pi-mpc` and every PI engine in `c2pi-pi`
//! moves its bytes through an [`Endpoint`]; afterwards the shared
//! [`TrafficCounter`] holds the exact communication profile, and a
//! [`NetModel`] prices it under the paper's network settings
//! (LAN: 384 MBps / 0.3 ms RTT, WAN: 44 MBps / 40 ms RTT).
//!
//! ## Example
//!
//! ```
//! use c2pi_transport::{channel_pair, NetModel};
//!
//! let (a, b, counter) = channel_pair();
//! a.send_bytes(&[1, 2, 3])?;
//! assert_eq!(b.recv_bytes()?, vec![1, 2, 3]);
//! let snap = counter.snapshot();
//! assert_eq!(snap.bytes_total(), 3);
//! let lat = NetModel::lan().latency_seconds(&snap, 0.0);
//! assert!(lat > 0.0);
//! # Ok::<(), c2pi_transport::TransportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod netmodel;

pub use channel::{channel_pair, Endpoint, Side, TrafficCounter, TrafficSnapshot};
pub use error::TransportError;
pub use netmodel::NetModel;

/// Convenience result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;
