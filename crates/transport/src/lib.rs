//! # c2pi-transport
//!
//! The transport-generic protocol substrate of the workspace: the
//! [`Channel`] trait (blocking framed send/recv of typed messages plus
//! exact byte, message and flight accounting), three implementations
//! behind one conformance contract, and the LAN/WAN network models that
//! price traffic into the latency numbers of the paper's Table II.
//!
//! * [`MemChannel`] — the in-memory pair ([`channel_pair`]) used when
//!   both parties are threads of one process;
//! * [`SimChannel`] — wraps any channel and injects a [`NetModel`]'s
//!   bandwidth and RTT delays *in line*, so LAN/WAN latency shows up on
//!   the wall clock instead of only in post-hoc estimates;
//! * [`TcpChannel`] — length-prefixed frames over
//!   [`std::net::TcpStream`], letting client and server run as separate
//!   OS processes (see the `two_party` example binaries).
//!
//! Sessions pick a channel flavour through the [`Transport`] factory
//! trait ([`MemTransport`], [`SimTransport`], [`TcpLoopbackTransport`]).
//!
//! Every MPC protocol in `c2pi-mpc` and the PI engine in `c2pi-pi` is
//! generic over [`Channel`]; afterwards the shared [`TrafficCounter`]
//! holds the exact communication profile, and a [`NetModel`] prices it
//! under the paper's network settings (LAN: 384 MBps / 0.3 ms RTT,
//! WAN: 44 MBps / 40 ms RTT).
//!
//! ## Example
//!
//! ```
//! use c2pi_transport::{channel_pair, Channel, NetModel};
//!
//! let (a, b, counter) = channel_pair();
//! a.send_bytes(&[1, 2, 3])?;
//! assert_eq!(b.recv_bytes()?, vec![1, 2, 3]);
//! let snap = counter.snapshot();
//! assert_eq!(snap.bytes_total(), 3);
//! let lat = NetModel::lan().latency_seconds(&snap, 0.0);
//! assert!(lat > 0.0);
//! # Ok::<(), c2pi_transport::TransportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod mem;
pub mod netmodel;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use channel::{Channel, Side, TrafficCounter, TrafficSnapshot};
pub use error::TransportError;
pub use mem::{channel_pair, MemChannel};
pub use netmodel::NetModel;
pub use sim::SimChannel;
pub use tcp::{
    decode_frame, encode_frame, tcp_loopback_pair, TcpChannel, TcpListenerTransport,
    MAX_FRAME_BYTES,
};
pub use transport::{BoxedChannel, MemTransport, SimTransport, TcpLoopbackTransport, Transport};

/// Convenience result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;
