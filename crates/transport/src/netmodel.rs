//! Network cost models: convert a traffic profile into wall-clock
//! latency under the paper's LAN and WAN settings.

use crate::TrafficSnapshot;
use serde::{Deserialize, Serialize};

/// A bandwidth + round-trip-time network model.
///
/// The paper's evaluation (§IV-E) uses two settings:
///
/// * **LAN** — ~384 MBps bandwidth, 0.3 ms round-trip time;
/// * **WAN** — ~44 MBps bandwidth, 40 ms round-trip time.
///
/// Latency is modelled as
/// `compute + flights × (RTT / 2) + bytes / bandwidth`, the standard
/// first-order cost model for secure-computation protocols. The same
/// parameters drive the in-line simulation of
/// [`crate::SimChannel`], whose measured wall clock converges on this
/// estimate (see the consistency test in `tests/conformance.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// Human-readable name (`lan`, `wan`, …). Owned, so user-defined
    /// models need no leaked statics.
    pub name: String,
    /// Bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Round-trip time in seconds.
    pub rtt_seconds: f64,
}

impl NetModel {
    /// The paper's LAN setting: 384 MBps, 0.3 ms RTT.
    pub fn lan() -> Self {
        NetModel { name: "lan".to_string(), bandwidth_bytes_per_sec: 384e6, rtt_seconds: 0.3e-3 }
    }

    /// The paper's WAN setting: 44 MBps, 40 ms RTT.
    pub fn wan() -> Self {
        NetModel { name: "wan".to_string(), bandwidth_bytes_per_sec: 44e6, rtt_seconds: 40e-3 }
    }

    /// The degenerate in-process setting: effectively infinite
    /// bandwidth and zero RTT, so [`NetModel::latency_seconds`] reduces
    /// to the compute term. The deployment planner sweeps this model
    /// alongside [`NetModel::lan`] / [`NetModel::wan`] so its tables
    /// always contain the network-free baseline column.
    pub fn mem() -> Self {
        NetModel { name: "mem".to_string(), bandwidth_bytes_per_sec: 1e15, rtt_seconds: 0.0 }
    }

    /// Resolves one of the built-in settings by name (`mem`, `lan`,
    /// `wan`); `None` for anything else.
    ///
    /// ```
    /// use c2pi_transport::NetModel;
    /// assert_eq!(NetModel::by_name("wan"), Some(NetModel::wan()));
    /// assert_eq!(NetModel::by_name("dc"), None);
    /// ```
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "mem" => Some(NetModel::mem()),
            "lan" => Some(NetModel::lan()),
            "wan" => Some(NetModel::wan()),
            _ => None,
        }
    }

    /// A custom model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive or RTT is negative.
    pub fn custom(name: impl Into<String>, bandwidth_bytes_per_sec: f64, rtt_seconds: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(rtt_seconds >= 0.0, "rtt must be non-negative");
        NetModel { name: name.into(), bandwidth_bytes_per_sec, rtt_seconds }
    }

    /// End-to-end latency in seconds for a traffic profile plus local
    /// compute time.
    pub fn latency_seconds(&self, traffic: &TrafficSnapshot, compute_seconds: f64) -> f64 {
        compute_seconds
            + traffic.flights as f64 * (self.rtt_seconds / 2.0)
            + traffic.bytes_total() as f64 / self.bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(bytes: u64, flights: u64) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_client_to_server: bytes,
            bytes_server_to_client: 0,
            messages: 1,
            flights,
        }
    }

    #[test]
    fn mem_model_is_compute_only() {
        let m = NetModel::mem();
        let t = traffic(100_000_000, 50);
        // Network terms vanish below double precision next to compute.
        assert!((m.latency_seconds(&t, 2.0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn by_name_covers_the_builtins() {
        for name in ["mem", "lan", "wan"] {
            assert_eq!(NetModel::by_name(name).unwrap().name, name);
        }
        assert!(NetModel::by_name("tachyon").is_none());
    }

    #[test]
    fn paper_settings_are_encoded() {
        let lan = NetModel::lan();
        assert_eq!(lan.bandwidth_bytes_per_sec, 384e6);
        assert_eq!(lan.rtt_seconds, 0.3e-3);
        let wan = NetModel::wan();
        assert_eq!(wan.bandwidth_bytes_per_sec, 44e6);
        assert_eq!(wan.rtt_seconds, 40e-3);
    }

    #[test]
    fn custom_models_take_owned_names() {
        // No leaked statics needed: a runtime-built name works.
        let name = format!("dc-{}", 7);
        let m = NetModel::custom(name.clone(), 1e9, 1e-3);
        assert_eq!(m.name, name);
        let cloned = m.clone();
        assert_eq!(cloned, m);
    }

    #[test]
    fn wan_dominated_by_rtt_for_chatty_protocols() {
        // Many small rounds: WAN latency should exceed LAN by orders of
        // magnitude.
        let t = traffic(1_000, 200);
        let lan = NetModel::lan().latency_seconds(&t, 0.0);
        let wan = NetModel::wan().latency_seconds(&t, 0.0);
        assert!(wan > 50.0 * lan, "wan {wan} vs lan {lan}");
    }

    #[test]
    fn bandwidth_term_scales_linearly() {
        let m = NetModel::lan();
        let l1 = m.latency_seconds(&traffic(1_000_000, 0), 0.0);
        let l2 = m.latency_seconds(&traffic(2_000_000, 0), 0.0);
        assert!((l2 / l1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_time_is_additive() {
        let m = NetModel::wan();
        let t = traffic(0, 0);
        assert_eq!(m.latency_seconds(&t, 1.5), 1.5);
    }

    #[test]
    fn flights_cost_half_rtt_each() {
        let m = NetModel::custom("test", 1e9, 0.010);
        let t = traffic(0, 4); // 4 flights = 2 round trips
        assert!((m.latency_seconds(&t, 0.0) - 0.020).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        NetModel::custom("bad", 0.0, 0.0);
    }
}
