//! Byte-counted in-memory duplex channel.

use crate::{Result, TransportError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Which end of the channel an [`Endpoint`] is — the MPC code names the
/// parties after the paper's roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The client (holds the inference input `x`).
    Client,
    /// The server (holds the model `M`).
    Server,
}

impl Side {
    /// The opposite side.
    pub fn peer(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    bytes_client_to_server: AtomicU64,
    bytes_server_to_client: AtomicU64,
    messages: AtomicU64,
    /// Sequential message flights (direction changes). Two flights make
    /// one protocol round trip.
    flights: AtomicU64,
    /// 0 = none yet, 1 = client sent last, 2 = server sent last.
    last_sender: AtomicU8,
}

/// Shared handle for reading the traffic profile of a channel pair.
#[derive(Debug, Clone)]
pub struct TrafficCounter {
    inner: Arc<StatsInner>,
}

/// A point-in-time copy of the traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Bytes sent from client to server.
    pub bytes_client_to_server: u64,
    /// Bytes sent from server to client.
    pub bytes_server_to_client: u64,
    /// Total messages.
    pub messages: u64,
    /// Sequential message flights (two flights = one round trip).
    pub flights: u64,
}

impl TrafficSnapshot {
    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_client_to_server + self.bytes_server_to_client
    }

    /// Total traffic in megabytes (10⁶ bytes, as in the paper's tables).
    pub fn megabytes(&self) -> f64 {
        self.bytes_total() as f64 / 1e6
    }

    /// Full round trips implied by the flight count (rounded up).
    pub fn round_trips(&self) -> u64 {
        self.flights.div_ceil(2)
    }

    /// Component-wise difference (`self - earlier`), for measuring a
    /// protocol phase.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_client_to_server: self.bytes_client_to_server - earlier.bytes_client_to_server,
            bytes_server_to_client: self.bytes_server_to_client - earlier.bytes_server_to_client,
            messages: self.messages - earlier.messages,
            flights: self.flights - earlier.flights,
        }
    }

    /// Component-wise sum, for aggregating phases.
    pub fn plus(&self, other: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_client_to_server: self.bytes_client_to_server + other.bytes_client_to_server,
            bytes_server_to_client: self.bytes_server_to_client + other.bytes_server_to_client,
            messages: self.messages + other.messages,
            flights: self.flights + other.flights,
        }
    }
}

impl TrafficCounter {
    /// Reads the current counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_client_to_server: self.inner.bytes_client_to_server.load(Ordering::SeqCst),
            bytes_server_to_client: self.inner.bytes_server_to_client.load(Ordering::SeqCst),
            messages: self.inner.messages.load(Ordering::SeqCst),
            flights: self.inner.flights.load(Ordering::SeqCst),
        }
    }

    /// Charges *phantom* traffic to the counters without moving data —
    /// used to account for the analytically modelled homomorphic
    /// ciphertexts of the Delphi/Cheetah offline phases (DESIGN.md §3).
    pub fn charge_phantom(&self, from: Side, bytes: u64, flights: u64) {
        match from {
            Side::Client => self.inner.bytes_client_to_server.fetch_add(bytes, Ordering::SeqCst),
            Side::Server => self.inner.bytes_server_to_client.fetch_add(bytes, Ordering::SeqCst),
        };
        self.inner.flights.fetch_add(flights, Ordering::SeqCst);
        if bytes > 0 {
            self.inner.messages.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// One end of a byte-counted duplex channel.
#[derive(Debug)]
pub struct Endpoint {
    side: Side,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    stats: Arc<StatsInner>,
}

/// Creates a connected (client, server) endpoint pair plus the shared
/// traffic counter.
pub fn channel_pair() -> (Endpoint, Endpoint, TrafficCounter) {
    let (tx_c2s, rx_c2s) = unbounded();
    let (tx_s2c, rx_s2c) = unbounded();
    let stats = Arc::new(StatsInner::default());
    let client = Endpoint { side: Side::Client, tx: tx_c2s, rx: rx_s2c, stats: Arc::clone(&stats) };
    let server = Endpoint { side: Side::Server, tx: tx_s2c, rx: rx_c2s, stats: Arc::clone(&stats) };
    (client, server, TrafficCounter { inner: stats })
}

impl Endpoint {
    /// Which side this endpoint is.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Sends a raw byte frame to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when the peer is gone.
    pub fn send_bytes(&self, data: &[u8]) -> Result<()> {
        let me = match self.side {
            Side::Client => 1u8,
            Side::Server => 2u8,
        };
        let prev = self.stats.last_sender.swap(me, Ordering::SeqCst);
        if prev != me {
            self.stats.flights.fetch_add(1, Ordering::SeqCst);
        }
        match self.side {
            Side::Client => {
                self.stats.bytes_client_to_server.fetch_add(data.len() as u64, Ordering::SeqCst)
            }
            Side::Server => {
                self.stats.bytes_server_to_client.fetch_add(data.len() as u64, Ordering::SeqCst)
            }
        };
        self.stats.messages.fetch_add(1, Ordering::SeqCst);
        self.tx.send(Bytes::copy_from_slice(data)).map_err(|_| TransportError::Disconnected)
    }

    /// Receives the next byte frame from the peer (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when the peer is gone.
    pub fn recv_bytes(&self) -> Result<Vec<u8>> {
        self.rx.recv().map(|b| b.to_vec()).map_err(|_| TransportError::Disconnected)
    }

    /// Sends a slice of `u64` ring elements as one little-endian frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when the peer is gone.
    pub fn send_u64s(&self, values: &[u64]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(values.len() * 8);
        for &v in values {
            buf.put_u64_le(v);
        }
        self.send_bytes(&buf)
    }

    /// Receives a frame of `u64` ring elements.
    ///
    /// # Errors
    ///
    /// Returns a decode error when the frame length is not a multiple of
    /// 8, or [`TransportError::Disconnected`].
    pub fn recv_u64s(&self) -> Result<Vec<u64>> {
        let raw = self.recv_bytes()?;
        if raw.len() % 8 != 0 {
            return Err(TransportError::Decode(format!(
                "frame of {} bytes is not a u64 sequence",
                raw.len()
            )));
        }
        let mut buf = Bytes::from(raw);
        let mut out = Vec::with_capacity(buf.len() / 8);
        while buf.has_remaining() {
            out.push(buf.get_u64_le());
        }
        Ok(out)
    }

    /// Sends a slice of `f32` values as one little-endian frame.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when the peer is gone.
    pub fn send_f32s(&self, values: &[f32]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(values.len() * 4);
        for &v in values {
            buf.put_f32_le(v);
        }
        self.send_bytes(&buf)
    }

    /// Receives a frame of `f32` values.
    ///
    /// # Errors
    ///
    /// Returns a decode error when the frame length is not a multiple of
    /// 4, or [`TransportError::Disconnected`].
    pub fn recv_f32s(&self) -> Result<Vec<f32>> {
        let raw = self.recv_bytes()?;
        if raw.len() % 4 != 0 {
            return Err(TransportError::Decode(format!(
                "frame of {} bytes is not an f32 sequence",
                raw.len()
            )));
        }
        let mut buf = Bytes::from(raw);
        let mut out = Vec::with_capacity(buf.len() / 4);
        while buf.has_remaining() {
            out.push(buf.get_f32_le());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let (c, s, _) = channel_pair();
        c.send_bytes(b"hello").unwrap();
        assert_eq!(s.recv_bytes().unwrap(), b"hello");
        s.send_bytes(b"world").unwrap();
        assert_eq!(c.recv_bytes().unwrap(), b"world");
    }

    #[test]
    fn u64_and_f32_frames_round_trip() {
        let (c, s, _) = channel_pair();
        c.send_u64s(&[1, u64::MAX, 42]).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![1, u64::MAX, 42]);
        s.send_f32s(&[1.5, -2.25]).unwrap();
        assert_eq!(c.recv_f32s().unwrap(), vec![1.5, -2.25]);
    }

    #[test]
    fn byte_counters_are_exact() {
        let (c, s, counter) = channel_pair();
        c.send_bytes(&[0u8; 100]).unwrap();
        s.recv_bytes().unwrap();
        s.send_bytes(&[0u8; 40]).unwrap();
        c.recv_bytes().unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_client_to_server, 100);
        assert_eq!(snap.bytes_server_to_client, 40);
        assert_eq!(snap.bytes_total(), 140);
        assert_eq!(snap.messages, 2);
    }

    #[test]
    fn flights_count_direction_changes() {
        let (c, s, counter) = channel_pair();
        // Client sends twice in a row: one flight.
        c.send_bytes(b"a").unwrap();
        c.send_bytes(b"b").unwrap();
        s.recv_bytes().unwrap();
        s.recv_bytes().unwrap();
        assert_eq!(counter.snapshot().flights, 1);
        // Server replies: second flight = one round trip.
        s.send_bytes(b"c").unwrap();
        c.recv_bytes().unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.flights, 2);
        assert_eq!(snap.round_trips(), 1);
    }

    #[test]
    fn snapshot_difference_isolates_a_phase() {
        let (c, s, counter) = channel_pair();
        c.send_bytes(&[0u8; 10]).unwrap();
        s.recv_bytes().unwrap();
        let mark = counter.snapshot();
        s.send_bytes(&[0u8; 30]).unwrap();
        c.recv_bytes().unwrap();
        let phase = counter.snapshot().since(&mark);
        assert_eq!(phase.bytes_total(), 30);
        assert_eq!(phase.flights, 1);
    }

    #[test]
    fn phantom_traffic_is_charged() {
        let (_c, _s, counter) = channel_pair();
        counter.charge_phantom(Side::Server, 1_000_000, 2);
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_server_to_client, 1_000_000);
        assert_eq!(snap.flights, 2);
    }

    #[test]
    fn disconnected_peer_errors() {
        let (c, s, _) = channel_pair();
        drop(s);
        assert_eq!(c.send_bytes(b"x").unwrap_err(), TransportError::Disconnected);
        assert_eq!(c.recv_bytes().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn decode_rejects_ragged_frames() {
        let (c, s, _) = channel_pair();
        c.send_bytes(&[1, 2, 3]).unwrap();
        assert!(matches!(s.recv_u64s(), Err(TransportError::Decode(_))));
        c.send_bytes(&[1, 2, 3]).unwrap();
        assert!(matches!(s.recv_f32s(), Err(TransportError::Decode(_))));
    }

    #[test]
    fn threads_can_run_a_protocol() {
        let (c, s, counter) = channel_pair();
        let t = std::thread::spawn(move || {
            // Server echoes incremented values.
            let v = s.recv_u64s().unwrap();
            let inc: Vec<u64> = v.iter().map(|x| x + 1).collect();
            s.send_u64s(&inc).unwrap();
        });
        c.send_u64s(&[10, 20]).unwrap();
        assert_eq!(c.recv_u64s().unwrap(), vec![11, 21]);
        t.join().unwrap();
        assert_eq!(counter.snapshot().round_trips(), 1);
    }

    #[test]
    fn side_peer_flips() {
        assert_eq!(Side::Client.peer(), Side::Server);
        assert_eq!(Side::Server.peer(), Side::Client);
    }
}
