//! The transport contract: the [`Channel`] trait plus the byte, message
//! and flight accounting every implementation shares.
//!
//! A [`Channel`] is one party's end of a blocking, framed, duplex
//! connection to its peer. The MPC protocols in `c2pi-mpc` and the PI
//! engine in `c2pi-pi` are generic over this trait — they never name a
//! concrete transport — so the same protocol code runs over an
//! in-memory pair ([`crate::MemChannel`]), an in-line simulated network
//! ([`crate::SimChannel`]) or a real TCP socket between two OS
//! processes ([`crate::TcpChannel`]).

use crate::{Result, TransportError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which end of a channel a party is — the MPC code names the parties
/// after the paper's roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The client (holds the inference input `x`).
    Client,
    /// The server (holds the model `M`).
    Server,
}

impl Side {
    /// The opposite side.
    pub fn peer(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }

    /// Sender tag packed into the flight-state word (see [`StatsInner`]).
    fn tag(self) -> u64 {
        match self {
            Side::Client => 1,
            Side::Server => 2,
        }
    }
}

/// Shared traffic counters. The flight accounting (direction changes)
/// lives in one packed atomic word — bits 0–1 hold the last sender
/// (0 = none yet, 1 = client, 2 = server) and the remaining bits the
/// flight count — so concurrent sends from both sides transition the
/// state atomically and can never miscount a direction change.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    bytes_client_to_server: AtomicU64,
    bytes_server_to_client: AtomicU64,
    messages: AtomicU64,
    /// `flights << 2 | last_sender_tag`.
    flight_state: AtomicU64,
}

impl StatsInner {
    /// Records one sent frame: byte and message counts plus one flight
    /// when the direction changed, in a single atomic state transition.
    pub(crate) fn record_send(&self, from: Side, bytes: u64) {
        let me = from.tag();
        let mut cur = self.flight_state.load(Ordering::SeqCst);
        loop {
            let last = cur & 0b11;
            let flights = cur >> 2;
            let next_flights = if last == me { flights } else { flights + 1 };
            let next = (next_flights << 2) | me;
            match self.flight_state.compare_exchange_weak(
                cur,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
        match from {
            Side::Client => self.bytes_client_to_server.fetch_add(bytes, Ordering::SeqCst),
            Side::Server => self.bytes_server_to_client.fetch_add(bytes, Ordering::SeqCst),
        };
        self.messages.fetch_add(1, Ordering::SeqCst);
    }
}

/// Shared handle for reading the traffic profile of a channel (pair).
///
/// For the in-memory and loopback transports both ends share one
/// counter, so it reflects the whole conversation; a [`crate::TcpChannel`]
/// talking to a remote process counts sent frames in its own direction
/// and received frames in the peer's, which yields the same totals.
#[derive(Debug, Clone, Default)]
pub struct TrafficCounter {
    inner: Arc<StatsInner>,
}

/// A point-in-time copy of the traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Bytes sent from client to server.
    pub bytes_client_to_server: u64,
    /// Bytes sent from server to client.
    pub bytes_server_to_client: u64,
    /// Total messages.
    pub messages: u64,
    /// Sequential message flights (two flights = one round trip).
    pub flights: u64,
}

impl TrafficSnapshot {
    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_client_to_server + self.bytes_server_to_client
    }

    /// Total traffic in megabytes (10⁶ bytes, as in the paper's tables).
    pub fn megabytes(&self) -> f64 {
        self.bytes_total() as f64 / 1e6
    }

    /// Full round trips implied by the flight count (rounded up).
    pub fn round_trips(&self) -> u64 {
        self.flights.div_ceil(2)
    }

    /// Component-wise difference (`self - earlier`), for measuring a
    /// protocol phase.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_client_to_server: self.bytes_client_to_server - earlier.bytes_client_to_server,
            bytes_server_to_client: self.bytes_server_to_client - earlier.bytes_server_to_client,
            messages: self.messages - earlier.messages,
            flights: self.flights - earlier.flights,
        }
    }

    /// Component-wise sum, for aggregating phases.
    pub fn plus(&self, other: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_client_to_server: self.bytes_client_to_server + other.bytes_client_to_server,
            bytes_server_to_client: self.bytes_server_to_client + other.bytes_server_to_client,
            messages: self.messages + other.messages,
            flights: self.flights + other.flights,
        }
    }
}

impl TrafficCounter {
    /// A fresh zeroed counter (channel constructors take or create one).
    pub fn new() -> Self {
        TrafficCounter::default()
    }

    pub(crate) fn record_send(&self, from: Side, bytes: u64) {
        self.inner.record_send(from, bytes);
    }

    /// Reads the current counters. The flight count and the last-sender
    /// state are read from one atomic word, so the snapshot can never
    /// observe a half-applied direction change.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let state = self.inner.flight_state.load(Ordering::SeqCst);
        TrafficSnapshot {
            bytes_client_to_server: self.inner.bytes_client_to_server.load(Ordering::SeqCst),
            bytes_server_to_client: self.inner.bytes_server_to_client.load(Ordering::SeqCst),
            messages: self.inner.messages.load(Ordering::SeqCst),
            flights: state >> 2,
        }
    }

    /// Charges *phantom* traffic to the counters without moving data —
    /// used to account for the analytically modelled homomorphic
    /// ciphertexts of the Delphi/Cheetah offline phases (DESIGN.md §3).
    /// Phantom flights do not disturb the live last-sender state.
    pub fn charge_phantom(&self, from: Side, bytes: u64, flights: u64) {
        match from {
            Side::Client => {
                self.inner.bytes_client_to_server.fetch_add(bytes, Ordering::SeqCst);
            }
            Side::Server => {
                self.inner.bytes_server_to_client.fetch_add(bytes, Ordering::SeqCst);
            }
        }
        // The count lives above the two sender-tag bits, so a plain add
        // of `flights << 2` leaves the last-sender state untouched.
        self.inner.flight_state.fetch_add(flights << 2, Ordering::SeqCst);
        if bytes > 0 {
            self.inner.messages.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// One party's end of a blocking, framed, duplex transport.
///
/// Implementations provide the raw byte-frame operations plus identity
/// and accounting; the typed frame helpers (`u64`/`f32` sequences, the
/// wire format of every MPC message in the workspace) are provided
/// methods so all transports share one codec.
///
/// The contract every implementation upholds (exercised by the
/// conformance suite in `crates/transport/tests/conformance.rs`):
///
/// * frames arrive intact, in send order, with their exact length;
/// * `recv_bytes` blocks until a frame arrives or the peer is gone;
/// * a dropped/closed peer surfaces as [`TransportError::Disconnected`]
///   on receive (and on send where the transport can detect it);
/// * every delivered frame is charged to the shared [`TrafficCounter`].
pub trait Channel: Send + std::fmt::Debug {
    /// Which side this end belongs to.
    fn side(&self) -> Side;

    /// Sends a raw byte frame to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when the peer is gone,
    /// or [`TransportError::Io`] for transport-level failures.
    fn send_bytes(&self, data: &[u8]) -> Result<()>;

    /// Receives the next byte frame from the peer (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when the peer is gone,
    /// or [`TransportError::Io`] for transport-level failures.
    fn recv_bytes(&self) -> Result<Vec<u8>>;

    /// Handle to the traffic counters this channel charges.
    fn counter(&self) -> TrafficCounter;

    /// Sends a slice of `u64` ring elements as one little-endian frame.
    ///
    /// # Errors
    ///
    /// Same as [`Channel::send_bytes`].
    fn send_u64s(&self, values: &[u64]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(values.len() * 8);
        for &v in values {
            buf.put_u64_le(v);
        }
        self.send_bytes(&buf)
    }

    /// Receives a frame of `u64` ring elements.
    ///
    /// # Errors
    ///
    /// Returns a decode error when the frame length is not a multiple of
    /// 8, or the errors of [`Channel::recv_bytes`].
    fn recv_u64s(&self) -> Result<Vec<u64>> {
        let raw = self.recv_bytes()?;
        if raw.len() % 8 != 0 {
            return Err(TransportError::Decode(format!(
                "frame of {} bytes is not a u64 sequence",
                raw.len()
            )));
        }
        let mut buf = Bytes::from(raw);
        let mut out = Vec::with_capacity(buf.len() / 8);
        while buf.has_remaining() {
            out.push(buf.get_u64_le());
        }
        Ok(out)
    }

    /// Sends a slice of `f32` values as one little-endian frame.
    ///
    /// # Errors
    ///
    /// Same as [`Channel::send_bytes`].
    fn send_f32s(&self, values: &[f32]) -> Result<()> {
        let mut buf = BytesMut::with_capacity(values.len() * 4);
        for &v in values {
            buf.put_f32_le(v);
        }
        self.send_bytes(&buf)
    }

    /// Receives a frame of `f32` values.
    ///
    /// # Errors
    ///
    /// Returns a decode error when the frame length is not a multiple of
    /// 4, or the errors of [`Channel::recv_bytes`].
    fn recv_f32s(&self) -> Result<Vec<f32>> {
        let raw = self.recv_bytes()?;
        if raw.len() % 4 != 0 {
            return Err(TransportError::Decode(format!(
                "frame of {} bytes is not an f32 sequence",
                raw.len()
            )));
        }
        let mut buf = Bytes::from(raw);
        let mut out = Vec::with_capacity(buf.len() / 4);
        while buf.has_remaining() {
            out.push(buf.get_f32_le());
        }
        Ok(out)
    }
}

impl<C: Channel + ?Sized> Channel for Box<C> {
    fn side(&self) -> Side {
        (**self).side()
    }

    fn send_bytes(&self, data: &[u8]) -> Result<()> {
        (**self).send_bytes(data)
    }

    fn recv_bytes(&self) -> Result<Vec<u8>> {
        (**self).recv_bytes()
    }

    fn counter(&self) -> TrafficCounter {
        (**self).counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_peer_flips() {
        assert_eq!(Side::Client.peer(), Side::Server);
        assert_eq!(Side::Server.peer(), Side::Client);
    }

    #[test]
    fn phantom_traffic_is_charged() {
        let counter = TrafficCounter::new();
        counter.charge_phantom(Side::Server, 1_000_000, 2);
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_server_to_client, 1_000_000);
        assert_eq!(snap.flights, 2);
    }

    #[test]
    fn phantom_flights_preserve_last_sender() {
        let counter = TrafficCounter::new();
        counter.record_send(Side::Client, 10);
        counter.charge_phantom(Side::Server, 100, 4);
        // Client sends again: still the last live sender, no new flight.
        counter.record_send(Side::Client, 10);
        assert_eq!(counter.snapshot().flights, 1 + 4);
    }

    #[test]
    fn concurrent_sends_never_miscount_flights() {
        // Both sides hammer the counter from separate threads. With the
        // packed state, every observed transition is a real direction
        // change, so the total flight count is at most the number of
        // sends and at least 1, and the final snapshot is consistent.
        let counter = TrafficCounter::new();
        let c1 = counter.clone();
        let c2 = counter.clone();
        let n = 1000;
        let t1 = std::thread::spawn(move || {
            for _ in 0..n {
                c1.record_send(Side::Client, 1);
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..n {
                c2.record_send(Side::Server, 1);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.messages, 2 * n);
        assert_eq!(snap.bytes_total(), 2 * n);
        assert!(snap.flights >= 1 && snap.flights <= 2 * n, "flights {}", snap.flights);
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = TrafficSnapshot {
            bytes_client_to_server: 10,
            bytes_server_to_client: 20,
            messages: 2,
            flights: 2,
        };
        let b = TrafficSnapshot {
            bytes_client_to_server: 1,
            bytes_server_to_client: 2,
            messages: 1,
            flights: 1,
        };
        assert_eq!(a.plus(&b).bytes_total(), 33);
        assert_eq!(a.since(&b).flights, 1);
        assert_eq!(a.round_trips(), 1);
    }
}
