//! In-memory channel pair: the zero-copy-ish transport used when both
//! parties run as threads of one process (sessions, tests, benches).

use crate::channel::{Channel, Side, TrafficCounter};
use crate::{Result, TransportError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// One end of a byte-counted in-memory duplex channel.
///
/// Created in connected pairs by [`channel_pair`]; both ends share one
/// [`TrafficCounter`]. Frames move through unbounded crossbeam queues,
/// so sends never block and receives block until the peer's next frame
/// (or [`TransportError::Disconnected`] once the peer is dropped).
#[derive(Debug)]
pub struct MemChannel {
    side: Side,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    counter: TrafficCounter,
}

/// Creates a connected (client, server) [`MemChannel`] pair plus the
/// shared traffic counter.
pub fn channel_pair() -> (MemChannel, MemChannel, TrafficCounter) {
    let (tx_c2s, rx_c2s) = unbounded();
    let (tx_s2c, rx_s2c) = unbounded();
    let counter = TrafficCounter::new();
    let client =
        MemChannel { side: Side::Client, tx: tx_c2s, rx: rx_s2c, counter: counter.clone() };
    let server =
        MemChannel { side: Side::Server, tx: tx_s2c, rx: rx_c2s, counter: counter.clone() };
    (client, server, counter)
}

impl Channel for MemChannel {
    fn side(&self) -> Side {
        self.side
    }

    fn send_bytes(&self, data: &[u8]) -> Result<()> {
        self.counter.record_send(self.side, data.len() as u64);
        self.tx.send(Bytes::copy_from_slice(data)).map_err(|_| TransportError::Disconnected)
    }

    fn recv_bytes(&self) -> Result<Vec<u8>> {
        self.rx.recv().map(|b| b.to_vec()).map_err(|_| TransportError::Disconnected)
    }

    fn counter(&self) -> TrafficCounter {
        self.counter.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let (c, s, _) = channel_pair();
        c.send_bytes(b"hello").unwrap();
        assert_eq!(s.recv_bytes().unwrap(), b"hello");
        s.send_bytes(b"world").unwrap();
        assert_eq!(c.recv_bytes().unwrap(), b"world");
    }

    #[test]
    fn u64_and_f32_frames_round_trip() {
        let (c, s, _) = channel_pair();
        c.send_u64s(&[1, u64::MAX, 42]).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![1, u64::MAX, 42]);
        s.send_f32s(&[1.5, -2.25]).unwrap();
        assert_eq!(c.recv_f32s().unwrap(), vec![1.5, -2.25]);
    }

    #[test]
    fn byte_counters_are_exact() {
        let (c, s, counter) = channel_pair();
        c.send_bytes(&[0u8; 100]).unwrap();
        s.recv_bytes().unwrap();
        s.send_bytes(&[0u8; 40]).unwrap();
        c.recv_bytes().unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.bytes_client_to_server, 100);
        assert_eq!(snap.bytes_server_to_client, 40);
        assert_eq!(snap.bytes_total(), 140);
        assert_eq!(snap.messages, 2);
    }

    #[test]
    fn flights_count_direction_changes() {
        let (c, s, counter) = channel_pair();
        // Client sends twice in a row: one flight.
        c.send_bytes(b"a").unwrap();
        c.send_bytes(b"b").unwrap();
        s.recv_bytes().unwrap();
        s.recv_bytes().unwrap();
        assert_eq!(counter.snapshot().flights, 1);
        // Server replies: second flight = one round trip.
        s.send_bytes(b"c").unwrap();
        c.recv_bytes().unwrap();
        let snap = counter.snapshot();
        assert_eq!(snap.flights, 2);
        assert_eq!(snap.round_trips(), 1);
    }

    #[test]
    fn snapshot_difference_isolates_a_phase() {
        let (c, s, counter) = channel_pair();
        c.send_bytes(&[0u8; 10]).unwrap();
        s.recv_bytes().unwrap();
        let mark = counter.snapshot();
        s.send_bytes(&[0u8; 30]).unwrap();
        c.recv_bytes().unwrap();
        let phase = counter.snapshot().since(&mark);
        assert_eq!(phase.bytes_total(), 30);
        assert_eq!(phase.flights, 1);
    }

    #[test]
    fn disconnected_peer_errors() {
        let (c, s, _) = channel_pair();
        drop(s);
        assert_eq!(c.send_bytes(b"x").unwrap_err(), TransportError::Disconnected);
        assert_eq!(c.recv_bytes().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn decode_rejects_ragged_frames() {
        let (c, s, _) = channel_pair();
        c.send_bytes(&[1, 2, 3]).unwrap();
        assert!(matches!(s.recv_u64s(), Err(TransportError::Decode(_))));
        c.send_bytes(&[1, 2, 3]).unwrap();
        assert!(matches!(s.recv_f32s(), Err(TransportError::Decode(_))));
    }

    #[test]
    fn threads_can_run_a_protocol() {
        let (c, s, counter) = channel_pair();
        let t = std::thread::spawn(move || {
            // Server echoes incremented values.
            let v = s.recv_u64s().unwrap();
            let inc: Vec<u64> = v.iter().map(|x| x + 1).collect();
            s.send_u64s(&inc).unwrap();
        });
        c.send_u64s(&[10, 20]).unwrap();
        assert_eq!(c.recv_u64s().unwrap(), vec![11, 21]);
        t.join().unwrap();
        assert_eq!(counter.snapshot().round_trips(), 1);
    }

    #[test]
    fn boxed_channel_is_a_channel() {
        let (c, s, _) = channel_pair();
        let c: Box<dyn Channel> = Box::new(c);
        c.send_u64s(&[7]).unwrap();
        assert_eq!(s.recv_u64s().unwrap(), vec![7]);
        assert_eq!(c.side(), Side::Client);
    }
}
