//! The core [`Tensor`] type: an owned, row-major `f32` array.

use crate::{matmul, Result, Shape, TensorError};
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// An owned, dense, row-major `f32` tensor.
///
/// Activations and images use the NCHW convention `[batch, channels,
/// height, width]`; weight matrices are rank-2 `[rows, cols]`.
///
/// Most arithmetic helpers come in two flavours: a fallible, shape-checked
/// method returning [`Result`] (e.g. [`Tensor::add`]) and an in-place
/// variant (e.g. [`Tensor::add_assign_scaled`]) used in hot loops.
///
/// ```
/// use c2pi_tensor::Tensor;
/// let x = Tensor::full(&[2, 2], 3.0);
/// let y = x.map(|v| v * 2.0);
/// assert_eq!(y.as_slice(), &[6.0; 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length does
    /// not equal the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                found: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`,
    /// seeded deterministically.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(dims);
        let data = (0..shape.volume()).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with approximately normal elements (Irwin–Hall sum
    /// of 12 uniforms), mean `mean`, standard deviation `std`, seeded
    /// deterministically.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shape = Shape::new(dims);
        let data = (0..shape.volume())
            .map(|_| {
                let s: f32 = (0..12).map(|_| rng.random::<f32>()).sum::<f32>() - 6.0;
                mean + std * s
            })
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                found: self.data.len(),
            });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise binary operation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other, "zip_map")?;
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign_scaled(&mut self, other: &Tensor, alpha: f32) -> Result<()> {
        self.check_same_shape(other, "add_assign_scaled")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm `Σ vᵢ²`.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Mean squared difference against another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "mse")?;
        let n = self.data.len().max(1) as f32;
        Ok(self.data.iter().zip(other.data.iter()).map(|(&a, &b)| (a - b) * (a - b)).sum::<f32>()
            / n)
    }

    /// Index of the largest element (`None` when empty).
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Matrix product (rank-2 × rank-2).
    ///
    /// # Errors
    ///
    /// Returns an error unless `self` is `[m, k]` and `rhs` is `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        matmul::matmul(self, rhs)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts batch element `b` of an NCHW tensor as a `[1, c, h, w]`
    /// tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 tensors or out-of-range batch
    /// indices.
    pub fn batch_item(&self, b: usize) -> Result<Tensor> {
        let (n, c, h, w) = self.shape.as_nchw()?;
        if b >= n {
            return Err(TensorError::IndexOutOfBounds { index: b, len: n });
        }
        let stride = c * h * w;
        Ok(Tensor {
            shape: Shape::new(&[1, c, h, w]),
            data: self.data[b * stride..(b + 1) * stride].to_vec(),
        })
    }

    /// Stacks `[1, c, h, w]` tensors along the batch dimension.
    ///
    /// # Errors
    ///
    /// Returns an error when the list is empty or items disagree in shape.
    pub fn stack_batch(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::BadGeometry("empty batch".into()))?;
        let (_, c, h, w) = first.shape.as_nchw()?;
        let mut data = Vec::with_capacity(items.len() * c * h * w);
        for it in items {
            let (n_i, c_i, h_i, w_i) = it.shape.as_nchw()?;
            if n_i != 1 || (c_i, h_i, w_i) != (c, h, w) {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![1, c, h, w],
                    found: it.dims().to_vec(),
                    op: "stack_batch",
                });
            }
            data.extend_from_slice(&it.data);
        }
        Ok(Tensor { shape: Shape::new(&[items.len(), c, h, w]), data })
    }

    /// Clamps every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.dims().to_vec(),
                found: other.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 6.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.max(), 6.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.argmax(), Some(5));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let r = t.reshape(&[6, 4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10.0, 40.0]);
        assert_eq!(a.scale(-1.0).as_slice(), &[-1.0, -2.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn add_assign_scaled_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.add_assign_scaled(&g, 0.5).unwrap();
        a.add_assign_scaled(&g, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::rand_uniform(&[3, 5], -1.0, 1.0, 7);
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn eye_is_matmul_identity() {
        let a = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, 3);
        let i = Tensor::eye(4);
        let p = a.matmul(&i).unwrap();
        for (x, y) in a.as_slice().iter().zip(p.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_item_and_stack_round_trip() {
        let t = Tensor::rand_uniform(&[3, 2, 4, 4], -1.0, 1.0, 11);
        let items: Vec<Tensor> = (0..3).map(|b| t.batch_item(b).unwrap()).collect();
        let back = Tensor::stack_batch(&items).unwrap();
        assert_eq!(back, t);
        assert!(t.batch_item(3).is_err());
    }

    #[test]
    fn rand_uniform_respects_bounds_and_seed() {
        let a = Tensor::rand_uniform(&[100], -0.5, 0.5, 42);
        let b = Tensor::rand_uniform(&[100], -0.5, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn rand_normal_statistics_are_plausible() {
        let t = Tensor::rand_normal(&[10_000], 1.0, 2.0, 5);
        assert!((t.mean() - 1.0).abs() < 0.1);
        let var = t.map(|v| (v - t.mean()) * (v - t.mean())).mean();
        assert!((var.sqrt() - 2.0).abs() < 0.15);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).unwrap();
        assert_eq!(t.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn mse_of_identical_tensors_is_zero() {
        let t = Tensor::rand_uniform(&[32], -1.0, 1.0, 1);
        assert_eq!(t.mse(&t).unwrap(), 0.0);
    }

    proptest! {
        #[test]
        fn add_commutes(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = v.len();
            let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
            let b = Tensor::rand_uniform(&[n], -1.0, 1.0, 9);
            prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        }

        #[test]
        fn sub_then_add_round_trips(v in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]).unwrap();
            let b = Tensor::rand_uniform(&[n], -1.0, 1.0, 10);
            let r = a.sub(&b).unwrap().add(&b).unwrap();
            for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn scale_distributes_over_sum(v in proptest::collection::vec(-10.0f32..10.0, 1..64), s in -3.0f32..3.0) {
            let n = v.len();
            let a = Tensor::from_vec(v, &[n]).unwrap();
            let lhs = a.scale(s).sum();
            let rhs = a.sum() * s;
            prop_assert!((lhs - rhs).abs() < 1e-2);
        }
    }
}
