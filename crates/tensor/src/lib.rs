//! # c2pi-tensor
//!
//! Dense, row-major, `f32` tensor library used throughout the C2PI
//! reproduction. It provides exactly the primitives the paper's systems
//! need:
//!
//! * [`Tensor`] — an n-dimensional array in NCHW layout for images and
//!   activations;
//! * a cache-blocked, data-parallel [`matmul`](crate::matmul::matmul);
//! * `im2col`/`col2im` based convolution kernels (plus a direct reference
//!   implementation used for cross-checking);
//! * pooling and upsampling kernels with index bookkeeping for backprop.
//!
//! The crate is deliberately free of any learning logic: gradients,
//! layers and optimizers live in `c2pi-nn`.
//!
//! ## Example
//!
//! ```
//! use c2pi_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), c2pi_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod error;
pub mod matmul;
pub mod pool;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias for tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
