//! Convolution geometry and the `im2col`/`col2im` kernels.
//!
//! Layers in `c2pi-nn` express both the forward and backward passes of
//! (dilated) convolutions in terms of the three primitives here:
//!
//! * [`im2col`] — unfolds input patches into a `[c·kh·kw, oh·ow]` matrix
//!   so the convolution becomes a matmul with the `[oc, c·kh·kw]` weight
//!   matrix;
//! * [`col2im`] — the adjoint scatter, used for input gradients and for
//!   transposed convolutions;
//! * [`conv2d_direct`] — a straightforward reference implementation used
//!   to cross-check the fast path in tests.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution: kernel size, stride, zero padding and
/// dilation (all square, matching the paper's models).
///
/// ```
/// use c2pi_tensor::conv::Conv2dGeom;
/// let g = Conv2dGeom::new(3, 1, 1, 1); // 3x3, stride 1, pad 1 — "same"
/// assert_eq!(g.output_hw(32, 32).unwrap(), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dGeom {
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Dilation factor (1 = ordinary convolution).
    pub dilation: usize,
}

impl Conv2dGeom {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel`, `stride` or `dilation` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize, dilation: usize) -> Self {
        assert!(kernel > 0 && stride > 0 && dilation > 0, "conv geometry must be positive");
        Conv2dGeom { kernel, stride, padding, dilation }
    }

    /// Effective kernel extent once dilation is applied.
    pub fn effective_kernel(&self) -> usize {
        self.dilation * (self.kernel - 1) + 1
    }

    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] when the padded input is
    /// smaller than the effective kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let eff = self.effective_kernel();
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if ph < eff || pw < eff {
            return Err(TensorError::BadGeometry(format!(
                "padded input {ph}x{pw} smaller than effective kernel {eff}"
            )));
        }
        Ok(((ph - eff) / self.stride + 1, (pw - eff) / self.stride + 1))
    }
}

/// Unfolds one image `[1, c, h, w]` into a patch matrix
/// `[c·k·k, oh·ow]` according to `geom`.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or impossible geometry.
pub fn im2col(input: &Tensor, geom: Conv2dGeom) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    if n != 1 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![1, c, h, w],
            found: input.dims().to_vec(),
            op: "im2col",
        });
    }
    let (oh, ow) = geom.output_hw(h, w)?;
    let k = geom.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    let pad = geom.padding as isize;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride) as isize + (ky * geom.dilation) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = (ch * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride) as isize + (kx * geom.dilation) as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[base + oy * ow + ox] = data[in_row + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// The adjoint of [`im2col`]: scatters a patch matrix `[c·k·k, oh·ow]`
/// back onto a `[1, c, h, w]` image, accumulating where patches overlap.
///
/// # Errors
///
/// Returns an error when the column matrix shape disagrees with the
/// geometry.
pub fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, geom: Conv2dGeom) -> Result<Tensor> {
    let (oh, ow) = geom.output_hw(h, w)?;
    let k = geom.kernel;
    let (rows, ncols) = cols.shape().as_matrix()?;
    if rows != c * k * k || ncols != oh * ow {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c * k * k, oh * ow],
            found: vec![rows, ncols],
            op: "col2im",
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.as_slice();
    let pad = geom.padding as isize;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * ncols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride) as isize + (ky * geom.dilation) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let out_row = (ch * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride) as isize + (kx * geom.dilation) as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[out_row + ix as usize] += data[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[1, c, h, w])
}

/// Reference direct convolution of a batch `[n, c, h, w]` with weights
/// `[oc, c, k, k]` and per-channel bias `[oc]`.
///
/// Slow; used to validate the im2col path and in property tests.
///
/// # Errors
///
/// Returns an error on any shape/geometry inconsistency.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geom: Conv2dGeom,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (oc, wc, kh, kw) = weight.shape().as_nchw()?;
    if wc != c || kh != geom.kernel || kw != geom.kernel {
        return Err(TensorError::ShapeMismatch {
            expected: vec![oc, c, geom.kernel, geom.kernel],
            found: weight.dims().to_vec(),
            op: "conv2d_direct",
        });
    }
    if bias.len() != oc {
        return Err(TensorError::LengthMismatch { expected: oc, found: bias.len() });
    }
    let (oh, ow) = geom.output_hw(h, w)?;
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let pad = geom.padding as isize;
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.as_slice()[o];
                    for ch in 0..c {
                        for ky in 0..geom.kernel {
                            for kx in 0..geom.kernel {
                                let iy = (oy * geom.stride + ky * geom.dilation) as isize - pad;
                                let ix = (ox * geom.stride + kx * geom.dilation) as isize - pad;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let iv = input
                                    .at(&[b, ch, iy as usize, ix as usize])
                                    .expect("bounds checked");
                                let wv = weight.at(&[o, ch, ky, kx]).expect("bounds checked");
                                acc += iv * wv;
                            }
                        }
                    }
                    out.set(&[b, o, oy, ox], acc).expect("bounds checked");
                }
            }
        }
    }
    Ok(out)
}

/// Fast conv forward for one batch: `weight_mat [oc, c·k·k] × im2col`.
///
/// # Errors
///
/// Returns an error on shape/geometry inconsistency.
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geom: Conv2dGeom,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (oc, _, _, _) = weight.shape().as_nchw()?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let wmat = weight.reshape(&[oc, c * geom.kernel * geom.kernel])?;
    let mut items = Vec::with_capacity(n);
    for b in 0..n {
        let cols = im2col(&input.batch_item(b)?, geom)?;
        let mut prod = wmat.matmul(&cols)?; // [oc, oh*ow]
        for o in 0..oc {
            let bv = bias.as_slice()[o];
            for v in &mut prod.as_mut_slice()[o * oh * ow..(o + 1) * oh * ow] {
                *v += bv;
            }
        }
        items.push(prod.reshape(&[1, oc, oh, ow])?);
    }
    Tensor::stack_batch(&items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn output_size_same_padding() {
        let g = Conv2dGeom::new(3, 1, 1, 1);
        assert_eq!(g.output_hw(32, 32).unwrap(), (32, 32));
        let g2 = Conv2dGeom::new(3, 2, 1, 1);
        assert_eq!(g2.output_hw(32, 32).unwrap(), (16, 16));
    }

    #[test]
    fn dilation_grows_effective_kernel() {
        let g = Conv2dGeom::new(3, 1, 2, 2);
        assert_eq!(g.effective_kernel(), 5);
        assert_eq!(g.output_hw(8, 8).unwrap(), (8, 8));
    }

    #[test]
    fn impossible_geometry_is_rejected() {
        let g = Conv2dGeom::new(5, 1, 0, 1);
        assert!(g.output_hw(3, 3).is_err());
    }

    #[test]
    fn im2col_known_values() {
        // 1x1x3x3 input, 2x2 kernel, stride 1, no padding -> 4 patches.
        let input = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let cols = im2col(&input, Conv2dGeom::new(2, 1, 0, 1)).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // Row 0 holds the top-left element of each patch.
        assert_eq!(&cols.as_slice()[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Row 3 holds the bottom-right element of each patch.
        assert_eq!(&cols.as_slice()[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_rejects_batch() {
        let input = Tensor::zeros(&[2, 1, 4, 4]);
        assert!(im2col(&input, Conv2dGeom::new(2, 1, 0, 1)).is_err());
    }

    #[test]
    fn conv_paths_agree_basic() {
        let input = Tensor::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, 1);
        let weight = Tensor::rand_uniform(&[4, 3, 3, 3], -0.5, 0.5, 2);
        let bias = Tensor::rand_uniform(&[4], -0.1, 0.1, 3);
        let g = Conv2dGeom::new(3, 1, 1, 1);
        let fast = conv2d_im2col(&input, &weight, &bias, g).unwrap();
        let slow = conv2d_direct(&input, &weight, &bias, g).unwrap();
        assert_eq!(fast.dims(), slow.dims());
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the conv backward pass relies on.
        let g = Conv2dGeom::new(3, 2, 1, 1);
        let x = Tensor::rand_uniform(&[1, 2, 7, 7], -1.0, 1.0, 4);
        let (oh, ow) = g.output_hw(7, 7).unwrap();
        let y = Tensor::rand_uniform(&[2 * 9, oh * ow], -1.0, 1.0, 5);
        let lhs: f32 =
            im2col(&x, g).unwrap().as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, 2, 7, 7, g).unwrap();
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn conv_paths_agree_random_geometry(
            c in 1usize..3, oc in 1usize..3, hw in 4usize..9,
            k in 1usize..4, stride in 1usize..3, pad in 0usize..2, dil in 1usize..3,
            seed in 0u64..100,
        ) {
            let g = Conv2dGeom::new(k, stride, pad, dil);
            prop_assume!(g.output_hw(hw, hw).is_ok());
            let input = Tensor::rand_uniform(&[1, c, hw, hw], -1.0, 1.0, seed);
            let weight = Tensor::rand_uniform(&[oc, c, k, k], -1.0, 1.0, seed + 1);
            let bias = Tensor::rand_uniform(&[oc], -0.5, 0.5, seed + 2);
            let fast = conv2d_im2col(&input, &weight, &bias, g).unwrap();
            let slow = conv2d_direct(&input, &weight, &bias, g).unwrap();
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        #[test]
        fn col2im_adjoint_random_geometry(
            c in 1usize..3, hw in 4usize..9, k in 1usize..4,
            stride in 1usize..3, pad in 0usize..2, seed in 0u64..100,
        ) {
            let g = Conv2dGeom::new(k, stride, pad, 1);
            prop_assume!(g.output_hw(hw, hw).is_ok());
            let (oh, ow) = g.output_hw(hw, hw).unwrap();
            let x = Tensor::rand_uniform(&[1, c, hw, hw], -1.0, 1.0, seed);
            let y = Tensor::rand_uniform(&[c * k * k, oh * ow], -1.0, 1.0, seed + 1);
            let lhs: f32 = im2col(&x, g).unwrap().as_slice().iter()
                .zip(y.as_slice()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.as_slice().iter()
                .zip(col2im(&y, c, hw, hw, g).unwrap().as_slice())
                .map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-2);
        }
    }
}
