//! Shape helper: dimension bookkeeping shared by all tensor kernels.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// The dimensions of a [`crate::Tensor`], outermost first.
///
/// Rank-4 shapes follow the NCHW convention: `[batch, channels, height,
/// width]`. A scalar has the empty shape `[]` and volume 1.
///
/// ```
/// use c2pi_tensor::Shape;
/// let s = Shape::new(&[2, 3, 32, 32]);
/// assert_eq!(s.volume(), 2 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension slice.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= rank`.
    pub fn dim(&self, i: usize) -> Result<usize> {
        self.0.get(i).copied().ok_or(TensorError::IndexOutOfBounds { index: i, len: self.0.len() })
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use c2pi_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank differs from the shape rank or
    /// any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch {
                expected: self.0.len(),
                found: index.len(),
                op: "offset",
            });
        }
        let mut off = 0usize;
        for (stride, (&i, &d)) in self.strides().iter().zip(index.iter().zip(self.0.iter())) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            off += stride * i;
        }
        Ok(off)
    }

    /// Interprets this shape as NCHW, returning `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for ranks other than 4.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.0.len() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                found: self.0.len(),
                op: "as_nchw",
            });
        }
        Ok((self.0[0], self.0[1], self.0[2], self.0[3]))
    }

    /// Interprets this shape as a matrix, returning `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for ranks other than 2.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        if self.0.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                found: self.0.len(),
                op: "as_matrix",
            });
        }
        Ok((self.0[0], self.0[1]))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert!(s.strides().is_empty());
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[4]).strides(), vec![1]);
        assert_eq!(Shape::new(&[2, 5]).strides(), vec![5, 1]);
        assert_eq!(Shape::new(&[2, 3, 4, 5]).strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(s.offset(&[1]), Err(TensorError::RankMismatch { .. })));
        assert!(matches!(s.offset(&[2, 0]), Err(TensorError::IndexOutOfBounds { .. })));
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn nchw_and_matrix_views() {
        assert_eq!(Shape::new(&[1, 3, 8, 8]).as_nchw().unwrap(), (1, 3, 8, 8));
        assert!(Shape::new(&[3, 8, 8]).as_nchw().is_err());
        assert_eq!(Shape::new(&[6, 7]).as_matrix().unwrap(), (6, 7));
        assert!(Shape::new(&[6]).as_matrix().is_err());
    }

    proptest! {
        #[test]
        fn offset_is_bijective_over_volume(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let s = Shape::new(&dims);
            let mut seen = std::collections::HashSet::new();
            let mut idx = vec![0usize; dims.len()];
            loop {
                let off = s.offset(&idx).unwrap();
                prop_assert!(off < s.volume());
                prop_assert!(seen.insert(off));
                // odometer increment
                let mut k = dims.len();
                loop {
                    if k == 0 { break; }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < dims[k] { break; }
                    idx[k] = 0;
                    if k == 0 { k = usize::MAX; break; }
                }
                if k == usize::MAX { break; }
            }
            prop_assert_eq!(seen.len(), s.volume());
        }
    }
}
