//! Error type for tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Vec<usize>,
        /// Shape actually supplied.
        found: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The element count implied by a shape does not match the buffer length.
    LengthMismatch {
        /// Element count implied by the requested shape.
        expected: usize,
        /// Length of the supplied buffer.
        found: usize,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the supplied tensor.
        found: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index is out of bounds for the given dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The size of the dimension being indexed.
        len: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger
    /// than padded input).
    BadGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, found, op } => {
                write!(f, "shape mismatch in {op}: expected {expected:?}, found {found:?}")
            }
            TensorError::LengthMismatch { expected, found } => {
                write!(f, "buffer length {found} does not match shape volume {expected}")
            }
            TensorError::RankMismatch { expected, found, op } => {
                write!(f, "rank mismatch in {op}: expected rank {expected}, found rank {found}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of size {len}")
            }
            TensorError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeMismatch { expected: vec![2], found: vec![3], op: "add" },
            TensorError::LengthMismatch { expected: 4, found: 5 },
            TensorError::RankMismatch { expected: 4, found: 2, op: "conv2d" },
            TensorError::IndexOutOfBounds { index: 9, len: 3 },
            TensorError::BadGeometry("kernel too large".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
