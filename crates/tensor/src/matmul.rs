//! Cache-blocked, data-parallel matrix multiplication.
//!
//! The kernel used by every linear and (through im2col) convolutional
//! layer in the reproduction. Rows of the output are distributed across
//! the rayon pool; within a row-block the kernel iterates in `i-k-j`
//! order so the innermost loop streams both `b` and `c` contiguously,
//! which lets LLVM auto-vectorize it.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Minimum number of output elements before the kernel bothers spawning
/// parallel work; below this, threading overhead dominates.
const PAR_THRESHOLD: usize = 64 * 64;

/// Matrix product `a × b` for `a: [m, k]`, `b: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when either input is not rank 2
/// and [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// ```
/// use c2pi_tensor::{matmul::matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &b)?.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), c2pi_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, n],
            found: vec![k2, n],
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    if m * n >= PAR_THRESHOLD {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            row_kernel(row, &av[i * k..(i + 1) * k], bv, n);
        });
    } else {
        for i in 0..m {
            row_kernel(&mut out[i * n..(i + 1) * n], &av[i * k..(i + 1) * k], bv, n);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes one output row: `row += a_row · B`.
#[inline]
fn row_kernel(row: &mut [f32], a_row: &[f32], b: &[f32], n: usize) {
    for (kk, &aik) in a_row.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        let brow = &b[kk * n..kk * n + n];
        for (r, &bv) in row.iter_mut().zip(brow.iter()) {
            *r += aik * bv;
        }
    }
}

/// Matrix product where `b` is supplied transposed: computes `a × bᵀ` for
/// `a: [m, k]`, `bt: [n, k]`.
///
/// Used by layer backward passes, which naturally hold `Wᵀ`.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_bt(a: &Tensor, bt: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (n, k2) = bt.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, k],
            found: vec![n, k2],
            op: "matmul_bt",
        });
    }
    let av = a.as_slice();
    let bv = bt.as_slice();
    let mut out = vec![0.0f32; m * n];
    let dot = |i: usize, j: usize| -> f32 {
        av[i * k..(i + 1) * k].iter().zip(&bv[j * k..(j + 1) * k]).map(|(&x, &y)| x * y).sum()
    };
    if m * n >= PAR_THRESHOLD {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            for (j, r) in row.iter_mut().enumerate() {
                *r = dot(i, j);
            }
        });
    } else {
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = dot(i, j);
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix product where `a` is supplied transposed: computes `aᵀ × b` for
/// `at: [k, m]`, `b: [k, n]`.
///
/// Used when accumulating weight gradients (`∂L/∂W = xᵀ · ∂L/∂y`).
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_at(at: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = at.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, n],
            found: vec![k2, n],
            op: "matmul_at",
        });
    }
    let av = at.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    // i-k-j order over the output [m, n]: out[i, :] += at[kk, i] * b[kk, :]
    for kk in 0..k {
        let brow = &bv[kk * n..kk * n + n];
        for i in 0..m {
            let aik = av[kk * m + i];
            if aik == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..i * n + n];
            for (r, &bvv) in orow.iter_mut().zip(brow.iter()) {
                *r += aik * bvv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Naive reference matmul used to validate the blocked kernels in tests.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_matrix()?;
    let (k2, n) = b.shape().as_matrix()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k, n],
            found: vec![k2, n],
            op: "matmul_reference",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out.as_mut_slice()[i * n + j] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn inner_dim_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &Tensor::zeros(&[2, 4])).is_err());
        assert!(matmul_at(&a, &Tensor::zeros(&[4, 2])).is_err());
    }

    #[test]
    fn rank_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let b = Tensor::zeros(&[3, 4]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn large_matches_reference_and_uses_parallel_path() {
        let a = Tensor::rand_uniform(&[96, 33], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[33, 96], -1.0, 1.0, 2);
        assert_close(&matmul(&a, &b).unwrap(), &matmul_reference(&a, &b).unwrap(), 1e-4);
    }

    #[test]
    fn bt_variant_matches_plain() {
        let a = Tensor::rand_uniform(&[7, 5], -1.0, 1.0, 3);
        let b = Tensor::rand_uniform(&[5, 9], -1.0, 1.0, 4);
        let bt = b.transpose().unwrap();
        assert_close(&matmul_bt(&a, &bt).unwrap(), &matmul(&a, &b).unwrap(), 1e-5);
    }

    #[test]
    fn at_variant_matches_plain() {
        let at = Tensor::rand_uniform(&[5, 7], -1.0, 1.0, 5);
        let b = Tensor::rand_uniform(&[5, 9], -1.0, 1.0, 6);
        assert_close(
            &matmul_at(&at, &b).unwrap(),
            &matmul(&at.transpose().unwrap(), &b).unwrap(),
            1e-5,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn kernels_agree_with_reference(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
            let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, seed);
            let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, seed + 1);
            let fast = matmul(&a, &b).unwrap();
            let refr = matmul_reference(&a, &b).unwrap();
            for (x, y) in fast.as_slice().iter().zip(refr.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
            let bt = b.transpose().unwrap();
            let via_bt = matmul_bt(&a, &bt).unwrap();
            for (x, y) in via_bt.as_slice().iter().zip(refr.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
            let at = a.transpose().unwrap();
            let via_at = matmul_at(&at, &b).unwrap();
            for (x, y) in via_at.as_slice().iter().zip(refr.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn identity_is_neutral(m in 1usize..8, n in 1usize..8, seed in 0u64..100) {
            let a = Tensor::rand_uniform(&[m, n], -1.0, 1.0, seed);
            let p = matmul(&a, &Tensor::eye(n)).unwrap();
            for (x, y) in p.as_slice().iter().zip(a.as_slice()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }
    }
}
