//! Pooling and nearest-neighbour upsampling kernels.
//!
//! Max pooling records argmax indices so the `c2pi-nn` layer can route
//! gradients back exactly; average pooling and upsampling have closed-form
//! adjoints.

use crate::{Result, Tensor, TensorError};

/// Output of [`max_pool2d`]: pooled values plus flat argmax indices into
/// the input buffer (one per output element) for the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled activations `[n, c, oh, ow]`.
    pub output: Tensor,
    /// For each output element, the flat index of the winning input.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling with a square window and equal stride.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or when the window does not fit.
pub fn max_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    if window == 0 || stride == 0 {
        return Err(TensorError::BadGeometry("pool window/stride must be positive".into()));
    }
    if h < window || w < window {
        return Err(TensorError::BadGeometry(format!(
            "pool window {window} larger than input {h}x{w}"
        )));
    }
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.as_slice();
    let mut oi = 0usize;
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = plane + oy * stride * w + ox * stride;
                    for ky in 0..window {
                        for kx in 0..window {
                            let idx = plane + (oy * stride + ky) * w + (ox * stride + kx);
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out.as_mut_slice()[oi] = best;
                    argmax[oi] = best_idx;
                    oi += 1;
                }
            }
        }
    }
    Ok(MaxPoolOutput { output: out, argmax })
}

/// Routes output gradients back through the argmax indices recorded by
/// [`max_pool2d`].
///
/// # Errors
///
/// Returns an error when `grad_out` length disagrees with `argmax`.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch { expected: argmax.len(), found: grad_out.len() });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    for (g, &idx) in grad_out.as_slice().iter().zip(argmax.iter()) {
        grad_in.as_mut_slice()[idx] += g;
    }
    Ok(grad_in)
}

/// 2-D average pooling with a square window and equal stride.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or when the window does not fit.
pub fn avg_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    if window == 0 || stride == 0 {
        return Err(TensorError::BadGeometry("pool window/stride must be positive".into()));
    }
    if h < window || w < window {
        return Err(TensorError::BadGeometry(format!(
            "pool window {window} larger than input {h}x{w}"
        )));
    }
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let inv = 1.0 / (window * window) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let data = input.as_slice();
    let mut oi = 0usize;
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += data[plane + (oy * stride + ky) * w + (ox * stride + kx)];
                        }
                    }
                    out.as_mut_slice()[oi] = acc * inv;
                    oi += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Adjoint of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its window.
///
/// # Errors
///
/// Returns an error on shape/geometry inconsistency.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    let mut grad_in = Tensor::zeros(input_dims);
    let (n, c, h, w) = grad_in.shape().as_nchw()?;
    let (gn, gc, oh, ow) = grad_out.shape().as_nchw()?;
    if gn != n || gc != c {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c, oh, ow],
            found: grad_out.dims().to_vec(),
            op: "avg_pool2d_backward",
        });
    }
    let inv = 1.0 / (window * window) as f32;
    let gd = grad_out.as_slice();
    let mut oi = 0usize;
    for b in 0..n {
        for ch in 0..c {
            let plane = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[oi] * inv;
                    oi += 1;
                    for ky in 0..window {
                        for kx in 0..window {
                            grad_in.as_mut_slice()
                                [plane + (oy * stride + ky) * w + (ox * stride + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

/// Nearest-neighbour upsampling by an integer factor.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs or a zero factor.
pub fn upsample_nearest(input: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::BadGeometry("upsample factor must be positive".into()));
    }
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (oh, ow) = (h * factor, w * factor);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let data = input.as_slice();
    for b in 0..n {
        for ch in 0..c {
            let ip = (b * c + ch) * h * w;
            let op = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    out.as_mut_slice()[op + oy * ow + ox] =
                        data[ip + (oy / factor) * w + ox / factor];
                }
            }
        }
    }
    Ok(out)
}

/// Adjoint of [`upsample_nearest`]: sums gradients over each upsampled
/// block.
///
/// # Errors
///
/// Returns an error when `grad_out` is not rank 4 or not divisible by the
/// factor.
pub fn upsample_nearest_backward(grad_out: &Tensor, factor: usize) -> Result<Tensor> {
    let (n, c, oh, ow) = grad_out.shape().as_nchw()?;
    if factor == 0 || oh % factor != 0 || ow % factor != 0 {
        return Err(TensorError::BadGeometry(format!(
            "gradient {oh}x{ow} not divisible by factor {factor}"
        )));
    }
    let (h, w) = (oh / factor, ow / factor);
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gd = grad_out.as_slice();
    for b in 0..n {
        for ch in 0..c {
            let ip = (b * c + ch) * h * w;
            let op = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    grad_in.as_mut_slice()[ip + (oy / factor) * w + ox / factor] +=
                        gd[op + oy * ow + ox];
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_pool_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(p.output.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(p.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = max_pool2d(&input, 2, 2).unwrap();
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let gi = max_pool2d_backward(&g, &p.argmax, &[1, 1, 4, 4]).unwrap();
        assert_eq!(gi.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(gi.at(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(gi.at(&[0, 0, 3, 1]).unwrap(), 3.0);
        assert_eq!(gi.at(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(gi.sum(), 10.0);
    }

    #[test]
    fn avg_pool_known_values() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let p = avg_pool2d(&input, 2, 2).unwrap();
        assert_eq!(p.as_slice(), &[4.0]);
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(max_pool2d(&input, 3, 1).is_err());
        assert!(avg_pool2d(&input, 3, 1).is_err());
        assert!(max_pool2d(&input, 0, 1).is_err());
    }

    #[test]
    fn upsample_round_trip_shape() {
        let input = Tensor::rand_uniform(&[2, 3, 4, 4], -1.0, 1.0, 1);
        let up = upsample_nearest(&input, 2).unwrap();
        assert_eq!(up.dims(), &[2, 3, 8, 8]);
        assert_eq!(up.at(&[1, 2, 7, 7]).unwrap(), input.at(&[1, 2, 3, 3]).unwrap());
        let back = upsample_nearest_backward(&up, 2).unwrap();
        // sum over each 2x2 block of identical values = 4x the value
        for (a, b) in back.as_slice().iter().zip(input.as_slice()) {
            assert!((a - 4.0 * b).abs() < 1e-5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn avg_pool_backward_is_adjoint(
            hw in 2usize..8, window in 1usize..3, stride in 1usize..3, seed in 0u64..100,
        ) {
            prop_assume!(hw >= window);
            let x = Tensor::rand_uniform(&[1, 2, hw, hw], -1.0, 1.0, seed);
            let y = avg_pool2d(&x, window, stride).unwrap();
            let g = Tensor::rand_uniform(y.dims(), -1.0, 1.0, seed + 1);
            let lhs: f32 = y.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
            let gi = avg_pool2d_backward(&g, x.dims(), window, stride).unwrap();
            let rhs: f32 = x.as_slice().iter().zip(gi.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }

        #[test]
        fn max_pool_output_bounded_by_input(hw in 2usize..8, seed in 0u64..100) {
            let x = Tensor::rand_uniform(&[1, 1, hw, hw], -1.0, 1.0, seed);
            let p = max_pool2d(&x, 2, 1).unwrap();
            prop_assert!(p.output.max() <= x.max() + 1e-6);
            prop_assert!(p.output.min() >= x.min() - 1e-6);
        }

        #[test]
        fn upsample_backward_is_adjoint(hw in 1usize..6, f in 1usize..4, seed in 0u64..100) {
            let x = Tensor::rand_uniform(&[1, 2, hw, hw], -1.0, 1.0, seed);
            let y = upsample_nearest(&x, f).unwrap();
            let g = Tensor::rand_uniform(y.dims(), -1.0, 1.0, seed + 1);
            let lhs: f32 = y.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
            let gi = upsample_nearest_backward(&g, f).unwrap();
            let rhs: f32 = x.as_slice().iter().zip(gi.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }
    }
}
