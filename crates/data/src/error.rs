//! Error type for dataset and metric operations.

use c2pi_tensor::TensorError;
use std::fmt;

/// Error returned by fallible data operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A tensor kernel rejected its inputs.
    Tensor(TensorError),
    /// The images passed to a metric are incompatible (shape, range).
    BadImage(String),
    /// Invalid configuration (zero classes, empty split, …).
    BadConfig(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::BadImage(msg) => write!(f, "bad image: {msg}"),
            DataError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DataError::BadImage("negative".into()).to_string().contains("negative"));
        assert!(DataError::BadConfig("zero".into()).to_string().contains("zero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
