//! # c2pi-data
//!
//! Datasets and image metrics for the C2PI reproduction.
//!
//! * [`synth`] — a procedural, class-conditioned image generator standing
//!   in for CIFAR-10/100 (no dataset files are available offline; see
//!   DESIGN.md §3 for the substitution argument);
//! * [`metrics`] — the structural similarity index (SSIM, Wang et al.
//!   2004) that the paper uses to score every inference-data-privacy
//!   attack, plus PSNR;
//! * [`dataset`] — a small labelled-set container with train/test
//!   splitting and batching.
//!
//! ## Example
//!
//! ```
//! use c2pi_data::synth::{SynthConfig, SynthDataset};
//! use c2pi_data::metrics::ssim;
//!
//! let data = SynthDataset::generate(&SynthConfig { classes: 10, per_class: 2, ..Default::default() });
//! let img = &data.images()[0];
//! // An image is perfectly similar to itself.
//! assert!((ssim(img, img)? - 1.0).abs() < 1e-6);
//! # Ok::<(), c2pi_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod metrics;
pub mod synth;

pub use dataset::Dataset;
pub use error::DataError;

/// Convenience result alias for data operations.
pub type Result<T> = std::result::Result<T, DataError>;
