//! Labelled image set container.

use crate::{DataError, Result};
use c2pi_tensor::Tensor;
use rand::{seq::SliceRandom, SeedableRng};

/// An in-memory labelled image dataset (`[1, c, h, w]` tensors plus class
/// indices).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset after validating alignment and label range.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] when lengths differ, a label is
    /// out of range, or `num_classes` is zero.
    pub fn new(images: Vec<Tensor>, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if num_classes == 0 {
            return Err(DataError::BadConfig("num_classes must be positive".into()));
        }
        if images.len() != labels.len() {
            return Err(DataError::BadConfig(format!(
                "{} images vs {} labels",
                images.len(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::BadConfig(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset { images, labels, num_classes })
    }

    /// The images.
    pub fn images(&self) -> &[Tensor] {
        &self.images
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Splits into (train, test) with `train_fraction` of a shuffled copy
    /// going to train.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] when either side would be empty.
    pub fn split(&self, train_fraction: f32, seed: u64) -> Result<(Dataset, Dataset)> {
        let n_train = (self.len() as f32 * train_fraction).round() as usize;
        if n_train == 0 || n_train >= self.len() {
            return Err(DataError::BadConfig(format!(
                "split fraction {train_fraction} leaves an empty side for {} examples",
                self.len()
            )));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let pick = |idx: &[usize]| {
            let images = idx.iter().map(|&i| self.images[i].clone()).collect();
            let labels = idx.iter().map(|&i| self.labels[i]).collect();
            Dataset { images, labels, num_classes: self.num_classes }
        };
        Ok((pick(&order[..n_train]), pick(&order[n_train..])))
    }

    /// The first `n` examples as a new dataset (for CPU-scale runs).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            images: self.images[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
            num_classes: self.num_classes,
        }
    }

    /// Stacks all images into one `[n, c, h, w]` batch.
    ///
    /// # Errors
    ///
    /// Returns an error when empty or when image shapes disagree.
    pub fn as_batch(&self) -> Result<Tensor> {
        Ok(Tensor::stack_batch(&self.images)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Dataset {
        let images =
            (0..n).map(|i| Tensor::rand_uniform(&[1, 1, 4, 4], 0.0, 1.0, i as u64)).collect();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3).unwrap()
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(Dataset::new(vec![], vec![0], 2).is_err());
        assert!(Dataset::new(vec![Tensor::zeros(&[1, 1, 2, 2])], vec![5], 2).is_err());
        assert!(Dataset::new(vec![], vec![], 0).is_err());
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = sample(10);
        let (tr, te) = d.split(0.7, 0).unwrap();
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(tr.num_classes(), 3);
    }

    #[test]
    fn degenerate_split_rejected() {
        let d = sample(4);
        assert!(d.split(0.0, 0).is_err());
        assert!(d.split(1.0, 0).is_err());
    }

    #[test]
    fn take_truncates() {
        let d = sample(10);
        assert_eq!(d.take(4).len(), 4);
        assert_eq!(d.take(99).len(), 10);
    }

    #[test]
    fn as_batch_stacks() {
        let d = sample(5);
        let b = d.as_batch().unwrap();
        assert_eq!(b.dims(), &[5, 1, 4, 4]);
    }
}
