//! Procedural class-conditioned image generator — the offline stand-in
//! for CIFAR-10/100.
//!
//! Each class is a parametric texture family (oriented stripes,
//! checkerboards, radial rings, gradients, blob constellations, …) whose
//! parameters are derived deterministically from the class index; each
//! *instance* adds phase/position jitter, colour jitter and pixel noise.
//! The result is a dataset that
//!
//! * small conv nets can classify well above chance (so the paper's
//!   accuracy-vs-noise and boundary-accuracy experiments are meaningful),
//!   and
//! * has low-level spatial structure, so SSIM between an original and an
//!   attack reconstruction behaves like it does on natural images.

use crate::Dataset;
use c2pi_tensor::Tensor;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of classes (10 mirrors CIFAR-10, 100 mirrors CIFAR-100).
    pub classes: usize,
    /// Images generated per class.
    pub per_class: usize,
    /// Square image side length.
    pub image_size: usize,
    /// Master seed; the generator is fully deterministic given the
    /// configuration.
    pub seed: u64,
    /// Amplitude of the per-pixel uniform noise.
    pub pixel_noise: f32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { classes: 10, per_class: 16, image_size: 32, seed: 7, pixel_noise: 0.04 }
    }
}

/// A generated dataset (thin wrapper adding the generator entry point to
/// [`Dataset`]).
#[derive(Debug, Clone)]
pub struct SynthDataset {
    inner: Dataset,
}

impl SynthDataset {
    /// Generates the dataset described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `classes`, `per_class` or `image_size` is zero.
    pub fn generate(cfg: &SynthConfig) -> Self {
        assert!(
            cfg.classes > 0 && cfg.per_class > 0 && cfg.image_size > 0,
            "synth config must be positive"
        );
        let mut images = Vec::with_capacity(cfg.classes * cfg.per_class);
        let mut labels = Vec::with_capacity(cfg.classes * cfg.per_class);
        for class in 0..cfg.classes {
            for inst in 0..cfg.per_class {
                let inst_seed = cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((class as u64) << 20)
                    .wrapping_add(inst as u64);
                images.push(render_class(class, cfg, inst_seed));
                labels.push(class);
            }
        }
        SynthDataset {
            inner: Dataset::new(images, labels, cfg.classes)
                .expect("generator produced consistent data"),
        }
    }

    /// The generated images, `[1, 3, s, s]` each, values in `[0, 1]`.
    pub fn images(&self) -> &[Tensor] {
        self.inner.images()
    }

    /// Class labels aligned with [`SynthDataset::images`].
    pub fn labels(&self) -> &[usize] {
        self.inner.labels()
    }

    /// Consumes the wrapper, returning the plain [`Dataset`].
    pub fn into_dataset(self) -> Dataset {
        self.inner
    }

    /// Borrow the underlying [`Dataset`].
    pub fn as_dataset(&self) -> &Dataset {
        &self.inner
    }
}

/// Deterministic per-class parameters derived by integer hashing.
#[derive(Debug, Clone, Copy)]
struct ClassParams {
    family: usize,
    angle: f32,
    freq: f32,
    color_a: [f32; 3],
    color_b: [f32; 3],
    cells: usize,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f32 {
    (h >> 11) as f32 / (1u64 << 53) as f32
}

fn class_params(class: usize) -> ClassParams {
    let h0 = splitmix(class as u64 + 1);
    let h1 = splitmix(h0);
    let h2 = splitmix(h1);
    let h3 = splitmix(h2);
    ClassParams {
        family: class % 8,
        angle: unit(h0) * std::f32::consts::PI,
        freq: 1.5 + unit(h1) * 4.0,
        color_a: [unit(h2), unit(splitmix(h2 ^ 1)), unit(splitmix(h2 ^ 2))],
        color_b: [unit(h3), unit(splitmix(h3 ^ 1)), unit(splitmix(h3 ^ 2))],
        cells: 2 + (h1 % 5) as usize,
    }
}

/// Scalar field in `[0, 1]` for the class's texture family at normalised
/// coordinates `(u, v) ∈ [0, 1]²` with instance jitter `(pu, pv, pr)`.
fn field(p: &ClassParams, u: f32, v: f32, pu: f32, pv: f32, pr: f32) -> f32 {
    use std::f32::consts::PI;
    let (su, sv) = (u + pu * 0.2, v + pv * 0.2);
    let rot = p.angle + pr * 0.3;
    let ru = su * rot.cos() + sv * rot.sin();
    let rv = -su * rot.sin() + sv * rot.cos();
    match p.family {
        0 => 0.5 + 0.5 * (2.0 * PI * p.freq * ru).sin(),
        1 => {
            let cx = (ru * p.cells as f32).floor() as i64;
            let cy = (rv * p.cells as f32).floor() as i64;
            if (cx + cy).rem_euclid(2) == 0 {
                1.0
            } else {
                0.0
            }
        }
        2 => {
            let dx = su - 0.5 - pu * 0.1;
            let dy = sv - 0.5 - pv * 0.1;
            let r = (dx * dx + dy * dy).sqrt();
            0.5 + 0.5 * (2.0 * PI * p.freq * 2.0 * r).cos()
        }
        3 => (ru).rem_euclid(1.0),
        4 => {
            // Blob constellation: class-fixed centres, instance jitter.
            let mut acc: f32 = 0.0;
            for i in 0..p.cells {
                let h = splitmix((p.cells * 31 + i) as u64);
                let bx = unit(h) + pu * 0.15;
                let by = unit(splitmix(h)) + pv * 0.15;
                let d2 = (su - bx).powi(2) + (sv - by).powi(2);
                acc += (-d2 * 40.0 * p.freq).exp();
            }
            acc.min(1.0)
        }
        5 => {
            let d = (su - 0.5).abs().max((sv - 0.5).abs());
            0.5 + 0.5 * (2.0 * PI * p.freq * 2.0 * d).sin()
        }
        6 => {
            0.5 + 0.25 * (2.0 * PI * p.freq * ru).sin()
                + 0.25 * (2.0 * PI * (p.freq * 0.7) * rv).cos()
        }
        _ => {
            // Polka dots on a class-sized grid.
            let g = p.cells as f32 + 1.0;
            let fu = (su * g).fract() - 0.5;
            let fv = (sv * g).fract() - 0.5;
            if fu * fu + fv * fv < 0.09 {
                1.0
            } else {
                0.2
            }
        }
    }
}

fn render_class(class: usize, cfg: &SynthConfig, inst_seed: u64) -> Tensor {
    let p = class_params(class);
    let s = cfg.image_size;
    let mut rng = rand::rngs::StdRng::seed_from_u64(inst_seed);
    let pu: f32 = rng.random_range(-1.0..1.0);
    let pv: f32 = rng.random_range(-1.0..1.0);
    let pr: f32 = rng.random_range(-1.0..1.0);
    let cj: f32 = rng.random_range(-0.1..0.1);
    let mut img = Tensor::zeros(&[1, 3, s, s]);
    for y in 0..s {
        for x in 0..s {
            let u = x as f32 / (s - 1).max(1) as f32;
            let v = y as f32 / (s - 1).max(1) as f32;
            let t = field(&p, u, v, pu, pv, pr).clamp(0.0, 1.0);
            for ch in 0..3 {
                let base = p.color_a[ch] * (1.0 - t) + p.color_b[ch] * t + cj;
                let noise = rng.random_range(-cfg.pixel_noise..cfg.pixel_noise.max(1e-9));
                img.set(&[0, ch, y, x], (base + noise).clamp(0.0, 1.0))
                    .expect("coordinates in range");
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ssim;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig { classes: 4, per_class: 2, ..Default::default() };
        let a = SynthDataset::generate(&cfg);
        let b = SynthDataset::generate(&cfg);
        assert_eq!(a.images()[3], b.images()[3]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDataset::generate(&SynthConfig {
            classes: 2,
            per_class: 1,
            seed: 1,
            ..Default::default()
        });
        let b = SynthDataset::generate(&SynthConfig {
            classes: 2,
            per_class: 1,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.images()[0], b.images()[0]);
    }

    #[test]
    fn pixels_are_in_unit_range() {
        let d = SynthDataset::generate(&SynthConfig {
            classes: 10,
            per_class: 3,
            ..Default::default()
        });
        for img in d.images() {
            assert!(img.min() >= 0.0 && img.max() <= 1.0);
            assert_eq!(img.dims(), &[1, 3, 32, 32]);
        }
    }

    #[test]
    fn labels_align_with_class_blocks() {
        let d =
            SynthDataset::generate(&SynthConfig { classes: 3, per_class: 4, ..Default::default() });
        assert_eq!(d.labels().len(), 12);
        assert_eq!(d.labels()[0], 0);
        assert_eq!(d.labels()[4], 1);
        assert_eq!(d.labels()[11], 2);
    }

    #[test]
    fn same_class_more_similar_than_cross_class() {
        // Structural similarity within a class should on average beat
        // cross-class similarity — the property classifiers exploit.
        let d = SynthDataset::generate(&SynthConfig {
            classes: 6,
            per_class: 4,
            pixel_noise: 0.02,
            ..Default::default()
        });
        let imgs = d.images();
        let mut within = Vec::new();
        let mut across = Vec::new();
        for c in 0..6usize {
            let b = c * 4;
            within.push(ssim(&imgs[b], &imgs[b + 1]).unwrap());
            across.push(ssim(&imgs[b], &imgs[(b + 5) % 24]).unwrap());
        }
        let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(avg(&within) > avg(&across), "within {:?} across {:?}", avg(&within), avg(&across));
    }

    #[test]
    fn hundred_class_mode_has_distinct_palettes() {
        let d = SynthDataset::generate(&SynthConfig {
            classes: 100,
            per_class: 1,
            ..Default::default()
        });
        assert_eq!(d.images().len(), 100);
        // Mean colours across classes should not collapse to one value.
        let means: Vec<f32> = d.images().iter().map(|i| i.mean()).collect();
        let spread = means.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - means.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(spread > 0.1);
    }
}
