//! Image quality metrics: SSIM (the paper's attack-success measure) and
//! PSNR.
//!
//! The paper judges an inference-data-privacy attack **failed** when the
//! structural similarity between the recovered image and the client's
//! input drops below a threshold (0.3 by default, following He et al.).
//! [`ssim`] implements the original Wang et al. 2004 definition: local
//! Gaussian-weighted statistics combined as
//! `((2·μx·μy + C1)(2·σxy + C2)) / ((μx² + μy² + C1)(σx² + σy² + C2))`,
//! averaged over all window positions and channels.

use crate::{DataError, Result};
use c2pi_tensor::Tensor;

/// Parameters of the SSIM computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Side length of the (square) Gaussian window. 7 suits 32×32
    /// CIFAR-scale images; the classic choice for larger images is 11.
    pub window: usize,
    /// Gaussian standard deviation.
    pub sigma: f32,
    /// Dynamic range of the pixel values (1.0 for `[0, 1]` images).
    pub dynamic_range: f32,
}

impl Default for SsimConfig {
    fn default() -> Self {
        SsimConfig { window: 7, sigma: 1.5, dynamic_range: 1.0 }
    }
}

fn gaussian_kernel(window: usize, sigma: f32) -> Vec<f32> {
    let c = (window as f32 - 1.0) / 2.0;
    let mut k = Vec::with_capacity(window * window);
    for y in 0..window {
        for x in 0..window {
            let dy = y as f32 - c;
            let dx = x as f32 - c;
            k.push((-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp());
        }
    }
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Mean SSIM between two `[1, c, h, w]` images with custom parameters.
///
/// # Errors
///
/// Returns an error when shapes differ, the tensors are not rank-4
/// single-image batches, or the window does not fit.
pub fn ssim_with(a: &Tensor, b: &Tensor, cfg: &SsimConfig) -> Result<f32> {
    let (na, ca, ha, wa) = a.shape().as_nchw().map_err(DataError::from)?;
    let (nb, cb, hb, wb) = b.shape().as_nchw().map_err(DataError::from)?;
    if (na, ca, ha, wa) != (nb, cb, hb, wb) {
        return Err(DataError::BadImage(format!(
            "image shapes differ: {:?} vs {:?}",
            a.dims(),
            b.dims()
        )));
    }
    if na != 1 {
        return Err(DataError::BadImage("ssim expects single images, not batches".into()));
    }
    if ha < cfg.window || wa < cfg.window {
        return Err(DataError::BadImage(format!(
            "window {} does not fit {}x{} image",
            cfg.window, ha, wa
        )));
    }
    let c1 = (0.01 * cfg.dynamic_range).powi(2);
    let c2 = (0.03 * cfg.dynamic_range).powi(2);
    let kern = gaussian_kernel(cfg.window, cfg.sigma);
    let oh = ha - cfg.window + 1;
    let ow = wa - cfg.window + 1;
    let mut total = 0.0f64;
    let mut count = 0usize;
    for ch in 0..ca {
        let pa = &a.as_slice()[ch * ha * wa..(ch + 1) * ha * wa];
        let pb = &b.as_slice()[ch * ha * wa..(ch + 1) * ha * wa];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut mu_a = 0.0f32;
                let mut mu_b = 0.0f32;
                let mut aa = 0.0f32;
                let mut bb = 0.0f32;
                let mut ab = 0.0f32;
                let mut ki = 0usize;
                for ky in 0..cfg.window {
                    let row = (oy + ky) * wa + ox;
                    for kx in 0..cfg.window {
                        let va = pa[row + kx];
                        let vb = pb[row + kx];
                        let w = kern[ki];
                        ki += 1;
                        mu_a += w * va;
                        mu_b += w * vb;
                        aa += w * va * va;
                        bb += w * vb * vb;
                        ab += w * va * vb;
                    }
                }
                let var_a = aa - mu_a * mu_a;
                let var_b = bb - mu_b * mu_b;
                let cov = ab - mu_a * mu_b;
                let s = ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
                    / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
                total += s as f64;
                count += 1;
            }
        }
    }
    Ok((total / count.max(1) as f64) as f32)
}

/// Mean SSIM with the default CIFAR-scale configuration.
///
/// # Errors
///
/// Same conditions as [`ssim_with`].
pub fn ssim(a: &Tensor, b: &Tensor) -> Result<f32> {
    ssim_with(a, b, &SsimConfig::default())
}

/// Peak signal-to-noise ratio in dB for `[0, 1]`-range images.
///
/// Returns `f32::INFINITY` for identical images.
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn psnr(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.dims() != b.dims() {
        return Err(DataError::BadImage(format!(
            "image shapes differ: {:?} vs {:?}",
            a.dims(),
            b.dims()
        )));
    }
    let mse = a.mse(b).map_err(DataError::from)?;
    if mse == 0.0 {
        return Ok(f32::INFINITY);
    }
    Ok(-10.0 * mse.log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn image(seed: u64) -> Tensor {
        Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, seed)
    }

    #[test]
    fn identical_images_have_ssim_one() {
        let img = image(0);
        assert!((ssim(&img, &img).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn independent_noise_has_low_ssim() {
        let a = image(1);
        let b = image(999);
        let s = ssim(&a, &b).unwrap();
        assert!(s < 0.3, "ssim {s}");
    }

    #[test]
    fn ssim_decreases_with_noise_magnitude() {
        // A structured image: horizontal gradient.
        let mut base = Tensor::zeros(&[1, 1, 16, 16]);
        for y in 0..16 {
            for x in 0..16 {
                base.set(&[0, 0, y, x], x as f32 / 15.0).unwrap();
            }
        }
        let mut last = 1.1f32;
        for (i, mag) in [0.05f32, 0.2, 0.6].iter().enumerate() {
            let noise = Tensor::rand_uniform(&[1, 1, 16, 16], -mag, *mag, i as u64 + 5);
            let noisy = base.add(&noise).unwrap();
            let s = ssim(&base, &noisy).unwrap();
            assert!(s < last, "mag {mag}: ssim {s} !< {last}");
            last = s;
        }
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = image(2);
        let b = a.map(|v| (v + 0.1).min(1.0));
        let ab = ssim(&a, &b).unwrap();
        let ba = ssim(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let a = image(3);
        let b = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(ssim(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
    }

    #[test]
    fn batches_rejected() {
        let a = Tensor::zeros(&[2, 3, 16, 16]);
        assert!(ssim(&a, &a).is_err());
    }

    #[test]
    fn window_must_fit() {
        let a = Tensor::zeros(&[1, 1, 4, 4]);
        let cfg = SsimConfig { window: 7, ..Default::default() };
        assert!(ssim_with(&a, &a, &cfg).is_err());
    }

    #[test]
    fn psnr_infinite_for_identical_and_finite_otherwise() {
        let a = image(4);
        assert_eq!(psnr(&a, &a).unwrap(), f32::INFINITY);
        let b = a.map(|v| (v * 0.9).min(1.0));
        let p = psnr(&a, &b).unwrap();
        assert!(p.is_finite() && p > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ssim_in_valid_range(seed in 0u64..500, shift in 0.0f32..0.5) {
            let a = image(seed);
            let b = a.map(|v| (v + shift).min(1.0));
            let s = ssim(&a, &b).unwrap();
            prop_assert!((-1.0..=1.0 + 1e-6).contains(&s));
        }

        #[test]
        fn self_similarity_is_maximal(seed in 0u64..200) {
            let a = image(seed);
            let b = image(seed + 1);
            prop_assert!(ssim(&a, &a).unwrap() >= ssim(&a, &b).unwrap());
        }
    }
}
