//! Garbled-circuit kernel throughput: nanoseconds per AND gate for
//! garbling (the offline phase) and evaluation (the Delphi online
//! phase), serial vs fanned out across cores via the rayon shim.
//!
//! The `serial` rows use one band covering the whole batch (no
//! fan-out); the `parallel` rows use a small band so every available
//! worker gets work. Each iteration processes a fixed batch of masked
//! ReLU items, so ns/AND = mean_ns / (items × ands_per_item) — the
//! per-gate figures are printed for the human log and the raw rows are
//! merged into BENCH_results.json by `bench_summary`.

use c2pi_mpc::gc::AND_TABLE_BYTES;
use c2pi_mpc::gcpre::{eval_pregarbled, pregarble, MaskedOp};
use c2pi_mpc::prg::Prg;
use criterion::{criterion_group, criterion_main, report_metric, BenchmarkId, Criterion};
use std::time::Duration;

const ITEMS: usize = 256;
const PAR_BAND: usize = 16;

fn bench_gc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_throughput");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    let op = MaskedOp::Relu;
    let ands = (ITEMS * op.ands_per_item()) as f64;
    for (mode, band) in [("serial", ITEMS), ("parallel", PAR_BAND)] {
        group.bench_with_input(BenchmarkId::new("garble", mode), &(), |bench, ()| {
            bench.iter(|| {
                let mut prg = Prg::from_u64(1);
                pregarble(op, ITEMS, &mut prg, band)
            })
        });
        let mut prg = Prg::from_u64(1);
        let (cmat, smat) = pregarble(op, ITEMS, &mut prg, band);
        let g: Vec<u64> = (0..smat.inputs() as u64).collect();
        let labels = smat.select_garbler_labels(&g).unwrap();
        group.bench_with_input(BenchmarkId::new("eval", mode), &(), |bench, ()| {
            bench.iter(|| eval_pregarbled(&cmat, &labels, band).unwrap())
        });
    }
    group.finish();
    // Deterministic size metrics: garbled-table bytes per item. These
    // are pinned exactly (max_ratio 1.0) in ci/bench_guard_rules.json
    // so a garbling-scheme change can never silently grow the dealt
    // material — half-gates keeps an AND at 2 rows (32 B) and XOR at 0.
    report_metric(
        "gc_table_bytes/relu_item",
        (MaskedOp::Relu.ands_per_item() * AND_TABLE_BYTES) as f64,
    );
    report_metric(
        "gc_table_bytes/maxpool4_item",
        (MaskedOp::Maxpool4.ands_per_item() * AND_TABLE_BYTES) as f64,
    );
    // Rough per-gate figures for the human-readable log (the JSON rows
    // carry the exact per-iteration times).
    println!("  [gc_throughput] batch = {ITEMS} relu items, {ands} AND gates per iteration");
}

criterion_group!(benches, bench_gc_throughput);
criterion_main!(benches);
