//! Online latency across the transport matrix: the same deployment
//! served over the in-memory channel, an in-line simulated LAN and an
//! in-line simulated WAN, for both protocol backends.
//!
//! Where `session_phases` separates offline from online cost, this
//! bench shows what the *network* does to the online phase: under
//! `sim-wan` the chatty comparison-based backend pays its many rounds
//! on the wall clock, reproducing the LAN/WAN asymmetry of the paper's
//! Table II as measured time instead of a post-hoc estimate. Every
//! session preprocesses ahead of the measurement so no dealer work
//! leaks in.

use c2pi_core::session::{C2pi, C2piSession};
use c2pi_nn::model::{alexnet, Model, ZooConfig};
use c2pi_nn::BoundaryId;
use c2pi_pi::engine::PiBackend;
use c2pi_tensor::Tensor;
use c2pi_transport::{MemTransport, NetModel, SimTransport, Transport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn model() -> Model {
    alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() }).unwrap()
}

fn transports() -> Vec<Arc<dyn Transport>> {
    vec![
        Arc::new(MemTransport),
        Arc::new(SimTransport::new(NetModel::lan())),
        Arc::new(SimTransport::new(NetModel::wan())),
    ]
}

fn session(backend: PiBackend, transport: Arc<dyn Transport>) -> C2piSession {
    C2pi::builder(model())
        .split_at(BoundaryId::relu(3))
        .noise(0.1)
        .backend(backend)
        .transport(transport)
        .build()
        .unwrap()
}

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_matrix");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        for transport in transports() {
            let label = format!("{}/{}", backend.name(), transport.label());
            let mut s = session(backend, transport);
            s.preprocess(12).unwrap();
            let xx = x.clone();
            group.bench_with_input(BenchmarkId::new("online", label), &(), |bench, ()| {
                bench.iter(|| s.infer(&xx).unwrap())
            });
            let ledger = s.ledger();
            assert_eq!(
                ledger.generated_inline, 0,
                "online measurement must not include dealer work"
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
