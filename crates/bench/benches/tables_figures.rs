//! Smoke-scale timing of the table/figure harnesses: each paper
//! experiment at a micro configuration, so `cargo bench` exercises the
//! same code paths the `src/bin` generators use.

use c2pi_bench::figures::fig7;
use c2pi_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn micro_scale() -> Scale {
    Scale {
        name: "micro",
        width_div: 32,
        classes10: 3,
        classes100: 4,
        per_class: 2,
        train_epochs: 2,
        mla_iterations: 10,
        inversion_epochs: 2,
        eval_images: 1,
    }
}

fn bench_harnesses(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_experiments_micro");
    // The cheapest full-harness path at a micro configuration; the
    // attack- and MPC-heavy harnesses (fig1/fig4/table2) are exercised by
    // their own binaries and the protocol benches — iterating them under
    // criterion would take minutes per sample.
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    let scale = micro_scale();
    group.bench_function("fig7_noise_accuracy", |b| b.iter(|| fig7::run(&scale)));
    group.finish();
}

criterion_group!(benches, bench_harnesses);
criterion_main!(benches);
