//! Deployment-planner cost sweep: how long it takes to *plan* (not
//! serve) — compile, measure and rank candidate boundaries × network
//! models for one backend. Planning is an offline, per-deployment
//! operation; this row in `BENCH_results.json` tracks that the planner
//! stays cheap enough to run on every model/defense revision.

use c2pi_core::planner::{DeploymentPlanner, PlannerConfig};
use c2pi_data::synth::{SynthConfig, SynthDataset};
use c2pi_nn::model::{alexnet, ZooConfig};
use c2pi_nn::BoundaryId;
use c2pi_pi::PiBackend;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    let model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap();
    let data = SynthDataset::generate(&SynthConfig {
        classes: 3,
        per_class: 3,
        image_size: 16,
        pixel_noise: 0.02,
        ..Default::default()
    })
    .into_dataset();
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let m = model.clone();
        let d = data.clone();
        group.bench_with_input(
            BenchmarkId::new("cost_only", backend.name()),
            &backend,
            move |bench, &backend| {
                // Probe-free configuration isolates the cost sweep (the
                // privacy audit's attack training is a separate,
                // model-dependent budget).
                let cfg = PlannerConfig {
                    candidates: vec![BoundaryId::relu(2), BoundaryId::relu(5)],
                    backends: vec![backend],
                    probes: Vec::new(),
                    max_accuracy_drop: 1.0,
                    eval_images: 2,
                    ..Default::default()
                };
                let mut model = m.clone();
                bench.iter(|| {
                    let plan =
                        DeploymentPlanner::new(&mut model, &d, &d, cfg.clone()).plan().unwrap();
                    assert!(plan.best().is_some());
                    plan.ranked.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
