//! Microbenchmark: SSIM on CIFAR-sized images (the metric every attack
//! evaluation runs thousands of times).

use c2pi_data::metrics::{ssim, ssim_with, SsimConfig};
use c2pi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ssim(c: &mut Criterion) {
    let a = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 1);
    let b = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 2);
    c.bench_function("ssim_32px_default", |bench| {
        bench.iter(|| ssim(black_box(&a), black_box(&b)).unwrap())
    });
    let cfg = SsimConfig { window: 11, sigma: 1.5, dynamic_range: 1.0 };
    c.bench_function("ssim_32px_window11", |bench| {
        bench.iter(|| ssim_with(black_box(&a), black_box(&b), &cfg).unwrap())
    });
}

criterion_group!(benches, bench_ssim);
criterion_main!(benches);
