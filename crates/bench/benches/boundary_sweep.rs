//! Ablation: C2PI cost as a function of the boundary position — the
//! monotone curve whose endpoints are Table II's "full PI" and the
//! paper's speedups.

use c2pi_core::session::C2pi;
use c2pi_nn::model::{alexnet, ZooConfig};
use c2pi_nn::BoundaryId;
use c2pi_pi::cheetah;
use c2pi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_boundary(c: &mut Criterion) {
    let mut group = c.benchmark_group("boundary_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    let model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap();
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
    for conv in [1usize, 3, 5, 7] {
        let m = model.clone();
        let xx = x.clone();
        group.bench_with_input(
            BenchmarkId::new("cheetah_c2pi", conv),
            &conv,
            move |bench, &conv| {
                // Compile and preprocess outside the measured loop: the
                // session split makes the online phase the benchmarked unit.
                let mut session = C2pi::builder(m.clone())
                    .split_at(BoundaryId::relu(conv))
                    .noise(0.1)
                    .noise_seed(2)
                    .backend(cheetah())
                    .build()
                    .unwrap();
                session.preprocess(64).unwrap();
                bench.iter(|| session.infer(&xx).unwrap());
                // Guard the measurement: if a harness ever runs more
                // iterations than the pool covers, fail loudly instead
                // of silently folding dealer time into "online".
                assert_eq!(
                    session.ledger().generated_inline,
                    0,
                    "online measurement must not include inline dealer work"
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_boundary);
criterion_main!(benches);
