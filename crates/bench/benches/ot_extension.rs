//! Microbenchmark: IKNP OT extension throughput (the transport of GC
//! input labels and bit-triple generation).

use c2pi_mpc::dealer::Dealer;
use c2pi_mpc::ot::{gen_bit_triples, ot_receive, ot_send, OtExtReceiver, OtExtSender, KAPPA};
use c2pi_mpc::prg::Prg;
use c2pi_transport::channel_pair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ot_extension");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    for &m in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("chosen_message", m), &m, |bench, &m| {
            bench.iter(|| {
                let mut dealer = Dealer::new(1);
                let (snd, rcv) = dealer.base_ots(KAPPA);
                let (client, server, _) = channel_pair();
                let pairs = vec![(1u128, 2u128); m];
                let choices = vec![true; m];
                let t = std::thread::spawn(move || ot_send(&server, &snd, &pairs).unwrap());
                let got = ot_receive(&client, &rcv, &choices).unwrap();
                t.join().unwrap();
                got
            })
        });
        // Session-long extension: the base OTs are dealt once and four
        // rounds extend from them — the amortisation the backends'
        // per-session base-OT accounting models.
        group.bench_with_input(BenchmarkId::new("extension_reuse_x4", m), &m, |bench, &m| {
            bench.iter(|| {
                let mut dealer = Dealer::new(5);
                let (snd, rcv) = dealer.base_ots(KAPPA);
                let (client, server, _) = channel_pair();
                let pairs = vec![(1u128, 2u128); m];
                let choices = vec![false; m];
                let t = std::thread::spawn(move || {
                    let mut snd = OtExtSender::new(snd);
                    for _ in 0..4 {
                        snd.extend(&server, &pairs).unwrap();
                    }
                });
                let mut rcv = OtExtReceiver::new(rcv);
                let mut last = Vec::new();
                for _ in 0..4 {
                    last = rcv.extend(&client, &choices).unwrap();
                }
                t.join().unwrap();
                last
            })
        });
        group.bench_with_input(BenchmarkId::new("bit_triples_iknp", m), &m, |bench, &m| {
            bench.iter(|| {
                let mut dealer = Dealer::new(2);
                let (c_snd, s_rcv) = dealer.base_ots(KAPPA);
                let (s_snd, c_rcv) = dealer.base_ots(KAPPA);
                let (client, server, _) = channel_pair();
                let t = std::thread::spawn(move || {
                    let mut prg = Prg::from_u64(3);
                    gen_bit_triples(&server, false, &s_snd, &s_rcv, m, &mut prg).unwrap()
                });
                let mut prg = Prg::from_u64(4);
                let mine = gen_bit_triples(&client, true, &c_snd, &c_rcv, m, &mut prg).unwrap();
                t.join().unwrap();
                mine
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ot);
criterion_main!(benches);
