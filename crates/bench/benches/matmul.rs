//! Microbenchmark: the blocked parallel matmul against the naive
//! reference — the kernel behind every linear layer and im2col conv.

use c2pi_tensor::{matmul, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| matmul::matmul(black_box(&a), black_box(&b)).unwrap())
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |bench, _| {
                bench.iter(|| matmul::matmul_reference(black_box(&a), black_box(&b)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
