//! Ablation: the two secure-ReLU protocols head to head — garbled
//! circuits (Delphi) vs comparison-based with silent triples (Cheetah).
//! The time and traffic asymmetry here is the root of Table II's shape.

use c2pi_mpc::dealer::Dealer;
use c2pi_mpc::ot::KAPPA;
use c2pi_mpc::prg::Prg;
use c2pi_mpc::relu::{drelu_bit_triples, gc_relu_evaluator, gc_relu_garbler, relu_interactive};
use c2pi_mpc::share::{share_secret, ShareVec};
use c2pi_mpc::FixedPoint;
use c2pi_transport::channel_pair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shares(n: usize, seed: u64) -> (ShareVec, ShareVec) {
    let fp = FixedPoint::default();
    let secret: Vec<u64> = (0..n).map(|i| fp.encode(i as f32 - n as f32 / 2.0)).collect();
    let mut prg = Prg::from_u64(seed);
    share_secret(&secret, &mut prg)
}

fn bench_relu(c: &mut Criterion) {
    let mut group = c.benchmark_group("secure_relu");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    for &n in &[16usize, 64] {
        group.bench_with_input(BenchmarkId::new("gc_delphi", n), &n, |bench, &n| {
            bench.iter(|| {
                let (s0, s1) = shares(n, 1);
                let mut dealer = Dealer::new(2);
                let (snd, rcv) = dealer.base_ots(KAPPA);
                let (client, server, _) = channel_pair();
                let t = std::thread::spawn(move || {
                    let mut prg = Prg::from_u64(3);
                    gc_relu_garbler(&server, &s1, &snd, &mut prg).unwrap()
                });
                let y0 = gc_relu_evaluator(&client, &s0, &rcv).unwrap();
                t.join().unwrap();
                y0
            })
        });
        group.bench_with_input(BenchmarkId::new("interactive_cheetah", n), &n, |bench, &n| {
            bench.iter(|| {
                let (s0, s1) = shares(n, 4);
                let mut dealer = Dealer::new(5);
                let (mut b0, mut b1) = dealer.bit_triples(n * drelu_bit_triples(63));
                let (ta0, ta1) = dealer.beaver_triples(n);
                let (tb0, tb1) = dealer.beaver_triples(n);
                let (client, server, _) = channel_pair();
                let t = std::thread::spawn(move || {
                    relu_interactive(&server, false, &s1, &mut b1, &ta1, &tb1).unwrap()
                });
                let y0 = relu_interactive(&client, true, &s0, &mut b0, &ta0, &tb0).unwrap();
                t.join().unwrap();
                y0
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relu);
criterion_main!(benches);
