//! Concurrent serving throughput: aggregate online inferences/second
//! for 1 vs 4 vs 8 concurrent clients drawing from one shared material
//! pool, on the in-memory transport and over a real `PiServer` TCP
//! accept loop, for both backends.
//!
//! Every row times the same total amount of work (`TOTAL_INFERENCES`
//! online inferences), split across the row's client count — so the
//! mean duration of `clients/4` vs `clients/1` *is* the aggregate
//! throughput ratio. The server's material for the whole batch is
//! preprocessed outside the timed section (`iter_custom`), and its
//! ledger is asserted clean afterwards. The `mem` rows therefore
//! measure the **online phase only** — the paper's claim about what a
//! client waits for. The `tcp` rows ride the dealt contract, whose
//! client regenerates its correlated-randomness half from the
//! server-dealt seed *inside* each request (the simulation's stand-in
//! for the trusted dealer's delivery), so they additionally include
//! that per-request client-side dealer work plus connect/reveal —
//! compare tcp rows against each other, not against mem rows.
//!
//! Expect the 4-client row to finish ≥2× faster than the 1-client row
//! on a multi-core serving box (each in-flight inference alternates two
//! party threads, so it occupies about one core); a single-core runner
//! shows ~1× because the online protocol is CPU-bound there. The
//! summary printed at the end states the measured ratio, and the 4v1
//! ratios are also recorded as `ratio_4v1/...` metric rows (×1000) in
//! `BENCH_results.json`.
//!
//! The `reactor/...` rows measure the readiness-driven serving surface
//! under burst: 64 and 256 *simultaneous* one-shot clients against a
//! `ReactorServer` whose pool is deliberately stocked with only
//! [`BURST_POOL`] sets — each wave serves exactly that many inferences
//! and sheds the rest with typed `BUSY` frames, so the row times how
//! fast the reactor disposes of an over-capacity connection wave
//! (accept → park → dispatch → serve/shed). The shed and work-steal
//! totals land as `shed_total`/`steal_total` metric rows.

use c2pi_core::reactor::{ReactorClient, ReactorConfig, ReactorReply, ReactorServer};
use c2pi_core::server::{PiClient, PiServer, PiServerConfig};
use c2pi_nn::model::{alexnet, ZooConfig};
use c2pi_pi::engine::{specs_of, PiBackend, PiConfig};
use c2pi_pi::{PiSession, SharedPiSession};
use c2pi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, report_metric, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOTAL_INFERENCES: usize = 8;
const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

/// Client counts of the reactor burst rows — the high-concurrency
/// regime a thread-per-connection accept loop cannot reach.
const BURST_CLIENTS: [usize; 2] = [64, 256];
/// Material preloaded per burst run. Deliberately smaller than the
/// burst, so most of the wave exercises the typed-backpressure shed
/// path (`served == BURST_POOL`, the rest answered `BUSY`).
const BURST_POOL: usize = 16;

fn shared_session(backend: PiBackend) -> SharedPiSession {
    let model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap();
    let cfg = PiConfig { backend, ..Default::default() };
    PiSession::new(&specs_of(model.seq()), [3, 16, 16], cfg).unwrap().into_shared()
}

fn input() -> Tensor {
    Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1)
}

/// Mean of the recorded runs, skipping the shim's warm-up run (the
/// routine records it but criterion's samples exclude it) so the
/// printed ratios agree with `BENCH_results.json`.
fn warm_mean(runs: &[f64]) -> Option<f64> {
    let measured = if runs.len() > 1 { &runs[1..] } else { runs };
    if measured.is_empty() {
        return None;
    }
    Some(measured.iter().sum::<f64>() / measured.len() as f64)
}

/// Runs `total` in-process online inferences split over `clients`
/// concurrent threads against one shared pool, returning the wall time
/// of the concurrent section only.
fn run_mem(session: &SharedPiSession, clients: usize, total: usize, x: &Tensor) -> Duration {
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let s = session.clone();
            let xx = x.clone();
            scope.spawn(move || {
                for _ in 0..per_client {
                    s.infer(&xx).unwrap();
                }
            });
        }
    });
    start.elapsed()
}

/// Same work over a live `PiServer`: `clients` threads each running
/// `total / clients` connect–infer–reveal round trips on loopback TCP.
fn run_tcp(
    server_addr: std::net::SocketAddr,
    client_session: &SharedPiSession,
    clients: usize,
    total: usize,
    x: &Tensor,
) -> Duration {
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let client = PiClient::new(client_session.clone());
            let xx = x.clone();
            scope.spawn(move || {
                for _ in 0..per_client {
                    client.infer(server_addr, &xx).unwrap();
                }
            });
        }
    });
    start.elapsed()
}

/// Fires `clients` one-shot requests at a reactor server
/// simultaneously (no retries). With the pool preloaded below the
/// client count the wave exercises the serve and shed paths together;
/// returns the wall time of the whole wave plus the served/busy split.
fn run_burst(
    addr: std::net::SocketAddr,
    client_session: &SharedPiSession,
    clients: usize,
    x: &Tensor,
) -> (Duration, usize, usize) {
    let served = AtomicUsize::new(0);
    let busy = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let client = ReactorClient::new(client_session.clone());
            let xx = x.clone();
            let served = &served;
            let busy = &busy;
            scope.spawn(move || match client.request(addr, &xx) {
                Ok(ReactorReply::Served(_)) => {
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Ok(ReactorReply::Busy { .. }) => {
                    busy.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("burst request failed: {e}"),
            });
        }
    });
    (start.elapsed(), served.load(Ordering::Relaxed), busy.load(Ordering::Relaxed))
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let x = input();
    let mut ratio_report: Vec<(String, f64)> = Vec::new();
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let name = backend.name();

        // --- mem transport: both parties in-process, N concurrent infers.
        let session = shared_session(backend);
        let mut means: Vec<(usize, f64)> = Vec::new();
        for clients in CLIENT_COUNTS {
            let mut local = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(format!("mem/{name}"), clients),
                &clients,
                |b, &clients| {
                    b.iter_custom(|_| {
                        // Offline phase outside the timed section.
                        session.preprocess(TOTAL_INFERENCES).unwrap();
                        let d = run_mem(&session, clients, TOTAL_INFERENCES, &x);
                        local.push(d.as_secs_f64());
                        d
                    })
                },
            );
            if let Some(mean) = warm_mean(&local) {
                means.push((clients, mean));
            }
        }
        assert_eq!(
            session.ledger().generated_inline,
            0,
            "throughput rows must stay on the pooled online path"
        );
        if let (Some(&(_, t1)), Some(&(_, t4))) =
            (means.iter().find(|(c, _)| *c == 1), means.iter().find(|(c, _)| *c == 4))
        {
            ratio_report.push((format!("mem/{name}"), t1 / t4));
        }

        // --- tcp-loopback: a live PiServer accept loop, one connection
        // per inference. Replenishment off: the pool is preloaded
        // outside the timed section so rows stay online-only.
        let serve_session = shared_session(backend);
        let server = PiServer::bind(
            serve_session.clone(),
            "127.0.0.1:0",
            PiServerConfig { worker_cap: 8, pool_low: 0, pool_high: 0, ..Default::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        let client_session = shared_session(backend);
        let mut means: Vec<(usize, f64)> = Vec::new();
        for clients in CLIENT_COUNTS {
            let mut local = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(format!("tcp/{name}"), clients),
                &clients,
                |b, &clients| {
                    b.iter_custom(|_| {
                        serve_session.preprocess(TOTAL_INFERENCES).unwrap();
                        let d = run_tcp(addr, &client_session, clients, TOTAL_INFERENCES, &x);
                        local.push(d.as_secs_f64());
                        d
                    })
                },
            );
            if let Some(mean) = warm_mean(&local) {
                means.push((clients, mean));
            }
        }
        assert_eq!(server.session().ledger().generated_inline, 0);
        assert_eq!(server.errors(), 0);
        server.shutdown();
        if let (Some(&(_, t1)), Some(&(_, t4))) =
            (means.iter().find(|(c, _)| *c == 1), means.iter().find(|(c, _)| *c == 4))
        {
            ratio_report.push((format!("tcp/{name}"), t1 / t4));
        }
    }
    // --- reactor burst: 64/256 simultaneous one-shot clients against a
    // readiness-driven server whose pool holds only BURST_POOL sets.
    // Replenishment off and queue_depth at the burst size, so the
    // serve/shed split is exact and the row is pure wave-disposal time.
    // Cheetah only: the reactor path is backend-agnostic above the
    // session, so one backend bounds the CI time.
    let serve_session = shared_session(PiBackend::Cheetah);
    let server = ReactorServer::bind(
        Arc::clone(serve_session.core()),
        "127.0.0.1:0",
        ReactorConfig {
            workers: 8,
            shards: 8,
            max_clients: 1024,
            queue_depth: *BURST_CLIENTS.iter().max().unwrap(),
            pool_low: 0,
            pool_high: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let client_session = shared_session(PiBackend::Cheetah);
    let wave_served = AtomicUsize::new(0);
    for clients in BURST_CLIENTS {
        group.bench_with_input(
            BenchmarkId::new("reactor/cheetah", clients),
            &clients,
            |b, &clients| {
                b.iter_custom(|_| {
                    server.preprocess(BURST_POOL).unwrap();
                    let (d, served, busy) = run_burst(addr, &client_session, clients, &x);
                    assert_eq!(served, BURST_POOL, "each pooled set serves exactly once per wave");
                    assert_eq!(busy, clients - BURST_POOL, "the rest must shed with BUSY frames");
                    wave_served.fetch_add(served, Ordering::Relaxed);
                    d
                })
            },
        );
    }
    // The worker's served increment lands just after the reply hits the
    // socket, so the last wave's bookkeeping can trail the clients by a
    // beat — settle before snapshotting.
    let expected = wave_served.load(Ordering::Relaxed) as u64;
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut snap = server.metrics_snapshot();
    while snap.served < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        snap = server.metrics_snapshot();
    }
    assert_eq!(snap.served, expected, "server served count must match the client-side total");
    assert_eq!(snap.errors, 0, "burst waves must not error");
    assert_eq!(snap.shards.len(), 8, "one metrics row per shard");
    let consumed: u64 = snap.shards.iter().map(|s| s.consumed).sum();
    assert_eq!(consumed, snap.served, "per-shard consumption must sum to the served total");
    report_metric("serving_throughput/reactor/cheetah/shed_total", snap.shed as f64);
    report_metric("serving_throughput/reactor/cheetah/steal_total", snap.steals as f64);
    server.drain().unwrap();

    group.finish();
    println!("\n  aggregate online throughput, 4 concurrent clients vs 1 sequential:");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (label, ratio) in ratio_report {
        println!("    {label:<16} {ratio:.2}x");
        // Machine-readable twin of the printed ratio (×1000, rows are
        // integers) so bench_guard / BENCH_history.jsonl can track it.
        report_metric(&format!("serving_throughput/ratio_4v1/{label}_x1000"), ratio * 1000.0);
        if cores >= 4 {
            assert!(
                ratio > 0.5,
                "4-client aggregate throughput collapsed vs sequential: {label} at {ratio:.2}x"
            );
        }
    }
    println!("    (cores available: {cores})");
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
