//! Concurrent serving throughput: aggregate online inferences/second
//! for 1 vs 4 vs 8 concurrent clients drawing from one shared material
//! pool, on the in-memory transport and over a real `PiServer` TCP
//! accept loop, for both backends.
//!
//! Every row times the same total amount of work (`TOTAL_INFERENCES`
//! online inferences), split across the row's client count — so the
//! mean duration of `clients/4` vs `clients/1` *is* the aggregate
//! throughput ratio. The server's material for the whole batch is
//! preprocessed outside the timed section (`iter_custom`), and its
//! ledger is asserted clean afterwards. The `mem` rows therefore
//! measure the **online phase only** — the paper's claim about what a
//! client waits for. The `tcp` rows ride the dealt contract, whose
//! client regenerates its correlated-randomness half from the
//! server-dealt seed *inside* each request (the simulation's stand-in
//! for the trusted dealer's delivery), so they additionally include
//! that per-request client-side dealer work plus connect/reveal —
//! compare tcp rows against each other, not against mem rows.
//!
//! Expect the 4-client row to finish ≥2× faster than the 1-client row
//! on a multi-core serving box (each in-flight inference alternates two
//! party threads, so it occupies about one core); a single-core runner
//! shows ~1× because the online protocol is CPU-bound there. The
//! summary printed at the end states the measured ratio, and the 4v1
//! ratios are also recorded as `ratio_4v1/...` metric rows (×1000) in
//! `BENCH_results.json`.
//!
//! The `reactor/...` rows measure the readiness-driven serving surface
//! under burst: 64 and 256 *simultaneous* one-shot clients against a
//! `ReactorServer` whose pool is deliberately stocked with only
//! [`BURST_POOL`] sets — each wave serves exactly that many inferences
//! and sheds the rest with typed `BUSY` frames, so the row times how
//! fast the reactor disposes of an over-capacity connection wave
//! (accept → park → dispatch → serve/shed). The shed and work-steal
//! totals land as `shed_total`/`steal_total` metric rows.
//!
//! The `reactor_batch/...` rows time *full-service* waves (stock
//! covers the wave, clients retry until served) with the cross-client
//! batch coalescer on vs off, interleaved pairwise so machine drift
//! cancels; `reactor_batch_speedup_256_x1000` is the off/on ratio at
//! 256 clients, guarded by `ci/bench_guard_rules.json`.

use c2pi_core::reactor::{ReactorClient, ReactorConfig, ReactorReply, ReactorServer};
use c2pi_core::server::{PiClient, PiServer, PiServerConfig};
use c2pi_nn::model::{alexnet, ZooConfig};
use c2pi_pi::engine::{specs_of, PiBackend, PiConfig};
use c2pi_pi::{PiSession, SharedPiSession};
use c2pi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, report_metric, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOTAL_INFERENCES: usize = 8;
const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

/// Client counts of the reactor burst rows — the high-concurrency
/// regime a thread-per-connection accept loop cannot reach.
const BURST_CLIENTS: [usize; 2] = [64, 256];
/// Material preloaded per burst run. Deliberately smaller than the
/// burst, so most of the wave exercises the typed-backpressure shed
/// path (`served == BURST_POOL`, the rest answered `BUSY`).
const BURST_POOL: usize = 16;

fn shared_session(backend: PiBackend) -> SharedPiSession {
    let model =
        alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() })
            .unwrap();
    let cfg = PiConfig { backend, ..Default::default() };
    PiSession::new(&specs_of(model.seq()), [3, 16, 16], cfg).unwrap().into_shared()
}

fn input() -> Tensor {
    Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1)
}

/// Mean of the recorded runs, skipping the shim's warm-up run (the
/// routine records it but criterion's samples exclude it) so the
/// printed ratios agree with `BENCH_results.json`.
fn warm_mean(runs: &[f64]) -> Option<f64> {
    let measured = if runs.len() > 1 { &runs[1..] } else { runs };
    if measured.is_empty() {
        return None;
    }
    Some(measured.iter().sum::<f64>() / measured.len() as f64)
}

/// Runs `total` in-process online inferences split over `clients`
/// concurrent threads against one shared pool, returning the wall time
/// of the concurrent section only.
fn run_mem(session: &SharedPiSession, clients: usize, total: usize, x: &Tensor) -> Duration {
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let s = session.clone();
            let xx = x.clone();
            scope.spawn(move || {
                for _ in 0..per_client {
                    s.infer(&xx).unwrap();
                }
            });
        }
    });
    start.elapsed()
}

/// Same work over a live `PiServer`: `clients` threads each running
/// `total / clients` connect–infer–reveal round trips on loopback TCP.
fn run_tcp(
    server_addr: std::net::SocketAddr,
    client_session: &SharedPiSession,
    clients: usize,
    total: usize,
    x: &Tensor,
) -> Duration {
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let client = PiClient::new(client_session.clone());
            let xx = x.clone();
            scope.spawn(move || {
                for _ in 0..per_client {
                    client.infer(server_addr, &xx).unwrap();
                }
            });
        }
    });
    start.elapsed()
}

/// Fires `clients` one-shot requests at a reactor server
/// simultaneously (no retries). With the pool preloaded below the
/// client count the wave exercises the serve and shed paths together;
/// returns the wall time of the whole wave plus the served/busy split.
fn run_burst(
    addr: std::net::SocketAddr,
    client_session: &SharedPiSession,
    clients: usize,
    x: &Tensor,
) -> (Duration, usize, usize) {
    let served = AtomicUsize::new(0);
    let busy = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let client = ReactorClient::new(client_session.clone());
            let xx = x.clone();
            let served = &served;
            let busy = &busy;
            scope.spawn(move || match client.request(addr, &xx) {
                Ok(ReactorReply::Served(_)) => {
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Ok(ReactorReply::Busy { .. }) => {
                    busy.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("burst request failed: {e}"),
            });
        }
    });
    (start.elapsed(), served.load(Ordering::Relaxed), busy.load(Ordering::Relaxed))
}

/// Runs a full-service wave: `clients` simultaneous clients, each
/// retrying through transient backpressure until served. Returns the
/// wall time for the whole wave to complete.
fn run_wave(
    addr: std::net::SocketAddr,
    client_session: &SharedPiSession,
    clients: usize,
    x: &Tensor,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let client = ReactorClient::new(client_session.clone()).with_retries(64);
            let xx = x.clone();
            scope.spawn(move || {
                client.infer(addr, &xx).unwrap();
            });
        }
    });
    start.elapsed()
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let x = input();
    let mut ratio_report: Vec<(String, f64)> = Vec::new();
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let name = backend.name();

        // --- mem transport: both parties in-process, N concurrent infers.
        let session = shared_session(backend);
        let mut means: Vec<(usize, f64)> = Vec::new();
        for clients in CLIENT_COUNTS {
            let mut local = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(format!("mem/{name}"), clients),
                &clients,
                |b, &clients| {
                    b.iter_custom(|_| {
                        // Offline phase outside the timed section.
                        session.preprocess(TOTAL_INFERENCES).unwrap();
                        let d = run_mem(&session, clients, TOTAL_INFERENCES, &x);
                        local.push(d.as_secs_f64());
                        d
                    })
                },
            );
            if let Some(mean) = warm_mean(&local) {
                means.push((clients, mean));
            }
        }
        assert_eq!(
            session.ledger().generated_inline,
            0,
            "throughput rows must stay on the pooled online path"
        );
        if let (Some(&(_, t1)), Some(&(_, t4))) =
            (means.iter().find(|(c, _)| *c == 1), means.iter().find(|(c, _)| *c == 4))
        {
            ratio_report.push((format!("mem/{name}"), t1 / t4));
        }

        // --- tcp-loopback: a live PiServer accept loop, one connection
        // per inference. Replenishment off: the pool is preloaded
        // outside the timed section so rows stay online-only.
        let serve_session = shared_session(backend);
        let server = PiServer::bind(
            serve_session.clone(),
            "127.0.0.1:0",
            PiServerConfig { worker_cap: 8, pool_low: 0, pool_high: 0, ..Default::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        let client_session = shared_session(backend);
        let mut means: Vec<(usize, f64)> = Vec::new();
        for clients in CLIENT_COUNTS {
            let mut local = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(format!("tcp/{name}"), clients),
                &clients,
                |b, &clients| {
                    b.iter_custom(|_| {
                        serve_session.preprocess(TOTAL_INFERENCES).unwrap();
                        let d = run_tcp(addr, &client_session, clients, TOTAL_INFERENCES, &x);
                        local.push(d.as_secs_f64());
                        d
                    })
                },
            );
            if let Some(mean) = warm_mean(&local) {
                means.push((clients, mean));
            }
        }
        assert_eq!(server.session().ledger().generated_inline, 0);
        assert_eq!(server.errors(), 0);
        server.shutdown();
        if let (Some(&(_, t1)), Some(&(_, t4))) =
            (means.iter().find(|(c, _)| *c == 1), means.iter().find(|(c, _)| *c == 4))
        {
            ratio_report.push((format!("tcp/{name}"), t1 / t4));
        }
    }
    // --- reactor burst: 64/256 simultaneous one-shot clients against a
    // readiness-driven server whose pool holds only BURST_POOL sets.
    // Replenishment off and queue_depth at the burst size, so the
    // serve/shed split is exact and the row is pure wave-disposal time.
    // Cheetah only: the reactor path is backend-agnostic above the
    // session, so one backend bounds the CI time.
    let serve_session = shared_session(PiBackend::Cheetah);
    let server = ReactorServer::bind(
        Arc::clone(serve_session.core()),
        "127.0.0.1:0",
        ReactorConfig {
            workers: 8,
            shards: 8,
            max_clients: 1024,
            queue_depth: *BURST_CLIENTS.iter().max().unwrap(),
            pool_low: 0,
            pool_high: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let client_session = shared_session(PiBackend::Cheetah);
    let wave_served = AtomicUsize::new(0);
    for clients in BURST_CLIENTS {
        group.bench_with_input(
            BenchmarkId::new("reactor/cheetah", clients),
            &clients,
            |b, &clients| {
                b.iter_custom(|_| {
                    server.preprocess(BURST_POOL).unwrap();
                    let (d, served, busy) = run_burst(addr, &client_session, clients, &x);
                    assert_eq!(served, BURST_POOL, "each pooled set serves exactly once per wave");
                    assert_eq!(busy, clients - BURST_POOL, "the rest must shed with BUSY frames");
                    wave_served.fetch_add(served, Ordering::Relaxed);
                    d
                })
            },
        );
    }
    // The worker's served increment lands just after the reply hits the
    // socket, so the last wave's bookkeeping can trail the clients by a
    // beat — settle before snapshotting.
    let expected = wave_served.load(Ordering::Relaxed) as u64;
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut snap = server.metrics_snapshot();
    while snap.served < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        snap = server.metrics_snapshot();
    }
    assert_eq!(snap.served, expected, "server served count must match the client-side total");
    assert_eq!(snap.errors, 0, "burst waves must not error");
    assert_eq!(snap.shards.len(), 8, "one metrics row per shard");
    let consumed: u64 = snap.shards.iter().map(|s| s.consumed).sum();
    assert_eq!(consumed, snap.served, "per-shard consumption must sum to the served total");
    report_metric("serving_throughput/reactor/cheetah/shed_total", snap.shed as f64);
    report_metric("serving_throughput/reactor/cheetah/steal_total", snap.steals as f64);
    server.drain().unwrap();

    // --- batched reactor: full-service waves with the cross-client
    // coalescer on vs off, run as *interleaved pairs* against two live
    // servers so machine drift hits both configurations alike. Stock
    // equals the wave size and every client retries through transient
    // backpressure until served, so both configurations complete
    // identical work — the off/on wave-time ratio is the batching
    // speedup. Rows land via report_metric (mean of the warm rounds).
    //
    // The 256-client speedup (×1000) is guarded by
    // ci/bench_guard_rules.json: a min_value floor pins it at the
    // single-core noise band around parity, and a baseline ratio
    // guards against drift. On a single-core runner the wave is
    // CPU-bound and dominated by the clients' own protocol work, so
    // — exactly like the ratio_4v1 rows below — the honest reading is
    // ~1×; the strict "batched is at least as fast" claim is asserted
    // on multi-core machines, where fused rounds genuinely help.
    const WAVE_ROUNDS: usize = 3;
    let off_session = shared_session(PiBackend::Cheetah);
    let on_session = shared_session(PiBackend::Cheetah);
    let wave_server = |session: &SharedPiSession, coalesce: bool| {
        ReactorServer::bind(
            Arc::clone(session.core()),
            "127.0.0.1:0",
            ReactorConfig {
                workers: 8,
                shards: 8,
                max_clients: 1024,
                queue_depth: *BURST_CLIENTS.iter().max().unwrap(),
                pool_low: 0,
                pool_high: 0,
                batch_window: if coalesce { Duration::from_millis(5) } else { Duration::ZERO },
                max_batch: if coalesce { 4 } else { 1 },
                ..Default::default()
            },
        )
        .unwrap()
    };
    let off = wave_server(&off_session, false);
    let on = wave_server(&on_session, true);
    let client_session = shared_session(PiBackend::Cheetah);
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for clients in BURST_CLIENTS {
        let (mut offs, mut ons) = (Vec::new(), Vec::new());
        for _ in 0..WAVE_ROUNDS {
            off.preprocess(clients).unwrap();
            offs.push(run_wave(off.local_addr(), &client_session, clients, &x).as_secs_f64());
            on.preprocess(clients).unwrap();
            ons.push(run_wave(on.local_addr(), &client_session, clients, &x).as_secs_f64());
        }
        let (off_mean, on_mean) = (warm_mean(&offs).unwrap(), warm_mean(&ons).unwrap());
        report_metric(&format!("serving_throughput/reactor_batch/off/{clients}"), off_mean * 1e9);
        report_metric(&format!("serving_throughput/reactor_batch/on/{clients}"), on_mean * 1e9);
        speedups.push((clients, off_mean / on_mean));
    }
    for server in [&off, &on] {
        let snap = server.metrics_snapshot();
        assert_eq!(snap.errors, 0, "full-service waves must not error");
    }
    let on_snap = on.metrics_snapshot();
    assert!(on_snap.coalesced > 0, "a 5ms window under a 64+-client wave must fuse some members");
    report_metric("serving_throughput/reactor_batch/coalesced_total", on_snap.coalesced as f64);
    assert_eq!(off.metrics_snapshot().batches, 0, "a disabled collector must never record a batch");
    off.drain().unwrap();
    on.drain().unwrap();
    println!();
    for &(clients, speedup) in &speedups {
        println!("  batched reactor wave at {clients} clients: {speedup:.2}x vs unbatched");
    }
    if let Some(&(_, speedup)) = speedups.iter().find(|(c, _)| *c == 256) {
        report_metric("serving_throughput/reactor_batch_speedup_256_x1000", speedup * 1000.0);
        if std::thread::available_parallelism().map_or(1, |n| n.get()) >= 4 {
            assert!(
                speedup >= 1.0,
                "batched serving slower than unbatched at 256 clients on a multi-core box: \
                 {speedup:.2}x"
            );
        }
    }

    group.finish();
    println!("\n  aggregate online throughput, 4 concurrent clients vs 1 sequential:");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (label, ratio) in ratio_report {
        println!("    {label:<16} {ratio:.2}x");
        // Machine-readable twin of the printed ratio (×1000, rows are
        // integers) so bench_guard / BENCH_history.jsonl can track it.
        report_metric(&format!("serving_throughput/ratio_4v1/{label}_x1000"), ratio * 1000.0);
        if cores >= 4 {
            assert!(
                ratio > 0.5,
                "4-client aggregate throughput collapsed vs sequential: {label} at {ratio:.2}x"
            );
        }
    }
    println!("    (cores available: {cores})");
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
