//! Microbenchmark: garbling and evaluating the masked-ReLU circuit
//! (Delphi's per-ReLU cost driver).

use c2pi_mpc::gc::{evaluate, garble, relu_masked_circuit, to_bits};
use c2pi_mpc::prg::Prg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_garbling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_relu");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    for &n in &[8usize, 32] {
        let circuit = relu_masked_circuit(n, 64);
        let mut gbits = Vec::new();
        for i in 0..n {
            gbits.extend(to_bits(i as u64, 64));
            gbits.extend(to_bits((i as u64).wrapping_neg(), 64));
        }
        group.bench_with_input(BenchmarkId::new("garble", n), &n, |bench, _| {
            bench.iter(|| {
                let mut prg = Prg::from_u64(1);
                garble(&circuit, &gbits, &mut prg).unwrap()
            })
        });
        let mut prg = Prg::from_u64(1);
        let garbled = garble(&circuit, &gbits, &mut prg).unwrap();
        let labels: Vec<u128> = garbled.evaluator_label_pairs.iter().map(|&(l0, _)| l0).collect();
        group.bench_with_input(BenchmarkId::new("evaluate", n), &n, |bench, _| {
            bench.iter(|| {
                evaluate(
                    &circuit,
                    &garbled.tables,
                    &garbled.garbler_labels,
                    &labels,
                    &garbled.output_decode,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_garbling);
criterion_main!(benches);
