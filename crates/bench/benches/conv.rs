//! Microbenchmark / ablation: im2col convolution vs direct convolution.

use c2pi_tensor::conv::{conv2d_direct, conv2d_im2col, Conv2dGeom};
use c2pi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    let geom = Conv2dGeom::new(3, 1, 1, 1);
    for &(ch, hw) in &[(8usize, 16usize), (16, 32)] {
        let x = Tensor::rand_uniform(&[1, ch, hw, hw], -1.0, 1.0, 1);
        let w = Tensor::rand_uniform(&[ch, ch, 3, 3], -1.0, 1.0, 2);
        let b = Tensor::rand_uniform(&[ch], -0.1, 0.1, 3);
        let label = format!("{ch}ch_{hw}px");
        group.bench_with_input(BenchmarkId::new("im2col", &label), &hw, |bench, _| {
            bench.iter(|| conv2d_im2col(black_box(&x), &w, &b, geom).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("direct", &label), &hw, |bench, _| {
            bench.iter(|| conv2d_direct(black_box(&x), &w, &b, geom).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
