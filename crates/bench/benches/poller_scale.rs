//! Poller wake latency vs parked-connection count: the O(ready) claim
//! behind the epoll backend, measured head-to-head against the
//! portable peek-scan backend.
//!
//! Every row parks `C ∈ {64, 512, 4096}` established loopback
//! connections on one [`Poller`], then times [`WAKES_PER_RUN`]
//! write-one-byte → wait-returns-the-event round trips (draining the
//! byte after each wake so level-triggered readiness clears). All the
//! parked sockets stay silent: exactly one source is ready per wake,
//! so the row isolates what a wakeup costs as a function of *registered*
//! sources, not ready ones.
//!
//! Expected shape — and the reason the reactor defaults to epoll on
//! Linux: `epoll_wait` returns only the ready descriptor, so its wake
//! latency is flat in C (O(ready)), while the peek backend re-scans
//! every registered socket per tick, so its wake latency grows
//! linearly with C. The printed summary states both curves and the
//! measured 4096-vs-64 ratios; the same ratios land as
//! `poller_scale/{backend}/wake_ratio_4096v64_x1000` metric rows, and
//! `ci/bench_guard_rules.json` pins the epoll ratio within 2× (flat
//! modulo noise) so a regression back to O(registered) wakeups fails
//! the bench gate.

use criterion::{criterion_group, criterion_main, report_metric, BenchmarkId, Criterion};
use polling::{Backend, Event, Poller};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Parked-connection counts per row. 4096 pairs ≈ 8k fds — well under
/// the CI runner's descriptor budget.
const PARKED: [usize; 3] = [64, 512, 4096];
/// Wakes timed per measured run; the mean smooths per-wake jitter at
/// the microsecond scale epoll operates on.
const WAKES_PER_RUN: usize = 64;

/// Mean of the recorded runs, skipping the shim's warm-up run, so the
/// printed ratios agree with `BENCH_results.json`.
fn warm_mean(runs: &[f64]) -> Option<f64> {
    let measured = if runs.len() > 1 { &runs[1..] } else { runs };
    if measured.is_empty() {
        return None;
    }
    Some(measured.iter().sum::<f64>() / measured.len() as f64)
}

/// `count` established loopback connections parked on one poller: the
/// accepted side is registered (keys `0..count`), the connecting side
/// is the bench's write handle for triggering a wake.
struct ParkRig {
    poller: Poller,
    /// Registered (server-side) streams, indexed by key — read here to
    /// clear level-triggered readiness after a wake.
    parked: Vec<TcpStream>,
    /// Peer (client-side) streams, indexed by key — write here to make
    /// exactly one source ready.
    peers: Vec<TcpStream>,
}

impl ParkRig {
    fn new(backend: Backend, count: usize) -> ParkRig {
        let poller = Poller::with_backend(backend).expect("construct poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind rig listener");
        let addr = listener.local_addr().unwrap();
        let mut parked = Vec::with_capacity(count);
        let mut peers = Vec::with_capacity(count);
        for key in 0..count {
            // Connect/accept in lockstep so the listener backlog never
            // overflows, whatever its depth.
            let peer = TcpStream::connect(addr).expect("connect rig peer");
            let (stream, _) = listener.accept().expect("accept rig peer");
            poller.add(&stream, key).expect("register parked stream");
            parked.push(stream);
            peers.push(peer);
        }
        ParkRig { poller, parked, peers }
    }

    /// Times `wakes` single-ready-source round trips: write one byte
    /// on a rotating peer, wait until the poller reports that key,
    /// drain the byte. Returns the summed wait-side latency.
    fn measure(&self, wakes: usize) -> Duration {
        let mut events: Vec<Event> = Vec::new();
        let mut total = Duration::ZERO;
        let count = self.peers.len();
        for wake in 0..wakes {
            // A fixed stride coprime to every PARKED count, so the
            // ready key moves around the registration table.
            let key = (wake * 61 + 7) % count;
            let start = Instant::now();
            (&self.peers[key]).write_all(&[0x5a]).expect("peer write");
            loop {
                events.clear();
                let result = self
                    .poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .expect("poller wait");
                if events.iter().any(|e| e.key == key && e.readable) {
                    break;
                }
                assert!(!result.timed_out(), "wake for key {key} never surfaced");
            }
            total += start.elapsed();
            let mut byte = [0u8; 1];
            (&self.parked[key]).read_exact(&mut byte).expect("drain wake byte");
        }
        total
    }
}

/// One backend's measured scaling curve, for the printed summary.
struct Curve {
    name: &'static str,
    /// (parked count, mean run duration in seconds) per row.
    means: Vec<(usize, f64)>,
    /// 4096-parked vs 64-parked wake-latency ratio, when both rows ran.
    ratio: Option<f64>,
}

fn bench_poller_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("poller_scale");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let mut curves: Vec<Curve> = Vec::new();
    for &backend in Backend::available() {
        let name = backend.name();
        let mut means: Vec<(usize, f64)> = Vec::new();
        for &parked in &PARKED {
            let rig = ParkRig::new(backend, parked);
            let mut local = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(format!("wake/{name}"), parked),
                &parked,
                |b, _| {
                    b.iter_custom(|_| {
                        let d = rig.measure(WAKES_PER_RUN);
                        local.push(d.as_secs_f64());
                        d
                    })
                },
            );
            assert_eq!(rig.poller.len(), parked, "no registrations may drop mid-row");
            if let Some(mean) = warm_mean(&local) {
                report_metric(
                    &format!("poller_scale/{name}/wake_ns/{parked}"),
                    mean / WAKES_PER_RUN as f64 * 1e9,
                );
                means.push((parked, mean));
            }
        }
        let ratio =
            match (means.iter().find(|(c, _)| *c == 64), means.iter().find(|(c, _)| *c == 4096)) {
                (Some(&(_, t64)), Some(&(_, t4096))) => {
                    let ratio = t4096 / t64;
                    // The guarded row: ci/bench_guard_rules.json holds the
                    // epoll ratio under 2000 (i.e. 2×, flat modulo noise).
                    report_metric(
                        &format!("poller_scale/{name}/wake_ratio_4096v64_x1000"),
                        ratio * 1000.0,
                    );
                    Some(ratio)
                }
                _ => None,
            };
        curves.push(Curve { name, means, ratio });
    }
    group.finish();

    println!("\n  wake latency vs parked connections (mean per wake):");
    for curve in &curves {
        let cols: Vec<String> = curve
            .means
            .iter()
            .map(|(parked, mean)| format!("{parked}: {:.1}us", mean / WAKES_PER_RUN as f64 * 1e6))
            .collect();
        let shape = match curve.ratio {
            Some(r) => format!("4096v64 ratio {r:.2}x"),
            None => "ratio unavailable".to_string(),
        };
        println!("    {:<6} {} — {shape}", curve.name, cols.join("  "));
    }
    println!(
        "    (epoll is O(ready): flat in parked count; peek re-scans every \
         registered socket, so it degrades linearly)"
    );
}

criterion_group!(benches, bench_poller_scale);
criterion_main!(benches);
