//! Offline/online phase split of the session API: preprocessing cost vs
//! true online latency, per backend.
//!
//! The point of `PiSession::preprocess` is that the online phase a
//! client actually waits for excludes all dealer work. This bench
//! measures the two phases separately — `preprocess/…` rows are the
//! offline correlated-randomness generation, `online/…` rows are
//! `infer` against a warm pool (the ledger asserts no inline generation
//! leaked into the measurement) — plus the batched entry point.

use c2pi_core::session::{C2pi, C2piSession};
use c2pi_nn::model::{alexnet, Model, ZooConfig};
use c2pi_nn::BoundaryId;
use c2pi_pi::engine::PiBackend;
use c2pi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn model() -> Model {
    alexnet(&ZooConfig { width_div: 32, seed: 3, image_size: 16, ..Default::default() }).unwrap()
}

fn session(backend: PiBackend) -> C2piSession {
    C2pi::builder(model())
        .split_at(BoundaryId::relu(3))
        .noise(0.1)
        .backend(backend)
        .build()
        .unwrap()
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_phases");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 1);
    for backend in [PiBackend::Cheetah, PiBackend::Delphi] {
        let name = backend.name();
        // Offline phase alone: one preprocessed material set.
        let mut s = session(backend);
        group.bench_with_input(BenchmarkId::new("preprocess", name), &(), |bench, ()| {
            bench.iter(|| s.preprocess(1).unwrap())
        });
        // Online phase alone: infer against a warm pool (the shim runs
        // sample_size+1 iterations, so 16 sets cover the measurement).
        let mut s = session(backend);
        s.preprocess(16).unwrap();
        let xx = x.clone();
        group.bench_with_input(BenchmarkId::new("online", name), &(), |bench, ()| {
            bench.iter(|| s.infer(&xx).unwrap())
        });
        let ledger = s.ledger();
        assert_eq!(ledger.generated_inline, 0, "online measurement must not include dealer work");
        println!(
            "  [{name}] ledger: {} preprocessed, {} consumed, {:.3}s total generation",
            ledger.generated_offline, ledger.consumed, ledger.generation_seconds
        );
        // Batched serving: 4 images per iteration on pooled material.
        let mut s = session(backend);
        s.preprocess(48).unwrap();
        let batch: Vec<Tensor> =
            (0..4).map(|i| Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, i)).collect();
        group.bench_with_input(BenchmarkId::new("online_batch4", name), &(), |bench, ()| {
            bench.iter(|| s.infer_batch(&batch).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
