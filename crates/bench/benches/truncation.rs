//! Ablation: probabilistic local truncation (zero traffic, ±1 LSB
//! error) against an exact open-truncate-reshare round trip.

use c2pi_mpc::beaver::truncate_share;
use c2pi_mpc::prg::Prg;
use c2pi_mpc::share::{reconstruct, share_secret, ShareVec};
use c2pi_mpc::FixedPoint;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_truncation(c: &mut Criterion) {
    let mut group = c.benchmark_group("truncation");
    let fp = FixedPoint::default();
    for &n in &[1024usize, 16384] {
        let mut prg = Prg::from_u64(1);
        let secret: Vec<u64> = (0..n).map(|i| fp.encode(i as f32) << 2).collect();
        let (s0, s1) = share_secret(&secret, &mut prg);
        group.bench_with_input(BenchmarkId::new("probabilistic_local", n), &n, |bench, _| {
            bench.iter(|| {
                let t0 = truncate_share(black_box(&s0), true, fp);
                let t1 = truncate_share(black_box(&s1), false, fp);
                (t0, t1)
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_open_reshare", n), &n, |bench, _| {
            bench.iter(|| {
                // Reference (insecure) baseline: reconstruct, truncate,
                // reshare — what a dealer-assisted exact protocol costs
                // computationally.
                let plain = reconstruct(black_box(&s0), black_box(&s1));
                let trunc: Vec<u64> = plain.iter().map(|&v| fp.truncate(v)).collect();
                let mut prg = Prg::from_u64(2);
                let (a, b) = share_secret(&trunc, &mut prg);
                (ShareVec::from_raw(a.into_raw()), b)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_truncation);
criterion_main!(benches);
