//! Shared experiment setup: synthetic datasets and trained classifiers.

use crate::Scale;
use c2pi_data::synth::{SynthConfig, SynthDataset};
use c2pi_data::Dataset;
use c2pi_nn::model::{by_name, Model, ZooConfig};
use c2pi_nn::train::{train_classifier, TrainConfig};

/// Which CIFAR analogue an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// CIFAR-10 analogue (10 classes).
    Cifar10,
    /// CIFAR-100 analogue (100 classes at paper scale).
    Cifar100,
}

impl DatasetKind {
    /// Display name used in table/figure headers.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "CIFAR-10 (synthetic analogue)",
            DatasetKind::Cifar100 => "CIFAR-100 (synthetic analogue)",
        }
    }
}

/// Generates the synthetic dataset for a kind at the given scale.
pub fn dataset(kind: DatasetKind, scale: &Scale) -> Dataset {
    let classes = match kind {
        DatasetKind::Cifar10 => scale.classes10,
        DatasetKind::Cifar100 => scale.classes100,
    };
    SynthDataset::generate(&SynthConfig {
        classes,
        per_class: scale.per_class,
        image_size: 32,
        seed: match kind {
            DatasetKind::Cifar10 => 1010,
            DatasetKind::Cifar100 => 2020,
        },
        pixel_noise: 0.02,
    })
    .into_dataset()
}

/// Builds and trains a model on a dataset (the experiments' stand-in for
/// the paper's A100-trained checkpoints).
///
/// # Panics
///
/// Panics when the model name is unknown or training fails — these are
/// experiment-harness bugs, not runtime conditions.
pub fn trained_model(name: &str, _kind: DatasetKind, scale: &Scale, data: &Dataset) -> Model {
    let cfg = ZooConfig {
        num_classes: data.num_classes(),
        image_size: 32,
        width_div: scale.width_div,
        seed: 42,
    };
    let mut model = by_name(name, &cfg).expect("known model name");
    train_classifier(
        model.seq_mut(),
        data.images(),
        data.labels(),
        &TrainConfig {
            epochs: scale.train_epochs,
            batch_size: 8,
            // Deep narrow VGGs need the gentler rate (see DESIGN.md);
            // 0.005 trains all three zoo models at quick scale.
            lr: 0.005,
            momentum: 0.9,
            seed: 7,
        },
    )
    .expect("training succeeds");
    model
}

/// Prints a figure/table banner with the run parameters.
pub fn banner(title: &str, scale: &Scale) {
    println!("=== {title} ===");
    println!(
        "scale: {} (width 1/{}, {} eval images, {} MLA iters)",
        scale.name, scale.width_div, scale.eval_images, scale.mla_iterations
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_expected_classes() {
        let s = Scale::quick();
        assert_eq!(dataset(DatasetKind::Cifar10, &s).num_classes(), 10);
        assert_eq!(dataset(DatasetKind::Cifar100, &s).num_classes(), 20);
    }

    #[test]
    fn trained_model_beats_chance() {
        // Reduced epochs: the debug-profile test only checks wiring, not
        // final accuracy.
        let s = Scale { train_epochs: 25, ..Scale::quick() };
        let data = dataset(DatasetKind::Cifar10, &s).take(24);
        let mut model = trained_model("alexnet", DatasetKind::Cifar10, &s, &data);
        let acc = c2pi_nn::train::evaluate_accuracy(model.seq_mut(), data.images(), data.labels())
            .unwrap();
        assert!(acc > 1.5 / 10.0, "accuracy {acc}");
    }
}
