//! # c2pi-bench
//!
//! The harness that regenerates **every table and figure** of the C2PI
//! paper's evaluation (§IV). Each experiment lives in [`figures`] as a
//! function returning structured rows; the `src/bin/*` binaries print
//! them in the paper's format, and the criterion benches under
//! `benches/` micro-benchmark the underlying protocols.
//!
//! Two scales are supported everywhere:
//!
//! * **quick** (default) — width-reduced models, subsampled synthetic
//!   datasets and truncated iteration counts, sized for a laptop CPU;
//! * **paper** (`--paper-scale`) — the paper's parameter regime
//!   (full-width models, 10 000 MLA iterations, 1000 evaluation images),
//!   for a machine with hours to spend.
//!
//! Absolute numbers differ from the paper (our substrate is a simulator,
//! not an A100 + testbed; see DESIGN.md §3); the *shapes* — who wins,
//! by what factor, where boundaries land — are the reproduction targets,
//! recorded in EXPERIMENTS.md.
//!
//! ## Example
//!
//! Every experiment takes a [`Scale`] deciding its budget:
//!
//! ```
//! use c2pi_bench::Scale;
//!
//! let quick = Scale::quick();
//! let paper = Scale::paper();
//! assert!(quick.width_div > paper.width_div); // quick = narrower models
//! assert!(paper.eval_images >= 1000); // the paper's evaluation size
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod scale;
pub mod setup;

pub use scale::Scale;
