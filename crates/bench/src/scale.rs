//! Experiment scale profiles: quick (CPU default) vs paper.

/// All size/iteration knobs of the experiment suite in one place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Model width divisor (1 = the paper's full-width models).
    pub width_div: usize,
    /// Classes used for the CIFAR-10 analogue.
    pub classes10: usize,
    /// Classes used for the CIFAR-100 analogue.
    pub classes100: usize,
    /// Training images per class.
    pub per_class: usize,
    /// Classifier training epochs.
    pub train_epochs: usize,
    /// MLA gradient-descent iterations (paper: 10 000).
    pub mla_iterations: usize,
    /// Inversion-network training epochs.
    pub inversion_epochs: usize,
    /// Images per attack evaluation (paper: 1000).
    pub eval_images: usize,
}

impl Scale {
    /// The CPU-friendly default.
    pub fn quick() -> Self {
        Scale {
            name: "quick",
            width_div: 32,
            classes10: 10,
            classes100: 20,
            per_class: 4,
            train_epochs: 80,
            mla_iterations: 250,
            inversion_epochs: 25,
            eval_images: 4,
        }
    }

    /// The paper's regime.
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            width_div: 1,
            classes10: 10,
            classes100: 100,
            per_class: 100,
            train_epochs: 100,
            mla_iterations: 10_000,
            inversion_epochs: 200,
            eval_images: 1000,
        }
    }

    /// Parses `--paper-scale` (and an optional `--width-div N` override)
    /// from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale =
            if args.iter().any(|a| a == "--paper-scale") { Scale::paper() } else { Scale::quick() };
        if let Some(pos) = args.iter().position(|a| a == "--width-div") {
            if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
                scale.width_div = v;
            }
        }
        scale
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_strictly_larger() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(p.width_div < q.width_div);
        assert!(p.mla_iterations > q.mla_iterations);
        assert!(p.eval_images > q.eval_images);
        assert!(p.per_class > q.per_class);
    }

    #[test]
    fn default_is_quick() {
        assert_eq!(Scale::default(), Scale::quick());
    }
}
