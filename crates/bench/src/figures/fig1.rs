//! Figure 1 — MLA case study: per-layer SSIM of a single recovered
//! CIFAR-10 image through VGG-16. The paper observes SSIM dropping below
//! the 0.3 threshold after layer 10.

use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_attacks::mla::{Mla, MlaConfig};
use c2pi_attacks::Idpa;
use c2pi_data::metrics::ssim;
use c2pi_nn::BoundaryId;

/// One figure point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Conv id (x axis).
    pub conv_id: usize,
    /// SSIM of the recovered image (y axis).
    pub ssim: f32,
    /// Below the 0.3 identification threshold?
    pub below_threshold: bool,
}

/// Runs the case study.
pub fn run(scale: &Scale) -> Vec<Point> {
    let data = dataset(DatasetKind::Cifar10, scale);
    let mut model = trained_model("vgg16", DatasetKind::Cifar10, scale, &data);
    let x = &data.images()[0];
    let mut points = Vec::new();
    for conv in 1..=model.num_convs() {
        let id = BoundaryId::relu(conv);
        let act = model.forward_to_cut(id, x).expect("valid cut");
        let mut mla = Mla::new(MlaConfig {
            iterations: scale.mla_iterations,
            lr: 0.05,
            seed: 70 + conv as u64,
        });
        let rec = mla.recover(&mut model, id, &act).expect("mla runs");
        let s = ssim(x, &rec).expect("same dims");
        points.push(Point { conv_id: conv, ssim: s, below_threshold: s < 0.3 });
    }
    points
}

/// Prints the figure as a text series.
pub fn print(points: &[Point]) {
    println!("conv id | SSIM   | below 0.3 threshold");
    println!("--------+--------+--------------------");
    for p in points {
        println!(
            "{:>7} | {:>6.3} | {}",
            p.conv_id,
            p.ssim,
            if p.below_threshold { "yes (unidentifiable)" } else { "no" }
        );
    }
    if let Some(first) = points.iter().find(|p| p.below_threshold) {
        println!();
        println!(
            "SSIM falls below the threshold from conv {} on (paper: layer 10 at full scale).",
            first.conv_id
        );
    }
}
