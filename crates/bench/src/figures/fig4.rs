//! Figure 4 — IDPA comparison: MLA vs EINA vs DINA average SSIM per conv
//! layer of VGG-16 on both datasets. DINA should dominate, yielding the
//! most conservative boundary.

use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_attacks::dina::{Dina, DinaConfig};
use c2pi_attacks::eval::{first_failing_conv, sweep_conv_layers, EvalConfig, SweepPoint};
use c2pi_attacks::inversion::{InaConfig, InversionAttack};
use c2pi_attacks::mla::{Mla, MlaConfig};
use c2pi_attacks::Idpa;
use c2pi_data::Dataset;
use c2pi_nn::Model;

/// One attack's sweep over all conv ids.
#[derive(Debug, Clone)]
pub struct Series {
    /// Attack name.
    pub attack: &'static str,
    /// Per-conv-id average SSIM.
    pub points: Vec<SweepPoint>,
    /// Phase-1 boundary candidate implied by the sweep.
    pub potential_boundary: Option<usize>,
}

/// The figure for one dataset.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Dataset label.
    pub dataset: &'static str,
    /// One series per attack.
    pub series: Vec<Series>,
}

fn make_attacks(scale: &Scale) -> Vec<Box<dyn Idpa>> {
    vec![
        Box::new(Mla::new(MlaConfig { iterations: scale.mla_iterations, lr: 0.05, seed: 80 })),
        Box::new(InversionAttack::new(InaConfig {
            epochs: scale.inversion_epochs,
            ..Default::default()
        })),
        Box::new(Dina::new(DinaConfig { epochs: scale.inversion_epochs, ..Default::default() })),
    ]
}

fn sweep_model(model: &mut Model, data: &Dataset, scale: &Scale) -> Vec<Series> {
    let (train, eval) = data.split(0.75, 99).expect("splittable dataset");
    let cfg =
        EvalConfig { noise: 0.1, ssim_threshold: 0.3, eval_images: scale.eval_images, seed: 81 };
    make_attacks(scale)
        .into_iter()
        .map(|mut attack| {
            let points =
                sweep_conv_layers(attack.as_mut(), model, &train, &eval, &cfg).expect("sweep runs");
            let potential_boundary = first_failing_conv(&points);
            let name = attack.name();
            Series { attack: name, points, potential_boundary }
        })
        .collect()
}

/// Runs the comparison on both datasets.
pub fn run(scale: &Scale) -> Vec<Panel> {
    [DatasetKind::Cifar10, DatasetKind::Cifar100]
        .into_iter()
        .map(|kind| {
            let data = dataset(kind, scale);
            let mut model = trained_model("vgg16", kind, scale, &data);
            Panel { dataset: kind.label(), series: sweep_model(&mut model, &data, scale) }
        })
        .collect()
}

/// Prints both panels.
pub fn print(panels: &[Panel]) {
    for panel in panels {
        println!("--- VGG16, {} ---", panel.dataset);
        print!("conv id |");
        for s in &panel.series {
            print!(" {:>6} |", s.attack);
        }
        println!();
        let n = panel.series[0].points.len();
        for i in 0..n {
            print!("{:>7} |", panel.series[0].points[i].conv_id);
            for s in &panel.series {
                print!(" {:>6.3} |", s.points[i].avg_ssim);
            }
            println!();
        }
        for s in &panel.series {
            match s.potential_boundary {
                Some(b) => println!(
                    "{}: potential boundary at conv {} (first failure scanning from tail)",
                    s.attack, b
                ),
                None => println!("{}: never fails — boundary degenerates to the tail", s.attack),
            }
        }
        println!();
    }
}
