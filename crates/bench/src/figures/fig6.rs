//! Figure 6 — noise as a defense: DINA average SSIM per conv layer
//! under defense noise λ ∈ {0, 0.1, …, 0.5}. Higher noise should push
//! the attack's SSIM down (and the usable boundary earlier).

use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_attacks::dina::{Dina, DinaConfig};
use c2pi_attacks::eval::{avg_ssim_at, EvalConfig};
use c2pi_attacks::Idpa;
use c2pi_nn::BoundaryId;

/// The λ grid of the paper.
pub const LAMBDAS: [f32; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// One sweep series at a fixed noise magnitude.
#[derive(Debug, Clone)]
pub struct Series {
    /// Defense noise λ.
    pub lambda: f32,
    /// (conv id, avg SSIM) pairs.
    pub points: Vec<(usize, f32)>,
}

/// One panel per dataset.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Dataset label.
    pub dataset: &'static str,
    /// One series per λ.
    pub series: Vec<Series>,
}

/// Conv ids evaluated at this scale (all at paper scale, a stride-2
/// subset at quick scale — each point trains a fresh DINA).
pub fn conv_grid(scale: &Scale, num_convs: usize) -> Vec<usize> {
    let stride = if scale.width_div == 1 { 1 } else { 2 };
    (1..=num_convs).step_by(stride).collect()
}

/// Runs the noise-defense sweep.
pub fn run(scale: &Scale) -> Vec<Panel> {
    [DatasetKind::Cifar10, DatasetKind::Cifar100]
        .into_iter()
        .map(|kind| {
            let data = dataset(kind, scale);
            let mut model = trained_model("vgg16", kind, scale, &data);
            let (train, eval) = data.split(0.75, 99).expect("splittable dataset");
            let grid = conv_grid(scale, model.num_convs());
            let series = LAMBDAS
                .iter()
                .map(|&lambda| {
                    let mut points = Vec::new();
                    for &conv in &grid {
                        let id = BoundaryId::relu(conv);
                        let mut dina = Dina::new(DinaConfig {
                            epochs: scale.inversion_epochs,
                            ..Default::default()
                        });
                        dina.prepare(&mut model, id, &train, lambda).expect("prepare");
                        let cfg = EvalConfig {
                            noise: lambda,
                            ssim_threshold: 0.3,
                            eval_images: scale.eval_images,
                            seed: 83,
                        };
                        let s = avg_ssim_at(&mut dina, &mut model, id, &eval, &cfg).expect("eval");
                        points.push((conv, s));
                    }
                    Series { lambda, points }
                })
                .collect();
            Panel { dataset: kind.label(), series }
        })
        .collect()
}

/// Prints both panels.
pub fn print(panels: &[Panel]) {
    for panel in panels {
        println!("--- VGG16, {} (DINA avg SSIM under defense noise) ---", panel.dataset);
        print!("conv id |");
        for s in &panel.series {
            print!(" λ={:<4} |", s.lambda);
        }
        println!();
        let n = panel.series[0].points.len();
        for i in 0..n {
            print!("{:>7} |", panel.series[0].points[i].0);
            for s in &panel.series {
                print!(" {:>6.3} |", s.points[i].1);
            }
            println!();
        }
        // Shape check: mean SSIM should fall with λ.
        let means: Vec<f32> = panel
            .series
            .iter()
            .map(|s| s.points.iter().map(|p| p.1).sum::<f32>() / s.points.len() as f32)
            .collect();
        println!(
            "mean SSIM per λ: {:?}",
            means.iter().map(|m| (m * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        );
        println!();
    }
}
