//! Figure 8 — the full boundary search with DINA across AlexNet /
//! VGG-16 / VGG-19 on both datasets: per-layer average SSIM (step 1)
//! plus the noised-accuracy check that finalises the boundary (step 2).

use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_attacks::dina::{Dina, DinaConfig};
use c2pi_attacks::eval::{first_failing_conv, sweep_conv_layers, EvalConfig, SweepPoint};
use c2pi_core::noise::{baseline_accuracy, noised_accuracy};
use c2pi_nn::BoundaryId;

/// The full search record for one (model, dataset) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Model name.
    pub model: &'static str,
    /// Dataset label.
    pub dataset: &'static str,
    /// DINA average SSIM per conv id.
    pub sweep: Vec<SweepPoint>,
    /// Noised accuracy at each conv id checked in phase 2.
    pub accuracy_checks: Vec<(usize, f32)>,
    /// Baseline accuracy.
    pub baseline: f32,
    /// Final boundary conv id.
    pub boundary: usize,
}

/// Runs the search for every model × dataset pair with σ = 0.3,
/// λ = 0.1, δ = 2.5% (the paper's Figure 8 parameters).
pub fn run(scale: &Scale) -> Vec<Cell> {
    run_with(scale, 0.3)
}

/// Runs the search with a custom SSIM threshold (Table I uses 0.2 too).
pub fn run_with(scale: &Scale, sigma: f32) -> Vec<Cell> {
    // Optional subset for long runs: C2PI_MODELS="alexnet,vgg16".
    let model_filter = std::env::var("C2PI_MODELS").unwrap_or_default();
    let wanted: Vec<&str> = if model_filter.is_empty() {
        vec!["alexnet", "vgg16", "vgg19"]
    } else {
        model_filter.split(',').map(|s| s.trim()).collect::<Vec<_>>()
    };
    let mut cells = Vec::new();
    for kind in [DatasetKind::Cifar10, DatasetKind::Cifar100] {
        let data = dataset(kind, scale);
        for model_name in ["alexnet", "vgg16", "vgg19"] {
            if !wanted.contains(&model_name) {
                continue;
            }
            let mut model = trained_model(model_name, kind, scale, &data);
            let (train, eval) = data.split(0.75, 99).expect("splittable dataset");
            let cfg = EvalConfig {
                noise: 0.1,
                ssim_threshold: sigma,
                eval_images: scale.eval_images,
                seed: 85,
            };
            let mut dina =
                Dina::new(DinaConfig { epochs: scale.inversion_epochs, ..Default::default() });
            let sweep =
                sweep_conv_layers(&mut dina, &mut model, &train, &eval, &cfg).expect("sweep runs");
            // Phase 1: deepest prefix where DINA still succeeds.
            let candidate = first_failing_conv(&sweep).unwrap_or(model.num_convs());
            // Phase 2: push later until the accuracy drop is acceptable.
            let baseline = baseline_accuracy(&mut model, &eval).expect("accuracy");
            let target = baseline - 0.025;
            let mut boundary = candidate;
            let mut accuracy_checks = Vec::new();
            loop {
                let acc = noised_accuracy(&mut model, BoundaryId::relu(boundary), 0.1, &eval, 86)
                    .expect("accuracy");
                accuracy_checks.push((boundary, acc));
                if acc >= target || boundary >= model.num_convs() {
                    break;
                }
                boundary += 1;
            }
            cells.push(Cell {
                model: match model_name {
                    "alexnet" => "AlexNet",
                    "vgg16" => "VGG16",
                    _ => "VGG19",
                },
                dataset: kind.label(),
                sweep,
                accuracy_checks,
                baseline,
                boundary,
            });
        }
    }
    cells
}

/// Prints every cell.
pub fn print(cells: &[Cell]) {
    for cell in cells {
        println!(
            "--- {} on {} (boundary conv id: {}) ---",
            cell.model, cell.dataset, cell.boundary
        );
        println!("conv id | DINA avg SSIM | below σ");
        for p in &cell.sweep {
            println!(
                "{:>7} | {:>13.3} | {}",
                p.conv_id,
                p.avg_ssim,
                if p.failed { "yes" } else { "no" }
            );
        }
        println!("baseline accuracy: {:.1}%", cell.baseline * 100.0);
        for (conv, acc) in &cell.accuracy_checks {
            println!("  noised accuracy at conv {conv}: {:.1}%", acc * 100.0);
        }
        println!();
    }
}
