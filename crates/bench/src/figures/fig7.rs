//! Figure 7 — the accuracy cost of the noise defense: classification
//! accuracy when noise of magnitude λ is injected at each conv layer.

use crate::figures::fig6::LAMBDAS;
use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_core::noise::{baseline_accuracy, noised_accuracy};
use c2pi_nn::BoundaryId;

/// One accuracy series at fixed λ.
#[derive(Debug, Clone)]
pub struct Series {
    /// Noise magnitude.
    pub lambda: f32,
    /// (conv id, accuracy) pairs.
    pub points: Vec<(usize, f32)>,
}

/// One panel per dataset.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Dataset label.
    pub dataset: &'static str,
    /// Noise-free accuracy.
    pub baseline: f32,
    /// One series per λ.
    pub series: Vec<Series>,
}

/// Runs the accuracy sweep.
pub fn run(scale: &Scale) -> Vec<Panel> {
    [DatasetKind::Cifar10, DatasetKind::Cifar100]
        .into_iter()
        .map(|kind| {
            let data = dataset(kind, scale);
            let mut model = trained_model("vgg16", kind, scale, &data);
            let baseline = baseline_accuracy(&mut model, &data).expect("accuracy");
            let series = LAMBDAS
                .iter()
                .map(|&lambda| {
                    let points = (1..=model.num_convs())
                        .map(|conv| {
                            let acc = noised_accuracy(
                                &mut model,
                                BoundaryId::relu(conv),
                                lambda,
                                &data,
                                84,
                            )
                            .expect("accuracy");
                            (conv, acc)
                        })
                        .collect();
                    Series { lambda, points }
                })
                .collect();
            Panel { dataset: kind.label(), baseline, series }
        })
        .collect()
}

/// Prints both panels.
pub fn print(panels: &[Panel]) {
    for panel in panels {
        println!(
            "--- VGG16, {} (accuracy with noise at layer; baseline {:.1}%) ---",
            panel.dataset,
            panel.baseline * 100.0
        );
        print!("conv id |");
        for s in &panel.series {
            print!(" λ={:<4} |", s.lambda);
        }
        println!();
        let n = panel.series[0].points.len();
        for i in 0..n {
            print!("{:>7} |", panel.series[0].points[i].0);
            for s in &panel.series {
                print!(" {:>5.1}% |", s.points[i].1 * 100.0);
            }
            println!();
        }
        println!();
    }
}
