//! Figure 5 — DINA loss-coefficient ablation: monotonically increasing
//! coefficients (DINA-c1) vs uniform coefficients (DINA-c2) on VGG-16.

use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_attacks::dina::{CoefficientSchedule, Dina, DinaConfig};
use c2pi_attacks::eval::{sweep_conv_layers, EvalConfig};

/// One comparison row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Conv id.
    pub conv_id: usize,
    /// Average SSIM with increasing coefficients.
    pub c1: f32,
    /// Average SSIM with uniform coefficients.
    pub c2: f32,
}

impl Row {
    /// The improvement DINA-c1 brings (the figure's secondary axis).
    pub fn improvement(&self) -> f32 {
        self.c1 - self.c2
    }
}

/// One panel per dataset.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Dataset label.
    pub dataset: &'static str,
    /// Per-conv rows.
    pub rows: Vec<Row>,
}

/// Runs the ablation on both datasets.
pub fn run(scale: &Scale) -> Vec<Panel> {
    [DatasetKind::Cifar10, DatasetKind::Cifar100]
        .into_iter()
        .map(|kind| {
            let data = dataset(kind, scale);
            let mut model = trained_model("vgg16", kind, scale, &data);
            let (train, eval) = data.split(0.75, 99).expect("splittable dataset");
            let cfg = EvalConfig {
                noise: 0.1,
                ssim_threshold: 0.3,
                eval_images: scale.eval_images,
                seed: 82,
            };
            let mut sweep = |schedule| {
                let mut dina = Dina::new(DinaConfig {
                    schedule,
                    epochs: scale.inversion_epochs,
                    ..Default::default()
                });
                sweep_conv_layers(&mut dina, &mut model, &train, &eval, &cfg).expect("sweep runs")
            };
            let s1 = sweep(CoefficientSchedule::IncreasingC1);
            let s2 = sweep(CoefficientSchedule::UniformC2);
            let rows = s1
                .iter()
                .zip(s2.iter())
                .map(|(a, b)| Row { conv_id: a.conv_id, c1: a.avg_ssim, c2: b.avg_ssim })
                .collect();
            Panel { dataset: kind.label(), rows }
        })
        .collect()
}

/// Prints both panels.
pub fn print(panels: &[Panel]) {
    for panel in panels {
        println!("--- VGG16, {} ---", panel.dataset);
        println!("conv id | DINA-c1 | DINA-c2 | improvement");
        println!("--------+---------+---------+------------");
        let mut mean_impr = 0.0f32;
        for r in &panel.rows {
            println!(
                "{:>7} | {:>7.3} | {:>7.3} | {:>+10.3}",
                r.conv_id,
                r.c1,
                r.c2,
                r.improvement()
            );
            mean_impr += r.improvement();
        }
        mean_impr /= panel.rows.len().max(1) as f32;
        println!("mean improvement of increasing coefficients: {mean_impr:+.3}");
        println!();
    }
}
