//! Table I — C2PI boundary and accuracy for σ = 0.2 and σ = 0.3 across
//! AlexNet / VGG-16 / VGG-19 on both datasets.
//!
//! The boundary depends on σ only through thresholding the same DINA
//! sweep, so this table reuses the Figure 8 machinery at two thresholds.

use crate::figures::fig8;
use crate::Scale;

/// One table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Full-PI (noise-free) baseline accuracy, percent.
    pub baseline_acc: f32,
    /// Boundary conv id at σ = 0.2.
    pub boundary_02: usize,
    /// Accuracy at that boundary with λ = 0.1 noise, percent.
    pub acc_02: f32,
    /// Boundary conv id at σ = 0.3.
    pub boundary_03: usize,
    /// Accuracy at that boundary, percent.
    pub acc_03: f32,
}

/// Runs both threshold settings.
pub fn run(scale: &Scale) -> Vec<Row> {
    let strict = fig8::run_with(scale, 0.2);
    let loose = fig8::run_with(scale, 0.3);
    strict
        .iter()
        .zip(loose.iter())
        .map(|(s, l)| Row {
            dataset: s.dataset,
            model: s.model,
            baseline_acc: s.baseline * 100.0,
            boundary_02: s.boundary,
            acc_02: s.accuracy_checks.last().map(|a| a.1 * 100.0).unwrap_or(0.0),
            boundary_03: l.boundary,
            acc_03: l.accuracy_checks.last().map(|a| a.1 * 100.0).unwrap_or(0.0),
        })
        .collect()
}

/// Prints the table in the paper's layout.
pub fn print(rows: &[Row]) {
    println!(
        "{:<28} {:<8} | {:>12} | {:>16} | {:>16}",
        "Dataset", "Network", "Baseline Acc", "σ=0.2 Bnd/Acc", "σ=0.3 Bnd/Acc"
    );
    println!("{}", "-".repeat(92));
    for r in rows {
        println!(
            "{:<28} {:<8} | {:>11.2}% | {:>7} / {:>5.2}% | {:>7} / {:>5.2}%",
            r.dataset, r.model, r.baseline_acc, r.boundary_02, r.acc_02, r.boundary_03, r.acc_03
        );
    }
    println!();
    println!("(σ = 0.2 is stricter: the attack must do worse before layers go clear,");
    println!(" so its boundary is at or after the σ = 0.3 boundary.)");
}
