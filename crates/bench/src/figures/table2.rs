//! Table II — end-to-end performance: full PI vs C2PI at σ = 0.2 / 0.3
//! boundaries, for Delphi- and Cheetah-style engines, on VGG-16 and
//! VGG-19 under the LAN and WAN network models.

use crate::setup::{dataset, trained_model, DatasetKind};
use crate::Scale;
use c2pi_core::session::C2pi;
use c2pi_nn::BoundaryId;
use c2pi_pi::engine::PiBackend;
use c2pi_tensor::Tensor;
use c2pi_transport::NetModel;

/// Cost triple for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Latency under the LAN model, seconds.
    pub lan_s: f64,
    /// Latency under the WAN model, seconds.
    pub wan_s: f64,
    /// Communication, megabytes.
    pub comm_mb: f64,
}

impl Cost {
    fn from_report(report: &c2pi_pi::report::PiReport) -> Self {
        Cost {
            lan_s: report.latency_seconds(&NetModel::lan()),
            wan_s: report.latency_seconds(&NetModel::wan()),
            comm_mb: report.comm_mb(),
        }
    }

    /// Speedup of `self` relative to a baseline cost.
    pub fn speedup_over(&self, base: &Cost) -> (f64, f64, f64) {
        (base.lan_s / self.lan_s, base.wan_s / self.wan_s, base.comm_mb / self.comm_mb)
    }
}

/// One table row: a (network, method) pair with its three variants.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub network: &'static str,
    /// PI method name.
    pub method: &'static str,
    /// Full-PI baseline.
    pub full: Cost,
    /// C2PI with the σ = 0.2 boundary.
    pub c2pi_02: Cost,
    /// C2PI with the σ = 0.3 boundary.
    pub c2pi_03: Cost,
}

/// The boundaries Table II uses, from the paper's Table I (conv-id
/// granularity; callers can override with measured boundaries from the
/// table1 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Boundaries {
    /// σ = 0.2 boundary.
    pub sigma02: BoundaryId,
    /// σ = 0.3 boundary.
    pub sigma03: BoundaryId,
}

/// The paper's Table I boundaries for CIFAR-10.
pub fn paper_boundaries(network: &str) -> Boundaries {
    match network {
        // VGG16: 13.5 (σ=0.2) and 9 (σ=0.3); VGG19: 11 and 9.
        "vgg16" => Boundaries { sigma02: BoundaryId::relu(13), sigma03: BoundaryId::conv(9) },
        _ => Boundaries { sigma02: BoundaryId::conv(11), sigma03: BoundaryId::conv(9) },
    }
}

fn run_cost(
    model: &c2pi_nn::Model,
    backend: PiBackend,
    boundary: Option<BoundaryId>,
    x: &Tensor,
) -> Cost {
    let builder = C2pi::builder(model.clone()).backend(backend).noise(0.1).noise_seed(87);
    let builder = match boundary {
        Some(b) => builder.split_at(b),
        None => builder.full_pi(),
    };
    let mut session = builder.build().expect("valid boundary");
    session.preprocess(2).expect("preprocessing runs");
    // Two runs, keep the faster: damps wall-clock noise from a loaded
    // machine (traffic is identical across runs by construction).
    let a = Cost::from_report(&session.infer(x).expect("inference runs").report);
    let b = Cost::from_report(&session.infer(x).expect("inference runs").report);
    Cost {
        lan_s: a.lan_s.min(b.lan_s),
        wan_s: a.wan_s.min(b.wan_s),
        comm_mb: a.comm_mb.min(b.comm_mb),
    }
}

/// Runs the performance comparison (CIFAR-10 analogue, as in the paper).
pub fn run(scale: &Scale) -> Vec<Row> {
    let data = dataset(DatasetKind::Cifar10, scale);
    let x = data.images()[0].clone();
    let mut rows = Vec::new();
    for network in ["vgg16", "vgg19"] {
        let model = trained_model(network, DatasetKind::Cifar10, scale, &data.take(16));
        let bounds = paper_boundaries(network);
        for backend in [PiBackend::Delphi, PiBackend::Cheetah] {
            let full = run_cost(&model, backend, None, &x);
            let c2pi_02 = run_cost(&model, backend, Some(bounds.sigma02), &x);
            let c2pi_03 = run_cost(&model, backend, Some(bounds.sigma03), &x);
            rows.push(Row {
                network: if network == "vgg16" { "VGG16" } else { "VGG19" },
                method: backend.name(),
                full,
                c2pi_02,
                c2pi_03,
            });
        }
    }
    rows
}

/// Prints the table in the paper's layout, with speedups.
pub fn print(rows: &[Row]) {
    println!(
        "{:<7} {:<8} | {:>30} | {:>38} | {:>38}",
        "Network",
        "Method",
        "Full PI (LAN s / WAN s / MB)",
        "C2PI σ=0.2 (speedups)",
        "C2PI σ=0.3 (speedups)"
    );
    println!("{}", "-".repeat(132));
    for r in rows {
        let (l2, w2, m2) = r.c2pi_02.speedup_over(&r.full);
        let (l3, w3, m3) = r.c2pi_03.speedup_over(&r.full);
        println!(
            "{:<7} {:<8} | {:>8.2} / {:>8.2} / {:>8.2} | {:>6.2} ({:>4.2}x) {:>6.2} ({:>4.2}x) {:>6.1} ({:>4.2}x) | {:>6.2} ({:>4.2}x) {:>6.2} ({:>4.2}x) {:>6.1} ({:>4.2}x)",
            r.network,
            r.method,
            r.full.lan_s,
            r.full.wan_s,
            r.full.comm_mb,
            r.c2pi_02.lan_s,
            l2,
            r.c2pi_02.wan_s,
            w2,
            r.c2pi_02.comm_mb,
            m2,
            r.c2pi_03.lan_s,
            l3,
            r.c2pi_03.wan_s,
            w3,
            r.c2pi_03.comm_mb,
            m3,
        );
    }
    println!();
    println!("Shape targets (paper): C2PI σ=0.3 beats full PI by up to ~2.9-3.9x latency");
    println!("and ~2.5-2.75x communication; σ=0.2 on VGG16 is ~1x (boundary is very late).");
}
