//! One module per paper experiment. Every `run` function returns
//! structured rows; the `src/bin` wrappers print them.

pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table2;
