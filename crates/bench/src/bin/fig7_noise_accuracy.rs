//! Regenerates Figure 7 - accuracy under noise injection of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::fig7;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 7 - accuracy under noise injection", &scale);
    let rows = fig7::run(&scale);
    fig7::print(&rows);
}
