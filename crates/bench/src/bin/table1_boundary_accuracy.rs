//! Regenerates Table I - C2PI boundary and accuracy of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::table1;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Table I - C2PI boundary and accuracy", &scale);
    let rows = table1::run(&scale);
    table1::print(&rows);
}
