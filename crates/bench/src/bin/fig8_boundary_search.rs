//! Regenerates Figure 8 - boundary search with DINA of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::fig8;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 8 - boundary search with DINA", &scale);
    let rows = fig8::run(&scale);
    fig8::print(&rows);
}
