//! Regenerates Table II - C2PI vs Delphi/Cheetah performance of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::table2;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Table II - C2PI vs Delphi/Cheetah performance", &scale);
    let rows = table2::run(&scale);
    table2::print(&rows);
}
