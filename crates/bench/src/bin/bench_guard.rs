//! Bench regression guard: compares one benchmark row's `mean_ns`
//! between a baseline `BENCH_results.json` and a freshly generated one,
//! failing (exit 1) when the new mean regresses past the allowed
//! factor.
//!
//! ```text
//! bench_guard <baseline.json> <new.json> <row-id> <max-ratio>
//! bench_guard BENCH_results.baseline.json BENCH_results.json \
//!     session_phases/online/delphi 1.25
//! ```
//!
//! A row missing from the *baseline* passes (first run of a new bench);
//! a row missing from the *new* file fails (the bench silently
//! disappeared). The files are the `bench_summary` output: flat JSON
//! with one `{"id": ..., "mean_ns": N, ...}` row per line, which is all
//! the parser relies on.

fn mean_ns_for(content: &str, id: &str) -> Option<f64> {
    let needle = format!("\"id\": \"{id}\"");
    for line in content.lines() {
        if !line.contains(&needle) {
            continue;
        }
        let rest = line.split("\"mean_ns\":").nth(1)?;
        let num: String =
            rest.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        return num.parse().ok();
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, new_path, id, max_ratio] = args.as_slice() else {
        eprintln!("usage: bench_guard <baseline.json> <new.json> <row-id> <max-ratio>");
        std::process::exit(2);
    };
    let max_ratio: f64 = max_ratio.parse().unwrap_or_else(|_| {
        eprintln!("bench_guard: max-ratio {max_ratio:?} is not a number");
        std::process::exit(2);
    });
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let fresh = read(new_path);
    let Some(new_mean) = mean_ns_for(&fresh, id) else {
        eprintln!("bench_guard: row {id:?} missing from {new_path}");
        std::process::exit(1);
    };
    let Some(old_mean) = mean_ns_for(&baseline, id) else {
        println!("bench_guard: {id}: no baseline row in {baseline_path}, passing (first run)");
        return;
    };
    let ratio = new_mean / old_mean;
    println!(
        "bench_guard: {id}: baseline {old_mean:.0} ns -> new {new_mean:.0} ns \
         (ratio {ratio:.3}, limit {max_ratio:.3})"
    );
    if ratio > max_ratio {
        eprintln!("bench_guard: FAIL — {id} regressed by more than the allowed factor");
        std::process::exit(1);
    }
}
