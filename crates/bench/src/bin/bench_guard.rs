//! Bench regression guard: compares benchmark rows' `mean_ns` between a
//! baseline `BENCH_results.json` and a freshly generated one, failing
//! (exit 1) when any guarded row regresses past its allowed factor.
//!
//! The rules live in a committed JSON file — one rule per line, e.g.
//! `ci/bench_guard_rules.json`:
//!
//! ```text
//! { "rules": [
//!   { "id": "session_phases/online/delphi", "direction": "lower_is_better", "max_ratio": 1.25 },
//!   { "id": "gc_table_bytes/relu_item",     "direction": "lower_is_better", "max_ratio": 1.0 }
//! ] }
//! ```
//!
//! ```text
//! bench_guard <baseline.json> <new.json> <rules.json>
//! bench_guard <baseline.json> <new.json> <row-id> <max-ratio>   # ad-hoc single rule
//! ```
//!
//! `direction` is `lower_is_better` (latency-like: fail when
//! `new/old > max_ratio`) or `higher_is_better` (throughput-like: fail
//! when `old/new > max_ratio`). `max_ratio: 1.0` pins a metric exactly
//! (any increase of a lower-is-better value fails) — used for
//! deterministic size metrics like `gc_table_bytes`.
//!
//! A rule may also carry `"min_value": N` — an **absolute floor** on
//! the row's fresh `mean_ns`, checked even when the baseline has no
//! row. Ratio rules can only express "no worse than last time"; a
//! floor expresses an invariant like "the batched/unbatched speedup
//! row (×1000) must stay ≥ 1000", which no baseline ratio can pin.
//! Symmetrically, `"max_value": N` is an **absolute ceiling** on the
//! fresh value — e.g. "the epoll 4096-vs-64 wake-latency ratio (×1000)
//! must stay ≤ 2000", the O(ready) invariant of the event-driven
//! poller. Floors and ceilings are never loosened by
//! `BENCH_GUARD_SCALE`.
//!
//! A row missing from the *baseline* passes (first run of a new bench);
//! a row missing from the *new* file fails (the bench silently
//! disappeared). `BENCH_GUARD_SCALE` multiplies every `max_ratio` of
//! rules with a limit above 1.0 (loosening knob for noisy machines; the
//! exact `1.0` pins are never scaled). The bench files are the
//! `bench_summary` output: flat JSON with one
//! `{"id": ..., "mean_ns": N, ...}` row per line, which is all the
//! parser relies on.

#[derive(Debug, Clone, PartialEq)]
struct Rule {
    id: String,
    lower_is_better: bool,
    max_ratio: f64,
    /// Absolute floor on the fresh `mean_ns`, independent of any
    /// baseline — for rows that are really invariants (e.g. speedup
    /// ratios ×1000 that must stay ≥ 1000). Never scaled.
    min_value: Option<f64>,
    /// Absolute ceiling on the fresh `mean_ns`, the floor's mirror —
    /// for invariants like "epoll wake scaling stays ≤ 2×". Never
    /// scaled.
    max_value: Option<f64>,
}

fn mean_ns_for(content: &str, id: &str) -> Option<f64> {
    let needle = format!("\"id\": \"{id}\"");
    for line in content.lines() {
        if !line.contains(&needle) {
            continue;
        }
        let rest = line.split("\"mean_ns\":").nth(1)?;
        let num: String =
            rest.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        return num.parse().ok();
    }
    None
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let rest = line.split(&format!("\"{key}\"")).nth(1)?;
    let rest = rest.split('"').nth(1)?;
    Some(rest.to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{key}\"")).nth(1)?;
    let rest = rest.split(':').nth(1)?;
    let num: String =
        rest.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    num.parse().ok()
}

/// Parses the rules file: every line mentioning an `"id"` is one rule.
fn parse_rules(content: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for (n, line) in content.lines().enumerate() {
        if !line.contains("\"id\"") {
            continue;
        }
        let id = json_str_field(line, "id")
            .ok_or_else(|| format!("rules line {}: unreadable \"id\"", n + 1))?;
        let direction = json_str_field(line, "direction")
            .ok_or_else(|| format!("rule {id}: missing \"direction\""))?;
        let lower_is_better = match direction.as_str() {
            "lower_is_better" => true,
            "higher_is_better" => false,
            other => return Err(format!("rule {id}: unknown direction {other:?}")),
        };
        let max_ratio = json_num_field(line, "max_ratio")
            .ok_or_else(|| format!("rule {id}: missing \"max_ratio\""))?;
        if max_ratio < 1.0 {
            return Err(format!("rule {id}: max_ratio {max_ratio} is below 1.0"));
        }
        let bound = |key: &str| -> Result<Option<f64>, String> {
            if !line.contains(&format!("\"{key}\"")) {
                return Ok(None);
            }
            json_num_field(line, key)
                .map(Some)
                .ok_or_else(|| format!("rule {id}: unreadable \"{key}\""))
        };
        let min_value = bound("min_value")?;
        let max_value = bound("max_value")?;
        if let (Some(floor), Some(ceiling)) = (min_value, max_value) {
            if floor > ceiling {
                return Err(format!("rule {id}: min_value {floor} exceeds max_value {ceiling}"));
            }
        }
        rules.push(Rule { id, lower_is_better, max_ratio, min_value, max_value });
    }
    if rules.is_empty() {
        return Err("rules file contains no rules".into());
    }
    Ok(rules)
}

/// Applies one rule; returns `Err(reason)` on regression.
fn check_rule(rule: &Rule, baseline: &str, fresh: &str, scale: f64) -> Result<String, String> {
    let Some(new_mean) = mean_ns_for(fresh, &rule.id) else {
        return Err(format!("row {:?} missing from the new results", rule.id));
    };
    // The absolute bounds bind before any baseline comparison — they
    // are invariants of the fresh run, not drift checks.
    if let Some(floor) = rule.min_value {
        if new_mean < floor {
            return Err(format!(
                "{}: new {new_mean:.0} is below the absolute floor {floor:.0}",
                rule.id
            ));
        }
    }
    if let Some(ceiling) = rule.max_value {
        if new_mean > ceiling {
            return Err(format!(
                "{}: new {new_mean:.0} is above the absolute ceiling {ceiling:.0}",
                rule.id
            ));
        }
    }
    let Some(old_mean) = mean_ns_for(baseline, &rule.id) else {
        return Ok(format!("{}: no baseline row, passing (first run)", rule.id));
    };
    // Exact pins (max_ratio 1.0) stay exact regardless of the scale.
    let limit = if rule.max_ratio > 1.0 { rule.max_ratio * scale } else { rule.max_ratio };
    let (ratio, arrow) = if rule.lower_is_better {
        (new_mean / old_mean, "lower-is-better")
    } else {
        (old_mean / new_mean, "higher-is-better")
    };
    let line = format!(
        "{}: baseline {old_mean:.0} -> new {new_mean:.0} ({arrow} ratio {ratio:.3}, limit {limit:.3})",
        rule.id
    );
    if ratio > limit {
        Err(format!("{line} — regressed past the allowed factor"))
    } else {
        Ok(line)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let (baseline_path, new_path, rules) = match args.as_slice() {
        [baseline_path, new_path, rules_path] => {
            let rules = parse_rules(&read(rules_path)).unwrap_or_else(|e| {
                eprintln!("bench_guard: {rules_path}: {e}");
                std::process::exit(2);
            });
            (baseline_path, new_path, rules)
        }
        [baseline_path, new_path, id, max_ratio] => {
            let max_ratio: f64 = max_ratio.parse().unwrap_or_else(|_| {
                eprintln!("bench_guard: max-ratio {max_ratio:?} is not a number");
                std::process::exit(2);
            });
            let rule = Rule {
                id: id.clone(),
                lower_is_better: true,
                max_ratio,
                min_value: None,
                max_value: None,
            };
            (baseline_path, new_path, vec![rule])
        }
        _ => {
            eprintln!(
                "usage: bench_guard <baseline.json> <new.json> <rules.json>\n\
                        bench_guard <baseline.json> <new.json> <row-id> <max-ratio>"
            );
            std::process::exit(2);
        }
    };
    let scale: f64 = std::env::var("BENCH_GUARD_SCALE")
        .ok()
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bench_guard: BENCH_GUARD_SCALE {s:?} is not a number");
                std::process::exit(2);
            })
        })
        .unwrap_or(1.0);
    let baseline = read(baseline_path);
    let fresh = read(new_path);
    let mut failed = false;
    for rule in &rules {
        match check_rule(rule, &baseline, &fresh, scale) {
            Ok(line) => println!("bench_guard: {line}"),
            Err(reason) => {
                eprintln!("bench_guard: FAIL — {reason}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_guard: {} rule(s) passed", rules.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &str = r#"{ "rules": [
  { "id": "a/b", "direction": "lower_is_better", "max_ratio": 1.25 },
  { "id": "c/d", "direction": "higher_is_better", "max_ratio": 1.6 },
  { "id": "size/e", "direction": "lower_is_better", "max_ratio": 1.0 }
] }"#;

    fn row(id: &str, mean: u64) -> String {
        format!("{{\"id\": \"{id}\", \"mean_ns\": {mean}, \"samples\": 5}}\n")
    }

    #[test]
    fn parses_committed_rule_shape() {
        let rules = parse_rules(RULES).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(
            rules[0],
            Rule {
                id: "a/b".into(),
                lower_is_better: true,
                max_ratio: 1.25,
                min_value: None,
                max_value: None,
            }
        );
        assert!(!rules[1].lower_is_better);
        assert_eq!(rules[2].max_ratio, 1.0);
    }

    #[test]
    fn parses_the_absolute_floor() {
        let rules = parse_rules(
            "{ \"rules\": [ { \"id\": \"f/g\", \"direction\": \"higher_is_better\", \"max_ratio\": 3.0, \"min_value\": 1000 } ] }",
        )
        .unwrap();
        assert_eq!(rules[0].min_value, Some(1000.0));
    }

    #[test]
    fn absolute_floor_binds_before_and_without_a_baseline() {
        let rule = Rule {
            id: "f/g".into(),
            lower_is_better: false,
            max_ratio: 3.0,
            min_value: Some(1000.0),
            max_value: None,
        };
        // No baseline row: the floor still decides pass/fail.
        assert!(check_rule(&rule, "", &row("f/g", 1100), 1.0).is_ok());
        assert!(check_rule(&rule, "", &row("f/g", 900), 1.0).is_err());
        // With a healthy baseline, a below-floor fresh value still fails
        // even when the ratio itself would pass — and the scale knob
        // never loosens the floor.
        assert!(check_rule(&rule, &row("f/g", 1100), &row("f/g", 900), 10.0).is_err());
        assert!(check_rule(&rule, &row("f/g", 1100), &row("f/g", 1050), 1.0).is_ok());
    }

    #[test]
    fn parses_the_absolute_ceiling() {
        let rules = parse_rules(
            "{ \"rules\": [ { \"id\": \"h/i\", \"direction\": \"lower_is_better\", \"max_ratio\": 2.0, \"max_value\": 2000 } ] }",
        )
        .unwrap();
        assert_eq!(rules[0].max_value, Some(2000.0));
    }

    #[test]
    fn absolute_ceiling_binds_before_and_without_a_baseline() {
        let rule = Rule {
            id: "h/i".into(),
            lower_is_better: true,
            max_ratio: 2.0,
            min_value: None,
            max_value: Some(2000.0),
        };
        // No baseline row: the ceiling still decides pass/fail.
        assert!(check_rule(&rule, "", &row("h/i", 1900), 1.0).is_ok());
        assert!(check_rule(&rule, "", &row("h/i", 2100), 1.0).is_err());
        // An above-ceiling fresh value fails even when the ratio would
        // pass — and the scale knob never loosens the ceiling.
        assert!(check_rule(&rule, &row("h/i", 1900), &row("h/i", 2100), 10.0).is_err());
        assert!(check_rule(&rule, &row("h/i", 1900), &row("h/i", 1950), 1.0).is_ok());
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(parse_rules("{ \"rules\": [] }").is_err());
        assert!(parse_rules("{ \"rules\": [ { \"id\": \"x\" } ] }").is_err());
        assert!(parse_rules(
            "{ \"rules\": [ { \"id\": \"x\", \"direction\": \"sideways\", \"max_ratio\": 2 } ] }"
        )
        .is_err());
        assert!(parse_rules(
            "{ \"rules\": [ { \"id\": \"x\", \"direction\": \"lower_is_better\", \"max_ratio\": 0.5 } ] }"
        )
        .is_err());
        // A floor above its own ceiling can never pass — reject it.
        assert!(parse_rules(
            "{ \"rules\": [ { \"id\": \"x\", \"direction\": \"lower_is_better\", \"max_ratio\": 2.0, \"min_value\": 3000, \"max_value\": 2000 } ] }"
        )
        .is_err());
    }

    #[test]
    fn lower_is_better_guards_slowdowns() {
        let rule = &parse_rules(RULES).unwrap()[0];
        let base = row("a/b", 1000);
        assert!(check_rule(rule, &base, &row("a/b", 1200), 1.0).is_ok());
        assert!(check_rule(rule, &base, &row("a/b", 1300), 1.0).is_err());
        // Scale loosens non-pinned limits.
        assert!(check_rule(rule, &base, &row("a/b", 1300), 1.2).is_ok());
    }

    #[test]
    fn higher_is_better_guards_shrinkage() {
        let rule = &parse_rules(RULES).unwrap()[1];
        let base = row("c/d", 1000);
        assert!(check_rule(rule, &base, &row("c/d", 700), 1.0).is_ok());
        assert!(check_rule(rule, &base, &row("c/d", 500), 1.0).is_err());
    }

    #[test]
    fn exact_pins_ignore_scale_and_catch_any_growth() {
        let rule = &parse_rules(RULES).unwrap()[2];
        let base = row("size/e", 6144);
        assert!(check_rule(rule, &base, &row("size/e", 6144), 1.0).is_ok());
        assert!(check_rule(rule, &base, &row("size/e", 6145), 5.0).is_err());
    }

    #[test]
    fn missing_rows_pass_on_baseline_fail_on_new() {
        let rule = &parse_rules(RULES).unwrap()[0];
        assert!(check_rule(rule, "", &row("a/b", 1000), 1.0).is_ok());
        assert!(check_rule(rule, &row("a/b", 1000), "", 1.0).is_err());
    }
}
