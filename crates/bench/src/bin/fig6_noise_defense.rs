//! Regenerates Figure 6 - noise as a defense against DINA of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::fig6;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 6 - noise as a defense against DINA", &scale);
    let rows = fig6::run(&scale);
    fig6::print(&rows);
}
