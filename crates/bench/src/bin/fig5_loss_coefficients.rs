//! Regenerates Figure 5 - DINA coefficient schedules of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::fig5;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 5 - DINA coefficient schedules", &scale);
    let rows = fig5::run(&scale);
    fig5::print(&rows);
}
