//! Merges the per-bench JSON files the criterion shim writes (via
//! `CRITERION_OUT_JSON`) into one machine-readable `BENCH_results.json`
//! document on stdout.
//!
//! ```text
//! cargo run -p c2pi-bench --bin bench_summary -- target/bench-smoke/*.json > BENCH_results.json
//! ```
//!
//! Each input file is a JSON array of benchmark rows; the output is one
//! object mapping the bench name (the file stem) to its rows, so CI can
//! upload a single artifact per run and diff it across commits.

use std::path::Path;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: bench_summary <shim-json>... > BENCH_results.json");
        std::process::exit(2);
    }
    let mut entries = Vec::new();
    for path in &paths {
        let stem = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown")
            .replace(['\\', '"'], "_");
        match std::fs::read_to_string(path) {
            Ok(content) => {
                let content = content.trim();
                // Sanity check: the shim writes a JSON array; refuse to
                // embed anything else into the merged document.
                if !(content.starts_with('[') && content.ends_with(']')) {
                    eprintln!("bench_summary: {path} is not a JSON array, skipping");
                    continue;
                }
                entries.push(format!("  \"{stem}\": {content}"));
            }
            Err(e) => {
                eprintln!("bench_summary: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{{\n{}\n}}", entries.join(",\n"));
}
