//! Regenerates Figure 1 - MLA case study on VGG16 of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::fig1;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 1 - MLA case study on VGG16", &scale);
    let rows = fig1::run(&scale);
    fig1::print(&rows);
}
