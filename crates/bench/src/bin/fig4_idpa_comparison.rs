//! Regenerates Figure 4 - IDPA comparison (MLA / EINA / DINA) of the C2PI paper.
//! Pass `--paper-scale` for the paper's full parameter regime.

use c2pi_bench::figures::fig4;
use c2pi_bench::setup::banner;
use c2pi_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 4 - IDPA comparison (MLA / EINA / DINA)", &scale);
    let rows = fig4::run(&scale);
    fig4::print(&rows);
}
