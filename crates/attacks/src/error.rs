//! Error type for attack operations.

use c2pi_data::DataError;
use c2pi_nn::NnError;
use c2pi_tensor::TensorError;
use std::fmt;

/// Error returned by fallible attack operations.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// A network-layer error.
    Nn(NnError),
    /// A tensor kernel rejected its inputs.
    Tensor(TensorError),
    /// A dataset/metric error.
    Data(DataError),
    /// The attack was used before [`crate::Idpa::prepare`], or for a
    /// different boundary than it was prepared for.
    NotPrepared(String),
    /// Invalid configuration.
    BadConfig(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Nn(e) => write!(f, "network error: {e}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::Data(e) => write!(f, "data error: {e}"),
            AttackError::NotPrepared(msg) => write!(f, "attack not prepared: {msg}"),
            AttackError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            AttackError::Tensor(e) => Some(e),
            AttackError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

impl From<DataError> for AttackError {
    fn from(e: DataError) -> Self {
        AttackError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AttackError::NotPrepared("dina at 7".into()).to_string().contains("dina"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
