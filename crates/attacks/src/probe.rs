//! Configurable IDPA probes: a declarative layer over the attack
//! constructors so boundary auditors (the deployment planner in
//! `c2pi-core`, CLI tools, config files) can name and budget attacks
//! without knowing each attack's config struct.
//!
//! A [`ProbeSpec`] is `(which attack, how hard to try)`; [`ProbeSpec::build`]
//! instantiates the matching [`Idpa`]. Panels are just `Vec<ProbeSpec>`:
//! [`quick_panel`] is the planner's default (one gradient-based and two
//! learned probes at CPU-quick budgets), [`full_panel`] covers all four
//! attack families at their default budgets.
//!
//! ```
//! use c2pi_attacks::probe::{ProbeKind, ProbeSpec};
//!
//! let spec = ProbeSpec::parse("mla:40").unwrap();
//! assert_eq!(spec.kind, ProbeKind::Mla);
//! assert_eq!(spec.budget, 40);
//! let attack = spec.build();
//! assert_eq!(attack.name(), "mla");
//! ```

use crate::dina::{Dina, DinaConfig};
use crate::inversion::{InaConfig, InversionAttack};
use crate::mla::{Mla, MlaConfig};
use crate::{AttackError, Idpa, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four IDPA families of the paper (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Maximum-likelihood attack: gradient descent on the input.
    Mla,
    /// Inverse-network attack with plain conv blocks.
    Ina,
    /// Enhanced INA: residual decoder blocks.
    Eina,
    /// The paper's distillation-based inverse-network attack.
    Dina,
}

impl ProbeKind {
    /// Report name (`mla`, `ina`, `eina`, `dina`), matching
    /// [`Idpa::name`] of the built attack.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::Mla => "mla",
            ProbeKind::Ina => "ina",
            ProbeKind::Eina => "eina",
            ProbeKind::Dina => "dina",
        }
    }

    /// Parses a report name; `None` for anything else.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "mla" => Some(ProbeKind::Mla),
            "ina" => Some(ProbeKind::Ina),
            "eina" => Some(ProbeKind::Eina),
            "dina" => Some(ProbeKind::Dina),
            _ => None,
        }
    }
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One configured probe: an attack family plus an effort budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// Attack family.
    pub kind: ProbeKind,
    /// Effort budget: gradient iterations for MLA, training epochs for
    /// the learned attacks.
    pub budget: usize,
    /// Weight-init / noise seed threaded into the attack config.
    pub seed: u64,
}

impl ProbeSpec {
    /// A CPU-quick budget for the given family (the planner default):
    /// enough effort to recover early-layer inputs on the synthetic
    /// datasets, small enough to sweep every candidate boundary.
    pub fn quick(kind: ProbeKind) -> Self {
        let budget = match kind {
            ProbeKind::Mla => 60,
            ProbeKind::Ina | ProbeKind::Eina => 6,
            ProbeKind::Dina => 6,
        };
        ProbeSpec { kind, budget, seed: 29 }
    }

    /// The attack family's own default budget (what the figure
    /// harnesses use at quick scale).
    pub fn thorough(kind: ProbeKind) -> Self {
        let budget = match kind {
            ProbeKind::Mla => MlaConfig::default().iterations,
            ProbeKind::Ina | ProbeKind::Eina => InaConfig::default().epochs,
            ProbeKind::Dina => DinaConfig::default().epochs,
        };
        ProbeSpec { kind, budget, seed: 29 }
    }

    /// Parses `name` or `name:budget` (e.g. `dina`, `mla:200`).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for unknown families or
    /// non-numeric budgets.
    pub fn parse(s: &str) -> Result<Self> {
        let (name, budget) = match s.split_once(':') {
            Some((n, b)) => {
                let budget = b.parse::<usize>().map_err(|_| {
                    AttackError::BadConfig(format!("probe budget in {s:?} is not a number"))
                })?;
                (n, Some(budget))
            }
            None => (s, None),
        };
        let kind = ProbeKind::by_name(name)
            .ok_or_else(|| AttackError::BadConfig(format!("unknown probe family {name:?}")))?;
        let mut spec = ProbeSpec::quick(kind);
        if let Some(budget) = budget {
            spec.budget = budget;
        }
        Ok(spec)
    }

    /// The probe's report label, `name:budget`.
    pub fn label(&self) -> String {
        format!("{}:{}", self.kind.name(), self.budget)
    }

    /// Instantiates the configured attack.
    pub fn build(&self) -> Box<dyn Idpa> {
        match self.kind {
            ProbeKind::Mla => Box::new(Mla::new(MlaConfig {
                iterations: self.budget,
                seed: self.seed,
                ..Default::default()
            })),
            ProbeKind::Ina => Box::new(InversionAttack::new(InaConfig {
                arch: crate::inversion::InaArch::Plain,
                epochs: self.budget,
                seed: self.seed,
                ..Default::default()
            })),
            ProbeKind::Eina => Box::new(InversionAttack::new(InaConfig {
                arch: crate::inversion::InaArch::Residual,
                epochs: self.budget,
                seed: self.seed,
                ..Default::default()
            })),
            ProbeKind::Dina => Box::new(Dina::new(DinaConfig {
                epochs: self.budget,
                seed: self.seed,
                ..Default::default()
            })),
        }
    }
}

/// The planner's default probe panel: MLA plus the two strongest
/// learned attacks (EINA, DINA) at quick budgets. A boundary is only
/// cleared when *every* panel member fails there.
pub fn quick_panel() -> Vec<ProbeSpec> {
    vec![
        ProbeSpec::quick(ProbeKind::Mla),
        ProbeSpec::quick(ProbeKind::Eina),
        ProbeSpec::quick(ProbeKind::Dina),
    ]
}

/// All four attack families at their default budgets.
pub fn full_panel() -> Vec<ProbeSpec> {
    vec![
        ProbeSpec::thorough(ProbeKind::Mla),
        ProbeSpec::thorough(ProbeKind::Ina),
        ProbeSpec::thorough(ProbeKind::Eina),
        ProbeSpec::thorough(ProbeKind::Dina),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in [ProbeKind::Mla, ProbeKind::Ina, ProbeKind::Eina, ProbeKind::Dina] {
            assert_eq!(ProbeKind::by_name(kind.name()), Some(kind));
            assert_eq!(ProbeSpec::quick(kind).build().name(), kind.name());
        }
    }

    #[test]
    fn parse_accepts_budgets_and_rejects_junk() {
        let spec = ProbeSpec::parse("eina:12").unwrap();
        assert_eq!(spec.kind, ProbeKind::Eina);
        assert_eq!(spec.budget, 12);
        assert_eq!(spec.label(), "eina:12");
        assert_eq!(
            ProbeSpec::parse("dina").unwrap().budget,
            ProbeSpec::quick(ProbeKind::Dina).budget
        );
        assert!(ProbeSpec::parse("gan").is_err());
        assert!(ProbeSpec::parse("mla:lots").is_err());
    }

    #[test]
    fn panels_are_nonempty_and_distinct() {
        let quick = quick_panel();
        let full = full_panel();
        assert!(quick.len() >= 2);
        assert_eq!(full.len(), 4);
        assert!(quick.iter().all(|s| s.budget <= ProbeSpec::thorough(s.kind).budget));
    }
}
