//! Inverse-network attacks: INA (plain convolutional decoder) and EINA
//! (residual-block decoder, Li et al. 2022). A decoder `M*` is trained
//! on `(M_l(x'), x')` pairs so that `M*(M_l(x)) ≈ x`.

use crate::{AttackError, Idpa, Result};
use c2pi_data::Dataset;
use c2pi_nn::layers::{Conv2d, Relu, ResidualBlock, UpsampleNearest};
use c2pi_nn::optim::{clip_grad_norm, Adam};
use c2pi_nn::{loss, BoundaryId, Model, Sequential};
use c2pi_tensor::Tensor;

/// Decoder architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InaArch {
    /// Plain convolution + ReLU blocks (the original INA).
    Plain,
    /// ResNet basic blocks (the enhanced EINA).
    Residual,
}

/// Configuration of an inverse-network attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InaConfig {
    /// Decoder family.
    pub arch: InaArch,
    /// Training epochs over the attacker's dataset.
    pub epochs: usize,
    /// Learning rate. The paper trains with SGD at 0.001 on 50k
    /// images; at the CPU scale of this reproduction Adam converges far
    /// better, so the trainer uses Adam with this rate.
    pub lr: f32,
    /// Retained for API compatibility with the paper's SGD setup
    /// (unused by the Adam trainer).
    pub momentum: f32,
    /// Channel width of the decoder trunk.
    pub base_width: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for InaConfig {
    fn default() -> Self {
        InaConfig {
            arch: InaArch::Residual,
            epochs: 30,
            lr: 0.005,
            momentum: 0.9,
            base_width: 16,
            batch: 4,
            seed: 23,
        }
    }
}

/// Builds a decoder mapping `[1, ca, ha, wa]` activations back to
/// `[1, 3, size, size]` images.
///
/// # Errors
///
/// Returns an error when the spatial size is not a power-of-two multiple
/// of the activation size.
pub fn build_decoder(
    arch: InaArch,
    act_dims: &[usize],
    image_size: usize,
    base_width: usize,
    seed: u64,
) -> Result<Sequential> {
    if act_dims.len() != 4 {
        return Err(AttackError::BadConfig(format!(
            "decoder needs an NCHW activation, got {act_dims:?}"
        )));
    }
    let (ca, ha) = (act_dims[1], act_dims[2]);
    if ha == 0 || !image_size.is_multiple_of(ha) || !(image_size / ha).is_power_of_two() {
        return Err(AttackError::BadConfig(format!(
            "cannot upsample {ha} to {image_size} by powers of two"
        )));
    }
    let ups = (image_size / ha).trailing_zeros() as usize;
    let mut seq = Sequential::new();
    let mut s = seed;
    let mut next_seed = || {
        s = s.wrapping_add(1);
        s
    };
    seq.push(Conv2d::new(ca, base_width, 3, 1, 1, 1, next_seed()));
    seq.push(Relu::new());
    for _ in 0..ups {
        seq.push(UpsampleNearest::new(2));
        match arch {
            InaArch::Plain => {
                seq.push(Conv2d::new(base_width, base_width, 3, 1, 1, 1, next_seed()));
                seq.push(Relu::new());
            }
            InaArch::Residual => {
                seq.push(ResidualBlock::new(base_width, base_width, next_seed()));
            }
        }
    }
    match arch {
        InaArch::Plain => {
            seq.push(Conv2d::new(base_width, base_width, 3, 1, 1, 1, next_seed()));
            seq.push(Relu::new());
        }
        InaArch::Residual => {
            seq.push(ResidualBlock::new(base_width, base_width, next_seed()));
        }
    }
    seq.push(Conv2d::new(base_width, 3, 3, 1, 1, 1, next_seed()));
    Ok(seq)
}

/// Adds uniform noise `U(−λ, λ)` to an activation — the defender's
/// mechanism, which the attacker anticipates during training.
pub fn noised(act: &Tensor, magnitude: f32, seed: u64) -> Tensor {
    if magnitude <= 0.0 {
        return act.clone();
    }
    let noise = Tensor::rand_uniform(act.dims(), -magnitude, magnitude, seed);
    act.add(&noise).expect("same dims")
}

/// The inverse-network attack (INA or EINA by configuration).
#[derive(Debug)]
pub struct InversionAttack {
    cfg: InaConfig,
    decoder: Option<Sequential>,
    prepared_for: Option<BoundaryId>,
}

impl InversionAttack {
    /// Creates an attack with the given configuration.
    pub fn new(cfg: InaConfig) -> Self {
        InversionAttack { cfg, decoder: None, prepared_for: None }
    }

    /// The plain-decoder INA with default settings.
    pub fn ina() -> Self {
        InversionAttack::new(InaConfig { arch: InaArch::Plain, ..Default::default() })
    }

    /// The residual-decoder EINA with default settings.
    pub fn eina() -> Self {
        InversionAttack::new(InaConfig { arch: InaArch::Residual, ..Default::default() })
    }

    /// The configuration.
    pub fn config(&self) -> InaConfig {
        self.cfg
    }

    /// Mean training loss of the last epoch, if prepared.
    pub fn decoder_mut(&mut self) -> Option<&mut Sequential> {
        self.decoder.as_mut()
    }
}

impl Idpa for InversionAttack {
    fn name(&self) -> &'static str {
        match self.cfg.arch {
            InaArch::Plain => "ina",
            InaArch::Residual => "eina",
        }
    }

    fn prepare(
        &mut self,
        model: &mut Model,
        id: BoundaryId,
        train: &Dataset,
        noise: f32,
    ) -> Result<()> {
        if train.is_empty() {
            return Err(AttackError::BadConfig("empty attacker training set".into()));
        }
        let [_, h, _] = model.input_shape();
        // Collect (activation, image) pairs once.
        let mut pairs = Vec::with_capacity(train.len());
        for (i, img) in train.images().iter().enumerate() {
            let act = model.forward_to_cut(id, img)?;
            pairs.push((noised(&act, noise, self.cfg.seed ^ (i as u64) << 8), img.clone()));
        }
        model.seq_mut().clear_cache();
        let mut decoder =
            build_decoder(self.cfg.arch, pairs[0].0.dims(), h, self.cfg.base_width, self.cfg.seed)?;
        let mut optim = Adam::new(self.cfg.lr);
        for _epoch in 0..self.cfg.epochs {
            for chunk in pairs.chunks(self.cfg.batch.max(1)) {
                let acts: Vec<Tensor> = chunk.iter().map(|(a, _)| a.clone()).collect();
                let imgs: Vec<Tensor> = chunk.iter().map(|(_, x)| x.clone()).collect();
                let act_batch = Tensor::stack_batch(&acts)?;
                let img_batch = Tensor::stack_batch(&imgs)?;
                decoder.zero_grad();
                let pred = decoder.forward(&act_batch, true)?;
                let (_, grad) = loss::mse(&pred, &img_batch)?;
                decoder.backward(&grad)?;
                clip_grad_norm(&mut decoder.params(), 5.0);
                optim.step(&mut decoder.params());
            }
        }
        decoder.clear_cache();
        self.decoder = Some(decoder);
        self.prepared_for = Some(id);
        Ok(())
    }

    fn recover(
        &mut self,
        _model: &mut Model,
        id: BoundaryId,
        activation: &Tensor,
    ) -> Result<Tensor> {
        if self.prepared_for != Some(id) {
            return Err(AttackError::NotPrepared(format!(
                "{} prepared for {:?}, asked for {id}",
                self.name(),
                self.prepared_for.map(|b| b.to_string())
            )));
        }
        let name = self.name();
        let decoder =
            self.decoder.as_mut().ok_or_else(|| AttackError::NotPrepared(name.to_string()))?;
        let out = decoder.forward(activation, false)?;
        decoder.clear_cache();
        Ok(out.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_data::metrics::ssim;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn tiny_model() -> Model {
        alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap()
    }

    fn small_data(per_class: usize) -> Dataset {
        SynthDataset::generate(&SynthConfig {
            classes: 4,
            per_class,
            pixel_noise: 0.02,
            ..Default::default()
        })
        .into_dataset()
    }

    #[test]
    fn decoder_maps_activation_to_image_shape() {
        let seq = build_decoder(InaArch::Plain, &[1, 8, 8, 8], 32, 8, 1).unwrap();
        let mut seq = seq;
        let act = Tensor::rand_uniform(&[1, 8, 8, 8], 0.0, 1.0, 2);
        let out = seq.forward(&act, false).unwrap();
        assert_eq!(out.dims(), &[1, 3, 32, 32]);
    }

    #[test]
    fn decoder_rejects_non_power_of_two() {
        assert!(build_decoder(InaArch::Plain, &[1, 8, 5, 5], 32, 8, 1).is_err());
        assert!(build_decoder(InaArch::Plain, &[1, 8], 32, 8, 1).is_err());
    }

    #[test]
    fn eina_trains_and_recovers_better_than_untrained() {
        let mut model = tiny_model();
        let data = small_data(3);
        let id = BoundaryId::relu(2);
        let mut attack = InversionAttack::new(InaConfig {
            arch: InaArch::Residual,
            epochs: 120,
            lr: 0.01,
            base_width: 12,
            ..Default::default()
        });
        attack.prepare(&mut model, id, &data, 0.0).unwrap();
        let x = &data.images()[0];
        let act = model.forward_to_cut(id, x).unwrap();
        let rec = attack.recover(&mut model, id, &act).unwrap();
        let s = ssim(x, &rec).unwrap();
        // Trained on this tiny set the decoder should reconstruct
        // training images with clear structural similarity.
        assert!(s > 0.35, "eina train-set SSIM {s}");
    }

    #[test]
    fn recover_before_prepare_errors() {
        let mut model = tiny_model();
        let mut attack = InversionAttack::ina();
        let act = Tensor::zeros(&[1, 2, 32, 32]);
        assert!(matches!(
            attack.recover(&mut model, BoundaryId::conv(1), &act),
            Err(AttackError::NotPrepared(_))
        ));
    }

    #[test]
    fn prepare_for_one_boundary_rejects_another() {
        let mut model = tiny_model();
        let data = small_data(1);
        let id = BoundaryId::relu(1);
        let mut attack = InversionAttack::new(InaConfig { epochs: 1, ..Default::default() });
        attack.prepare(&mut model, id, &data, 0.0).unwrap();
        let act = model.forward_to_cut(BoundaryId::relu(2), &data.images()[0]).unwrap();
        assert!(attack.recover(&mut model, BoundaryId::relu(2), &act).is_err());
    }

    #[test]
    fn noised_zero_magnitude_is_identity() {
        let t = Tensor::rand_uniform(&[1, 2, 4, 4], 0.0, 1.0, 5);
        assert_eq!(noised(&t, 0.0, 1), t);
        let n = noised(&t, 0.3, 1);
        assert_ne!(n, t);
        assert!((n.sub(&t).unwrap().max()) <= 0.3 + 1e-6);
    }

    #[test]
    fn names_reflect_architecture() {
        assert_eq!(InversionAttack::ina().name(), "ina");
        assert_eq!(InversionAttack::eina().name(), "eina");
    }
}
