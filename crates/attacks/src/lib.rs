//! # c2pi-attacks
//!
//! Inference-data-privacy attacks (IDPAs): the adversarial toolbox that
//! C2PI uses to *measure* client-input privacy and to place the
//! crypto/clear boundary (paper §II, §III-B).
//!
//! * [`mla::Mla`] — maximum-likelihood attack: gradient descent on the
//!   input to match the observed layer activation (He et al. 2019);
//! * [`inversion::InversionAttack`] — the inverse-network attack (INA)
//!   and its residual-block enhancement EINA (Li et al. 2022): a trained
//!   decoder approximating the inverse of the first `l` layers;
//! * [`dina::Dina`] — the paper's contribution: a distillation-based
//!   inverse-network attack whose basic inverse blocks (ResNet block +
//!   dilated convolution) are each guided by a distillation point in the
//!   target model, with monotonically increasing loss coefficients
//!   (Eq. (1));
//! * [`eval`] — the SSIM-based evaluation harness behind Figures 1 and
//!   4–6;
//! * [`probe`] — declarative probe specs ([`ProbeSpec`]) so auditors
//!   like the deployment planner can assemble attack panels by name and
//!   budget.
//!
//! All attacks implement the [`Idpa`] trait so the boundary auditors in
//! `c2pi-core` can swap them freely (the paper: *"we are glad to
//! replace DINA with a more aggressive IDPA"*).
//!
//! ## Example
//!
//! Attacks are usually assembled declaratively through [`probe`]:
//!
//! ```
//! use c2pi_attacks::probe::{quick_panel, ProbeSpec};
//!
//! // "family:budget" strings are how CLIs and configs name probes.
//! let dina = ProbeSpec::parse("dina:6")?;
//! let attack = dina.build(); // a ready-to-prepare Box<dyn Idpa>
//! assert_eq!(attack.name(), "dina");
//! // The planner's default panel mixes gradient and learned probes.
//! assert!(quick_panel().len() >= 2);
//! # Ok::<(), c2pi_attacks::AttackError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dina;
pub mod error;
pub mod eval;
pub mod inversion;
pub mod mla;
pub mod probe;

pub use error::AttackError;
pub use probe::{ProbeKind, ProbeSpec};

use c2pi_data::Dataset;
use c2pi_nn::{BoundaryId, Model};
use c2pi_tensor::Tensor;

/// Convenience result alias for attack operations.
pub type Result<T> = std::result::Result<T, AttackError>;

/// An inference-data-privacy attack: given the target model's activation
/// at a boundary, reconstruct the client's input image.
pub trait Idpa {
    /// Attack name for reports (`mla`, `ina`, `eina`, `dina`).
    fn name(&self) -> &'static str;

    /// Input-independent preparation (training an inversion network on
    /// the server's own data). `noise` is the defender's uniform noise
    /// magnitude the attacker anticipates; MLA ignores preparation.
    ///
    /// # Errors
    ///
    /// Returns an error when training fails or shapes are inconsistent.
    fn prepare(
        &mut self,
        model: &mut Model,
        id: BoundaryId,
        train: &Dataset,
        noise: f32,
    ) -> Result<()>;

    /// Reconstructs the input from the activation observed at `id`.
    ///
    /// # Errors
    ///
    /// Returns an error when the attack was not prepared for this
    /// boundary or shapes are inconsistent.
    fn recover(&mut self, model: &mut Model, id: BoundaryId, activation: &Tensor)
        -> Result<Tensor>;
}
