//! DINA — the distillation-based inverse-network attack (paper §III-B).
//!
//! The tentative crypto layers before the boundary are partitioned into
//! *sub-blocks*, each ending with a ReLU. The DINA model is a chain of
//! *basic inverse blocks* (a ResNet basic block followed by a dilated
//! convolution), one per sub-block, executed in reverse. Distillation
//! points between sub-blocks supervise the matching intermediate of the
//! inverse chain through the loss of Eq. (1):
//!
//! `L = Σ_j α_j ‖D_j − I_j‖² + α_0 ‖x − x̂‖²`
//!
//! with monotonically increasing coefficients `α_0 < α_1 < …` so each
//! inverse block is guided hardest by its nearest distillation point.

use crate::inversion::noised;
use crate::{AttackError, Idpa, Result};
use c2pi_data::Dataset;
use c2pi_nn::layers::{Conv2d, ResidualBlock, UpsampleNearest};
use c2pi_nn::optim::{clip_grad_norm, Adam};
use c2pi_nn::{BoundaryId, LayerSpec, Model, Sequential};
use c2pi_tensor::Tensor;

/// Loss-coefficient schedule (Figure 5's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoefficientSchedule {
    /// DINA-c1: `α₀ = 1, α₁ = 3, α_j = 2·α_{j−1}` — increasing toward
    /// the DINA input, the paper's choice.
    IncreasingC1,
    /// DINA-c2: uniform `α_j = 1`.
    UniformC2,
}

impl CoefficientSchedule {
    /// Coefficient `α_j` for distillation point `j` (`j = 0` is the
    /// output term).
    pub fn alpha(&self, j: usize) -> f32 {
        match self {
            CoefficientSchedule::UniformC2 => 1.0,
            CoefficientSchedule::IncreasingC1 => match j {
                0 => 1.0,
                1 => 3.0,
                _ => 3.0 * 2f32.powi(j as i32 - 1),
            },
        }
    }
}

/// DINA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DinaConfig {
    /// Coefficient schedule (c1 by default, per the paper).
    pub schedule: CoefficientSchedule,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate (Adam; the paper's full-scale setup uses SGD at
    /// 0.001, which needs far more data/epochs than the CPU scale has).
    pub lr: f32,
    /// Retained for API compatibility with the paper's SGD setup
    /// (unused by the Adam trainer).
    pub momentum: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Seed for weights and noise.
    pub seed: u64,
}

impl Default for DinaConfig {
    fn default() -> Self {
        DinaConfig {
            schedule: CoefficientSchedule::IncreasingC1,
            epochs: 30,
            lr: 0.005,
            momentum: 0.9,
            batch: 4,
            seed: 31,
        }
    }
}

/// One sub-block of the target prefix: a run of layers ending with a
/// ReLU (the final sub-block may end at the boundary itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubBlock {
    /// Half-open layer range in the model's sequential stack.
    pub range: (usize, usize),
    /// Output shape `[1, c, h, w]` of the sub-block.
    pub out_dims: Vec<usize>,
}

/// Partitions the prefix before `id` into ReLU-terminated sub-blocks and
/// records each one's output shape (probed with a dummy forward).
///
/// # Errors
///
/// Returns an error for unknown boundaries or non-NCHW activations.
pub fn sub_blocks(model: &mut Model, id: BoundaryId) -> Result<Vec<SubBlock>> {
    let end = model.seq_end_of(id)?;
    let [c, h, w] = model.input_shape();
    let probe = Tensor::zeros(&[1, c, h, w]);
    let outs = model.seq_mut().forward_collect(&probe, false)?;
    model.seq_mut().clear_cache();
    let mut blocks = Vec::new();
    let mut start = 0usize;
    for (i, out) in outs.iter().enumerate().take(end) {
        let is_relu = matches!(model.seq().layers()[i].spec(), LayerSpec::Relu);
        let is_last = i + 1 == end;
        if is_relu || is_last {
            blocks.push(SubBlock { range: (start, i + 1), out_dims: out.dims().to_vec() });
            start = i + 1;
        }
    }
    Ok(blocks)
}

/// Builds one basic inverse block: optional upsampling, a ResNet basic
/// block, then a dilated 3×3 convolution (paper Figure 3).
///
/// # Errors
///
/// Returns an error when the spatial growth factor is not a power of two.
pub fn basic_inverse_block(in_dims: &[usize], out_dims: &[usize], seed: u64) -> Result<Sequential> {
    if in_dims.len() != 4 || out_dims.len() != 4 {
        return Err(AttackError::BadConfig("inverse block needs NCHW shapes".into()));
    }
    let (ci, hi) = (in_dims[1], in_dims[2]);
    let (co, ho) = (out_dims[1], out_dims[2]);
    if ho % hi != 0 || !(ho / hi).is_power_of_two() {
        return Err(AttackError::BadConfig(format!("inverse block cannot grow {hi} to {ho}")));
    }
    let factor = ho / hi;
    let mid = co.max(8);
    let mut seq = Sequential::new();
    if factor > 1 {
        seq.push(UpsampleNearest::new(factor));
    }
    seq.push(ResidualBlock::new(ci, mid, seed));
    seq.push(Conv2d::new(mid, co, 3, 1, 2, 2, seed.wrapping_add(7)));
    Ok(seq)
}

/// The DINA attack.
#[derive(Debug)]
pub struct Dina {
    cfg: DinaConfig,
    /// Inverse blocks in execution order: `blocks[e]` inverts sub-block
    /// `N−e` (so the chain runs from the boundary activation back to the
    /// image).
    blocks: Option<Vec<Sequential>>,
    prepared_for: Option<BoundaryId>,
}

impl Dina {
    /// Creates a DINA attack with the given configuration.
    pub fn new(cfg: DinaConfig) -> Self {
        Dina { cfg, blocks: None, prepared_for: None }
    }

    /// The configuration.
    pub fn config(&self) -> DinaConfig {
        self.cfg
    }

    /// Number of basic inverse blocks once prepared.
    pub fn block_count(&self) -> usize {
        self.blocks.as_ref().map(|b| b.len()).unwrap_or(0)
    }

    /// Runs the inverse chain, returning every intermediate `I_j`
    /// (ordered `I_{N−1}, …, I_0`).
    fn forward_chain(blocks: &mut [Sequential], z: &Tensor, train: bool) -> Result<Vec<Tensor>> {
        let mut outs = Vec::with_capacity(blocks.len());
        let mut cur = z.clone();
        for b in blocks.iter_mut() {
            cur = b.forward(&cur, train)?;
            outs.push(cur.clone());
        }
        Ok(outs)
    }
}

impl Idpa for Dina {
    fn name(&self) -> &'static str {
        "dina"
    }

    fn prepare(
        &mut self,
        model: &mut Model,
        id: BoundaryId,
        train: &Dataset,
        noise: f32,
    ) -> Result<()> {
        if train.is_empty() {
            return Err(AttackError::BadConfig("empty attacker training set".into()));
        }
        let sbs = sub_blocks(model, id)?;
        let n = sbs.len();
        let [c, h, w] = model.input_shape();
        let image_dims = vec![1usize, c, h, w];
        // Build blocks in execution order: invert sub-block N first.
        let mut blocks = Vec::with_capacity(n);
        for e in 0..n {
            let j = n - e; // sub-block being inverted (1-based)
            let in_dims = &sbs[j - 1].out_dims;
            let out_dims = if j >= 2 { &sbs[j - 2].out_dims } else { &image_dims };
            blocks.push(basic_inverse_block(
                in_dims,
                out_dims,
                self.cfg.seed.wrapping_add(e as u64 * 101),
            )?);
        }
        // Pre-compute, per image: boundary activation (noised) and the
        // distillation targets D_1..D_{N-1}.
        let mut samples = Vec::with_capacity(train.len());
        for (i, img) in train.images().iter().enumerate() {
            let outs = model.seq_mut().forward_collect(img, false)?;
            model.seq_mut().clear_cache();
            let z = noised(&outs[sbs[n - 1].range.1 - 1], noise, self.cfg.seed ^ ((i as u64) << 9));
            let targets: Vec<Tensor> =
                (1..n).map(|j| outs[sbs[j - 1].range.1 - 1].clone()).collect();
            samples.push((z, targets, img.clone()));
        }
        let mut optim = Adam::new(self.cfg.lr);
        for _epoch in 0..self.cfg.epochs {
            for chunk in samples.chunks(self.cfg.batch.max(1)) {
                // Batch the chunk.
                let zs: Vec<Tensor> = chunk.iter().map(|(z, _, _)| z.clone()).collect();
                let z = Tensor::stack_batch(&zs)?;
                let imgs: Vec<Tensor> = chunk.iter().map(|(_, _, x)| x.clone()).collect();
                let x = Tensor::stack_batch(&imgs)?;
                for b in blocks.iter_mut() {
                    b.zero_grad();
                }
                let inters = Dina::forward_chain(&mut blocks, &z, true)?;
                // inters[e] is I_{n-1-e}; inters[n-1] is x̂.
                let xhat = &inters[n - 1];
                let a0 = self.cfg.schedule.alpha(0);
                let mut g = xhat.sub(&x)?.scale(2.0 * a0 / xhat.len() as f32);
                // Walk blocks backwards, injecting distillation gradients.
                for e in (0..n).rev() {
                    g = blocks[e].backward(&g)?;
                    // After backing through blocks[e] we sit at I_{n-e},
                    // the output of blocks[e-1]; inject its loss term.
                    if e > 0 {
                        let j = n - e; // distillation index of I_j
                        if j < n {
                            let i_j = &inters[e - 1];
                            let d_j: Vec<Tensor> = chunk
                                .iter()
                                .map(|(_, targets, _)| targets[j - 1].clone())
                                .collect();
                            let d_j = Tensor::stack_batch(&d_j)?;
                            let aj = self.cfg.schedule.alpha(j);
                            let inject = i_j.sub(&d_j)?.scale(2.0 * aj / i_j.len() as f32);
                            g = g.add(&inject)?;
                        }
                    }
                }
                let mut params = Vec::new();
                for b in blocks.iter_mut() {
                    params.extend(b.params());
                }
                clip_grad_norm(&mut params, 5.0);
                optim.step(&mut params);
            }
        }
        for b in blocks.iter_mut() {
            b.clear_cache();
        }
        self.blocks = Some(blocks);
        self.prepared_for = Some(id);
        Ok(())
    }

    fn recover(
        &mut self,
        _model: &mut Model,
        id: BoundaryId,
        activation: &Tensor,
    ) -> Result<Tensor> {
        if self.prepared_for != Some(id) {
            return Err(AttackError::NotPrepared(format!(
                "dina prepared for {:?}, asked for {id}",
                self.prepared_for.map(|b| b.to_string())
            )));
        }
        let blocks = self.blocks.as_mut().ok_or_else(|| AttackError::NotPrepared("dina".into()))?;
        let inters = Dina::forward_chain(blocks, activation, false)?;
        for b in blocks.iter_mut() {
            b.clear_cache();
        }
        let xhat = inters.last().ok_or_else(|| AttackError::BadConfig("empty chain".into()))?;
        Ok(xhat.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_data::metrics::ssim;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn tiny_model() -> Model {
        alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap()
    }

    fn small_data(per_class: usize) -> Dataset {
        SynthDataset::generate(&SynthConfig {
            classes: 4,
            per_class,
            pixel_noise: 0.02,
            ..Default::default()
        })
        .into_dataset()
    }

    #[test]
    fn coefficients_are_monotone_for_c1() {
        let c1 = CoefficientSchedule::IncreasingC1;
        assert_eq!(c1.alpha(0), 1.0);
        assert_eq!(c1.alpha(1), 3.0);
        assert_eq!(c1.alpha(2), 6.0);
        assert_eq!(c1.alpha(3), 12.0);
        for j in 0..6 {
            assert!(c1.alpha(j) < c1.alpha(j + 1));
            assert_eq!(CoefficientSchedule::UniformC2.alpha(j), 1.0);
        }
    }

    #[test]
    fn sub_blocks_end_with_relus() {
        let mut model = tiny_model();
        // alexnet prefix to relu(3): conv1 relu pool conv2 relu pool conv3 relu
        let sbs = sub_blocks(&mut model, BoundaryId::relu(3)).unwrap();
        assert_eq!(sbs.len(), 3);
        // Boundary at a conv (pre-relu) adds a trailing relu-less block.
        let sbs2 = sub_blocks(&mut model, BoundaryId::conv(4)).unwrap();
        assert_eq!(sbs2.len(), 4);
        assert!(sbs2[3].range.1 > sbs2[2].range.1);
    }

    #[test]
    fn inverse_block_restores_shape() {
        let mut b = basic_inverse_block(&[1, 16, 8, 8], &[1, 8, 16, 16], 1).unwrap();
        let z = Tensor::rand_uniform(&[1, 16, 8, 8], 0.0, 1.0, 2);
        let out = b.forward(&z, false).unwrap();
        assert_eq!(out.dims(), &[1, 8, 16, 16]);
        // Same-size block has no upsample layer.
        let same = basic_inverse_block(&[1, 16, 8, 8], &[1, 8, 8, 8], 1).unwrap();
        assert!(same.len() < b.len());
    }

    #[test]
    fn dina_trains_and_reconstructs_training_images() {
        let mut model = tiny_model();
        let data = small_data(3);
        let id = BoundaryId::relu(2);
        let mut dina = Dina::new(DinaConfig { epochs: 60, lr: 0.01, ..Default::default() });
        dina.prepare(&mut model, id, &data, 0.0).unwrap();
        assert_eq!(dina.block_count(), 2);
        let x = &data.images()[0];
        let act = model.forward_to_cut(id, x).unwrap();
        let rec = dina.recover(&mut model, id, &act).unwrap();
        assert_eq!(rec.dims(), x.dims());
        let s = ssim(x, &rec).unwrap();
        assert!(s > 0.35, "dina train-set SSIM {s}");
    }

    #[test]
    fn recover_without_prepare_errors() {
        let mut model = tiny_model();
        let mut dina = Dina::new(DinaConfig::default());
        let act = Tensor::zeros(&[1, 2, 16, 16]);
        assert!(dina.recover(&mut model, BoundaryId::relu(2), &act).is_err());
    }

    #[test]
    fn c1_beats_or_matches_c2_on_training_reconstruction() {
        // The Figure 5 effect, at miniature scale: increasing
        // coefficients give at least comparable reconstruction.
        let data = small_data(2);
        let id = BoundaryId::relu(3);
        let run = |schedule| {
            let mut model = tiny_model();
            let mut dina =
                Dina::new(DinaConfig { schedule, epochs: 30, lr: 0.01, ..Default::default() });
            dina.prepare(&mut model, id, &data, 0.0).unwrap();
            let mut total = 0.0f32;
            for x in data.images() {
                let act = model.forward_to_cut(id, x).unwrap();
                let rec = dina.recover(&mut model, id, &act).unwrap();
                total += ssim(x, &rec).unwrap();
            }
            total / data.len() as f32
        };
        let c1 = run(CoefficientSchedule::IncreasingC1);
        let c2 = run(CoefficientSchedule::UniformC2);
        // Allow slack: at this scale the schedules are close; c1 must not
        // be dramatically worse.
        assert!(c1 > c2 - 0.08, "c1 {c1} vs c2 {c2}");
    }
}
