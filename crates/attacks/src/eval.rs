//! SSIM-based attack evaluation — the measurement harness behind the
//! paper's Figures 1 and 4–6.
//!
//! An attack *fails* at a layer when the average SSIM between recovered
//! and original images drops below the failure threshold (0.3 by
//! default, following He et al. as adopted by the paper).

use crate::inversion::noised;
use crate::{Idpa, Result};
use c2pi_data::metrics::ssim;
use c2pi_data::Dataset;
use c2pi_nn::{BoundaryId, Model};
use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Uniform noise magnitude the defender adds to the revealed share.
    pub noise: f32,
    /// SSIM failure threshold (`σ`, 0.3 in the paper's main results).
    pub ssim_threshold: f32,
    /// Number of evaluation images (the paper uses 1000 at full scale).
    pub eval_images: usize,
    /// Seed for the evaluation-time noise draws.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { noise: 0.1, ssim_threshold: 0.3, eval_images: 8, seed: 41 }
    }
}

/// Average SSIM an attack achieves at one boundary over an evaluation
/// set (the attack must already be prepared for that boundary).
///
/// # Errors
///
/// Returns attack or metric errors.
pub fn avg_ssim_at(
    attack: &mut dyn Idpa,
    model: &mut Model,
    id: BoundaryId,
    eval: &Dataset,
    cfg: &EvalConfig,
) -> Result<f32> {
    avg_ssim_with(attack, model, id, eval, cfg.eval_images, &|act, i| {
        Ok(noised(act, cfg.noise, cfg.seed ^ ((i as u64) << 16)))
    })
}

/// [`avg_ssim_at`] generalised over the defender's perturbation: the
/// attack observes `perturb(activation, image_index)` instead of the
/// built-in uniform noise. Boundary auditors hand in arbitrary defenses
/// (quantisation, dropout, …) with their own seed derivation while
/// reusing this one measurement loop.
///
/// # Errors
///
/// Returns attack, metric or perturbation errors.
pub fn avg_ssim_with(
    attack: &mut dyn Idpa,
    model: &mut Model,
    id: BoundaryId,
    eval: &Dataset,
    eval_images: usize,
    perturb: &dyn Fn(&Tensor, usize) -> Result<Tensor>,
) -> Result<f32> {
    let n = eval_images.min(eval.len()).max(1);
    let mut total = 0.0f32;
    for (i, x) in eval.images().iter().take(n).enumerate() {
        let act = model.forward_to_cut(id, x)?;
        let observed = perturb(&act, i)?;
        let rec = attack.recover(model, id, &observed)?;
        total += ssim(x, &rec)?;
    }
    model.seq_mut().clear_cache();
    Ok(total / n as f32)
}

/// One row of a per-layer attack sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Conv id (the figures' x axis).
    pub conv_id: usize,
    /// Average SSIM at that layer.
    pub avg_ssim: f32,
    /// Whether the attack is deemed failed (below threshold).
    pub failed: bool,
}

/// Sweeps an attack across every conv id of a model (preparing it fresh
/// per layer) — the data series of Figures 4–6.
///
/// # Errors
///
/// Returns attack errors.
pub fn sweep_conv_layers(
    attack: &mut dyn Idpa,
    model: &mut Model,
    train: &Dataset,
    eval: &Dataset,
    cfg: &EvalConfig,
) -> Result<Vec<SweepPoint>> {
    let mut out = Vec::new();
    for conv in 1..=model.num_convs() {
        let id = BoundaryId::relu(conv);
        attack.prepare(model, id, train, cfg.noise)?;
        let s = avg_ssim_at(attack, model, id, eval, cfg)?;
        out.push(SweepPoint { conv_id: conv, avg_ssim: s, failed: s < cfg.ssim_threshold });
    }
    Ok(out)
}

/// The first boundary (in paper numbering, scanning from the tail) after
/// which the attack fails — phase 1 of Algorithm 1 expressed over a
/// sweep.
pub fn first_failing_conv(points: &[SweepPoint]) -> Option<usize> {
    // Scan from the tail: find the deepest prefix where the attack still
    // succeeds; the next conv is the potential boundary.
    let mut boundary = None;
    for p in points.iter().rev() {
        if p.failed {
            boundary = Some(p.conv_id);
        } else {
            break;
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mla::{Mla, MlaConfig};
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn setup() -> (Model, Dataset) {
        let model = alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap();
        let data = SynthDataset::generate(&SynthConfig {
            classes: 3,
            per_class: 2,
            pixel_noise: 0.02,
            ..Default::default()
        })
        .into_dataset();
        (model, data)
    }

    #[test]
    fn avg_ssim_is_bounded() {
        let (mut model, data) = setup();
        let mut mla = Mla::new(MlaConfig { iterations: 20, ..Default::default() });
        let cfg = EvalConfig { eval_images: 2, noise: 0.0, ..Default::default() };
        let s = avg_ssim_at(&mut mla, &mut model, BoundaryId::relu(1), &data, &cfg).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn first_failing_conv_scans_from_tail() {
        let mk = |v: &[(usize, bool)]| -> Vec<SweepPoint> {
            v.iter().map(|&(c, failed)| SweepPoint { conv_id: c, avg_ssim: 0.0, failed }).collect()
        };
        // Fails from conv 4 onward -> boundary candidate 4.
        let pts = mk(&[(1, false), (2, false), (3, false), (4, true), (5, true)]);
        assert_eq!(first_failing_conv(&pts), Some(4));
        // Never fails -> None.
        assert_eq!(first_failing_conv(&mk(&[(1, false), (2, false)])), None);
        // Always fails -> conv 1.
        assert_eq!(first_failing_conv(&mk(&[(1, true), (2, true)])), Some(1));
        // A late success after failures resets the scan.
        let pts = mk(&[(1, true), (2, false), (3, true), (4, true)]);
        assert_eq!(first_failing_conv(&pts), Some(3));
    }

    #[test]
    fn noise_reduces_mla_recovery() {
        let (mut model, data) = setup();
        let mut mla = Mla::new(MlaConfig { iterations: 120, lr: 0.08, seed: 9 });
        let id = BoundaryId::relu(1);
        let clean = avg_ssim_at(
            &mut mla,
            &mut model,
            id,
            &data,
            &EvalConfig { eval_images: 1, noise: 0.0, ..Default::default() },
        )
        .unwrap();
        let noisy = avg_ssim_at(
            &mut mla,
            &mut model,
            id,
            &data,
            &EvalConfig { eval_images: 1, noise: 1.5, ..Default::default() },
        )
        .unwrap();
        assert!(noisy < clean, "noisy {noisy} vs clean {clean}");
    }
}
