//! Maximum-likelihood attack (He et al., ACSAC 2019):
//! `x̂ = argmin ‖M_l(x̂) − M_l(x)‖²` by gradient descent on the input.

use crate::{AttackError, Idpa, Result};
use c2pi_data::Dataset;
use c2pi_nn::{loss, optim::Adam, BoundaryId, Model, Param};
use c2pi_tensor::Tensor;

/// MLA configuration.
///
/// The paper runs 10 000 iterations from a random initialisation; the
/// default here is CPU-scale and the bench harness raises it under
/// `--paper-scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlaConfig {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Initialisation seed.
    pub seed: u64,
}

impl Default for MlaConfig {
    fn default() -> Self {
        MlaConfig { iterations: 300, lr: 0.05, seed: 17 }
    }
}

/// The maximum-likelihood attack.
#[derive(Debug, Clone, Default)]
pub struct Mla {
    cfg: MlaConfig,
}

impl Mla {
    /// Creates an MLA with the given configuration.
    pub fn new(cfg: MlaConfig) -> Self {
        Mla { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> MlaConfig {
        self.cfg
    }
}

impl Idpa for Mla {
    fn name(&self) -> &'static str {
        "mla"
    }

    fn prepare(
        &mut self,
        _model: &mut Model,
        _id: BoundaryId,
        _train: &Dataset,
        _noise: f32,
    ) -> Result<()> {
        Ok(()) // MLA needs no training phase.
    }

    fn recover(
        &mut self,
        model: &mut Model,
        id: BoundaryId,
        activation: &Tensor,
    ) -> Result<Tensor> {
        let [c, h, w] = model.input_shape();
        let mut xhat = Param::new(Tensor::rand_uniform(&[1, c, h, w], 0.25, 0.75, self.cfg.seed));
        let mut adam = Adam::new(self.cfg.lr);
        for _ in 0..self.cfg.iterations {
            let a = model.forward_to_cut(id, &xhat.value)?;
            if a.dims() != activation.dims() {
                return Err(AttackError::BadConfig(format!(
                    "activation shape {:?} does not match model cut {:?}",
                    activation.dims(),
                    a.dims()
                )));
            }
            let (_, grad_a) = loss::mse(&a, activation)?;
            xhat.grad = model.backward_from_cut(id, &grad_a)?;
            adam.step(&mut [&mut xhat]);
            xhat.value = xhat.value.clamp(0.0, 1.0);
        }
        model.seq_mut().zero_grad();
        model.seq_mut().clear_cache();
        Ok(xhat.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_data::metrics::ssim;
    use c2pi_data::synth::{SynthConfig, SynthDataset};
    use c2pi_nn::model::{alexnet, ZooConfig};

    fn tiny_model() -> Model {
        alexnet(&ZooConfig { width_div: 32, seed: 3, ..Default::default() }).unwrap()
    }

    #[test]
    fn mla_recovers_early_layer_well() {
        let mut model = tiny_model();
        let data = SynthDataset::generate(&SynthConfig {
            classes: 2,
            per_class: 1,
            pixel_noise: 0.01,
            ..Default::default()
        });
        let x = &data.images()[0];
        let id = BoundaryId::conv(1);
        let act = model.forward_to_cut(id, x).unwrap();
        let mut mla = Mla::new(MlaConfig { iterations: 250, lr: 0.08, seed: 5 });
        let xhat = mla.recover(&mut model, id, &act).unwrap();
        let s = ssim(x, &xhat).unwrap();
        assert!(s > 0.5, "early-layer SSIM {s}");
    }

    #[test]
    fn recovery_quality_degrades_with_depth() {
        let mut model = tiny_model();
        let data = SynthDataset::generate(&SynthConfig {
            classes: 2,
            per_class: 1,
            pixel_noise: 0.01,
            ..Default::default()
        });
        let x = &data.images()[0];
        let mut mla = Mla::new(MlaConfig { iterations: 150, lr: 0.08, seed: 6 });
        let early_id = BoundaryId::conv(1);
        let late_id = BoundaryId::relu(6);
        let early_act = model.forward_to_cut(early_id, x).unwrap();
        let late_act = model.forward_to_cut(late_id, x).unwrap();
        let early = ssim(x, &mla.recover(&mut model, early_id, &early_act).unwrap()).unwrap();
        let late = ssim(x, &mla.recover(&mut model, late_id, &late_act).unwrap()).unwrap();
        assert!(early > late, "early {early} should beat late {late}");
    }

    #[test]
    fn mismatched_activation_rejected() {
        let mut model = tiny_model();
        let mut mla = Mla::new(MlaConfig { iterations: 1, ..Default::default() });
        let bad = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(mla.recover(&mut model, BoundaryId::conv(1), &bad).is_err());
    }

    #[test]
    fn output_is_a_valid_image() {
        let mut model = tiny_model();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 7);
        let id = BoundaryId::relu(2);
        let act = model.forward_to_cut(id, &x).unwrap();
        let mut mla = Mla::new(MlaConfig { iterations: 5, ..Default::default() });
        let xhat = mla.recover(&mut model, id, &act).unwrap();
        assert_eq!(xhat.dims(), &[1, 3, 32, 32]);
        assert!(xhat.min() >= 0.0 && xhat.max() <= 1.0);
    }
}
