//! Minimal training loops for classifiers — enough to fit the synthetic
//! CIFAR substitutes so accuracy-vs-noise and boundary-accuracy
//! experiments have a trained model to work with.

use crate::{loss, optim::Sgd, NnError, Result, Sequential};
use c2pi_tensor::Tensor;
use rand::{seq::SliceRandom, SeedableRng};

/// Hyper-parameters for [`train_classifier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 5, batch_size: 16, lr: 0.05, momentum: 0.9, seed: 0 }
    }
}

/// Trains a classifier with SGD + softmax cross-entropy, returning the
/// mean loss per epoch.
///
/// `images` are `[1, c, h, w]` tensors; `labels` are class indices.
///
/// # Errors
///
/// Returns an error when inputs are empty or mismatched, or on layer
/// failures.
pub fn train_classifier(
    net: &mut Sequential,
    images: &[Tensor],
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<Vec<f32>> {
    if images.is_empty() || images.len() != labels.len() {
        return Err(NnError::BadConfig(format!(
            "{} images vs {} labels",
            images.len(),
            labels.len()
        )));
    }
    if cfg.batch_size == 0 || cfg.epochs == 0 {
        return Err(NnError::BadConfig("epochs and batch_size must be positive".into()));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..images.len()).collect();
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let batch_imgs: Vec<Tensor> = chunk.iter().map(|&i| images[i].clone()).collect();
            let batch: Tensor = Tensor::stack_batch(&batch_imgs)?;
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            net.zero_grad();
            let logits = net.forward(&batch, true)?;
            let (l, grad) = loss::softmax_cross_entropy(&logits, &batch_labels)?;
            net.backward(&grad)?;
            sgd.step(&mut net.params());
            total += l;
            batches += 1;
        }
        epoch_losses.push(total / batches.max(1) as f32);
    }
    net.clear_cache();
    Ok(epoch_losses)
}

/// Top-1 accuracy of a classifier on a labelled set, in `[0, 1]`.
///
/// # Errors
///
/// Returns an error when inputs are empty or mismatched, or on layer
/// failures.
pub fn evaluate_accuracy(net: &mut Sequential, images: &[Tensor], labels: &[usize]) -> Result<f32> {
    if images.is_empty() || images.len() != labels.len() {
        return Err(NnError::BadConfig(format!(
            "{} images vs {} labels",
            images.len(),
            labels.len()
        )));
    }
    let mut correct = 0usize;
    for chunk in images.chunks(32).zip(labels.chunks(32)) {
        let batch = Tensor::stack_batch(chunk.0)?;
        let logits = net.forward(&batch, false)?;
        let (n, k) = logits.shape().as_matrix()?;
        for i in 0..n {
            let row = &logits.as_slice()[i * k..(i + 1) * k];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == chunk.1[i] {
                correct += 1;
            }
        }
    }
    net.clear_cache();
    Ok(correct as f32 / images.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};

    /// Two linearly separable blobs in a 1x2x2x2-pixel "image" space.
    fn blob_data(n: usize) -> (Vec<Tensor>, Vec<usize>) {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let offset = if class == 0 { -1.0 } else { 1.0 };
            let noise = Tensor::rand_uniform(&[1, 2, 2, 2], -0.3, 0.3, i as u64);
            let img = noise.map(|v| v + offset);
            images.push(img);
            labels.push(class);
        }
        (images, labels)
    }

    fn tiny_classifier() -> Sequential {
        let mut s = Sequential::new();
        s.push(Flatten::new());
        s.push(Linear::new(8, 16, 0));
        s.push(Relu::new());
        s.push(Linear::new(16, 2, 1));
        s
    }

    #[test]
    fn training_reduces_loss_and_fits_blobs() {
        let (images, labels) = blob_data(64);
        let mut net = tiny_classifier();
        let losses = train_classifier(
            &mut net,
            &images,
            &labels,
            &TrainConfig { epochs: 10, batch_size: 8, lr: 0.1, momentum: 0.9, seed: 1 },
        )
        .unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap());
        let acc = evaluate_accuracy(&mut net, &images, &labels).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn untrained_accuracy_is_chancey() {
        // Pure-noise images with alternating labels: the label carries
        // no information about the input, so any fixed (untrained)
        // classifier sits near 50% — unlike the separable blobs, where
        // a lucky random hyperplane can score perfectly.
        let images: Vec<Tensor> =
            (0..64).map(|i| Tensor::rand_uniform(&[1, 2, 2, 2], -1.0, 1.0, i as u64)).collect();
        let labels: Vec<usize> = (0..64).map(|i| i % 2).collect();
        let mut net = tiny_classifier();
        let acc = evaluate_accuracy(&mut net, &images, &labels).unwrap();
        assert!(acc < 0.95, "label-independent inputs scored {acc}");
    }

    #[test]
    fn empty_inputs_rejected() {
        let mut net = tiny_classifier();
        assert!(train_classifier(&mut net, &[], &[], &TrainConfig::default()).is_err());
        assert!(evaluate_accuracy(&mut net, &[], &[]).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let (images, _) = blob_data(4);
        let mut net = tiny_classifier();
        assert!(train_classifier(&mut net, &images, &[0], &TrainConfig::default()).is_err());
    }

    #[test]
    fn zero_epochs_rejected() {
        let (images, labels) = blob_data(4);
        let mut net = tiny_classifier();
        let cfg = TrainConfig { epochs: 0, ..TrainConfig::default() };
        assert!(train_classifier(&mut net, &images, &labels, &cfg).is_err());
    }
}
