//! # c2pi-nn
//!
//! A pure-Rust neural-network library with explicit forward **and**
//! backward passes, built for the C2PI reproduction. Three consumers
//! drive its design:
//!
//! 1. **Classifier training** — the synthetic CIFAR models (AlexNet,
//!    VGG-16, VGG-19) are trained with [`optim::Sgd`]/[`optim::Adam`] and
//!    [`loss::softmax_cross_entropy`];
//! 2. **Inference-data-privacy attacks** — MLA needs gradients *with
//!    respect to the input*, which every [`Layer`] provides through
//!    [`Layer::backward`]; the inverse-network attacks (INA/EINA/DINA)
//!    additionally train generator-style models containing residual
//!    blocks, dilated and transposed convolutions;
//! 3. **Private inference** — the PI engines in `c2pi-pi` walk a
//!    [`model::Model`]'s layers and execute each under MPC.
//!
//! The paper's layer-numbering convention (conv id `l`, ReLU `l.5`) is
//! captured by [`model::CutPoint`] and [`model::BoundaryId`].
//!
//! ## Example
//!
//! ```
//! use c2pi_nn::{layers::{Conv2d, Relu}, Sequential};
//! use c2pi_tensor::Tensor;
//!
//! let mut net = Sequential::new();
//! net.push(Conv2d::new(3, 8, 3, 1, 1, 1, 42));
//! net.push(Relu::new());
//! let x = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 0);
//! let y = net.forward(&x, false)?;
//! assert_eq!(y.dims(), &[1, 8, 8, 8]);
//! # Ok::<(), c2pi_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod functional;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod param;
pub mod sequential;
pub mod serialize;
pub mod train;

pub use error::NnError;
pub use layer::{Layer, LayerKind, LayerSpec};
pub use model::{BoundaryId, CutPoint, Model};
pub use param::Param;
pub use sequential::Sequential;

/// Convenience result alias for network operations.
pub type Result<T> = std::result::Result<T, NnError>;
