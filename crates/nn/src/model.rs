//! Models with the paper's layer-numbering convention and the C2PI model
//! zoo (AlexNet, VGG-16, VGG-19 CIFAR variants).
//!
//! The paper numbers convolutions `1..n` and uses a trailing `.5` for the
//! ReLU of a layer: *"layer 3 and layer 3.5 refer to the linear operation
//! and ReLU operation in layer 3"*. [`BoundaryId`] encodes exactly that,
//! and [`Model`] maps each id to a position in its [`Sequential`] stack so
//! the network can be split into a crypto prefix and a clear suffix.

use crate::{layers, NnError, Result, Sequential};
use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A layer position in the paper's numbering: conv id plus whether the
/// position is after that conv's ReLU.
///
/// ```
/// use c2pi_nn::BoundaryId;
/// assert_eq!(BoundaryId::conv(3).to_string(), "3");
/// assert_eq!(BoundaryId::relu(3).to_string(), "3.5");
/// assert!(BoundaryId::conv(3) < BoundaryId::relu(3));
/// assert!(BoundaryId::relu(3) < BoundaryId::conv(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BoundaryId {
    /// 1-based convolution index.
    pub conv_id: usize,
    /// `true` for the position after the conv's ReLU (the paper's `.5`).
    pub after_relu: bool,
}

impl BoundaryId {
    /// The position right after convolution `conv_id` (pre-activation).
    pub fn conv(conv_id: usize) -> Self {
        BoundaryId { conv_id, after_relu: false }
    }

    /// The position right after the ReLU of convolution `conv_id`.
    pub fn relu(conv_id: usize) -> Self {
        BoundaryId { conv_id, after_relu: true }
    }

    /// The paper's decimal representation (`3.0` or `3.5`) for plots.
    pub fn as_decimal(&self) -> f64 {
        self.conv_id as f64 + if self.after_relu { 0.5 } else { 0.0 }
    }
}

impl fmt::Display for BoundaryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.after_relu {
            write!(f, "{}.5", self.conv_id)
        } else {
            write!(f, "{}", self.conv_id)
        }
    }
}

/// Maps a [`BoundaryId`] to the sequential position *after* which the
/// model is cut: running layers `0..seq_end` yields that id's activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutPoint {
    /// The paper-style id.
    pub id: BoundaryId,
    /// Half-open end index into the layer stack.
    pub seq_end: usize,
}

/// A named network plus its cut-point table.
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    input_shape: [usize; 3],
    num_classes: usize,
    seq: Sequential,
    cut_points: Vec<CutPoint>,
}

impl Model {
    /// Wraps a sequential stack with cut-point metadata.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when cut points are unordered or out
    /// of range.
    pub fn new(
        name: impl Into<String>,
        input_shape: [usize; 3],
        num_classes: usize,
        seq: Sequential,
        cut_points: Vec<CutPoint>,
    ) -> Result<Self> {
        let mut prev_end = 0usize;
        for cp in &cut_points {
            if cp.seq_end < prev_end || cp.seq_end > seq.len() {
                return Err(NnError::BadConfig(format!(
                    "cut point {} at {} is out of order or range",
                    cp.id, cp.seq_end
                )));
            }
            prev_end = cp.seq_end;
        }
        Ok(Model { name: name.into(), input_shape, num_classes, seq, cut_points })
    }

    /// Model name, e.g. `vgg16`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected input shape `[c, h, w]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The ordered cut-point table.
    pub fn cut_points(&self) -> &[CutPoint] {
        &self.cut_points
    }

    /// Number of convolutions (the largest conv id).
    pub fn num_convs(&self) -> usize {
        self.cut_points.iter().map(|c| c.id.conv_id).max().unwrap_or(0)
    }

    /// Mutable access to the underlying layer stack (training, surgery).
    pub fn seq_mut(&mut self) -> &mut Sequential {
        &mut self.seq
    }

    /// Immutable access to the underlying layer stack.
    pub fn seq(&self) -> &Sequential {
        &self.seq
    }

    /// Sequential end index of a boundary id.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownCutPoint`] for an id the model does not
    /// have.
    pub fn seq_end_of(&self, id: BoundaryId) -> Result<usize> {
        self.cut_points
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.seq_end)
            .ok_or_else(|| NnError::UnknownCutPoint(id.to_string()))
    }

    /// Full inference pass (evaluation mode).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.seq.forward(x, false)
    }

    /// Immutable inference pass: evaluates the model on scratch buffers
    /// without touching backward caches, so a shared `&Model` can serve
    /// predictions concurrently (`Model` is `Sync`; see [`crate::Layer`]).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn predict(&self, x: &Tensor) -> Result<Tensor> {
        self.seq.forward_eval(x)
    }

    /// Runs the prefix up to (and including) boundary `id`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or layer failures.
    pub fn forward_to_cut(&mut self, id: BoundaryId, x: &Tensor) -> Result<Tensor> {
        let end = self.seq_end_of(id)?;
        self.seq.forward_range(0, end, x, false)
    }

    /// Runs the suffix after boundary `id` on a supplied activation.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or layer failures.
    pub fn forward_from_cut(&mut self, id: BoundaryId, activation: &Tensor) -> Result<Tensor> {
        let start = self.seq_end_of(id)?;
        self.seq.forward_range(start, self.seq.len(), activation, false)
    }

    /// Backpropagates a gradient at boundary `id` down to the model
    /// input — MLA's core primitive. Requires a prior
    /// [`Model::forward_to_cut`] with the same id.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids or missing caches.
    pub fn backward_from_cut(&mut self, id: BoundaryId, grad: &Tensor) -> Result<Tensor> {
        let end = self.seq_end_of(id)?;
        self.seq.backward_range(0, end, grad)
    }

    /// Activations at every cut point for input `x`, in table order.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn activations_at_cuts(&mut self, x: &Tensor) -> Result<Vec<(BoundaryId, Tensor)>> {
        let outs = self.seq.forward_collect(x, false)?;
        Ok(self.cut_points.iter().map(|cp| (cp.id, outs[cp.seq_end - 1].clone())).collect())
    }

    /// Splits the model at `id` into independent (prefix, suffix) stacks
    /// — the crypto and clear segments of C2PI.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ids.
    pub fn split_at(&self, id: BoundaryId) -> Result<(Sequential, Sequential)> {
        let end = self.seq_end_of(id)?;
        let mut prefix = Sequential::new();
        let mut suffix = Sequential::new();
        for (i, layer) in self.seq.layers().iter().enumerate() {
            if i < end {
                prefix.push_boxed(layer.clone());
            } else {
                suffix.push_boxed(layer.clone());
            }
        }
        Ok((prefix, suffix))
    }
}

/// Configuration for the model zoo constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZooConfig {
    /// Number of classes (10 for CIFAR-10-like, 100 for CIFAR-100-like).
    pub num_classes: usize,
    /// Input spatial side (CIFAR: 32).
    pub image_size: usize,
    /// Divide every standard channel count by this factor (≥1). The paper
    /// trains full-width models on an A100; the CPU-scale experiments use
    /// width-reduced variants with identical topology.
    pub width_div: usize,
    /// Weight initialisation seed.
    pub seed: u64,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig { num_classes: 10, image_size: 32, width_div: 8, seed: 42 }
    }
}

impl ZooConfig {
    fn ch(&self, full: usize) -> usize {
        (full / self.width_div).max(4)
    }
}

/// Builds a VGG-style model from a plan string of channel counts and
/// `M` (max-pool) markers.
fn build_vgg(name: &str, plan: &[VggItem], hidden: usize, cfg: &ZooConfig) -> Result<Model> {
    let mut seq = Sequential::new();
    let mut cuts = Vec::new();
    let mut in_ch = 3usize;
    let mut side = cfg.image_size;
    let mut conv_id = 0usize;
    let mut seed = cfg.seed;
    for item in plan {
        match *item {
            VggItem::Conv(full) => {
                let oc = cfg.ch(full);
                conv_id += 1;
                seq.push(layers::Conv2d::new(in_ch, oc, 3, 1, 1, 1, seed));
                seed = seed.wrapping_add(1);
                cuts.push(CutPoint { id: BoundaryId::conv(conv_id), seq_end: seq.len() });
                seq.push(layers::Relu::new());
                cuts.push(CutPoint { id: BoundaryId::relu(conv_id), seq_end: seq.len() });
                in_ch = oc;
            }
            VggItem::Pool => {
                seq.push(layers::MaxPool2d::new(2, 2));
                side /= 2;
            }
        }
    }
    seq.push(layers::Flatten::new());
    let feat = in_ch * side * side;
    let h = cfg.ch(hidden);
    seq.push(layers::Linear::new(feat, h, seed));
    seq.push(layers::Relu::new());
    seq.push(layers::Linear::new(h, cfg.num_classes, seed.wrapping_add(1)));
    Model::new(name, [3, cfg.image_size, cfg.image_size], cfg.num_classes, seq, cuts)
}

#[derive(Clone, Copy)]
enum VggItem {
    Conv(usize),
    Pool,
}

/// VGG-16 for CIFAR-sized inputs: 13 convolutions in five blocks, matching
/// the paper's conv ids 1–13.
///
/// # Errors
///
/// Returns an error only if the internal plan is inconsistent (a bug).
pub fn vgg16(cfg: &ZooConfig) -> Result<Model> {
    use VggItem::{Conv, Pool};
    let plan = [
        Conv(64),
        Conv(64),
        Pool,
        Conv(128),
        Conv(128),
        Pool,
        Conv(256),
        Conv(256),
        Conv(256),
        Pool,
        Conv(512),
        Conv(512),
        Conv(512),
        Pool,
        Conv(512),
        Conv(512),
        Conv(512),
        Pool,
    ];
    build_vgg("vgg16", &plan, 512, cfg)
}

/// VGG-19 for CIFAR-sized inputs: 16 convolutions, matching the paper's
/// conv ids 1–16.
///
/// # Errors
///
/// Returns an error only if the internal plan is inconsistent (a bug).
pub fn vgg19(cfg: &ZooConfig) -> Result<Model> {
    use VggItem::{Conv, Pool};
    let plan = [
        Conv(64),
        Conv(64),
        Pool,
        Conv(128),
        Conv(128),
        Pool,
        Conv(256),
        Conv(256),
        Conv(256),
        Conv(256),
        Pool,
        Conv(512),
        Conv(512),
        Conv(512),
        Conv(512),
        Pool,
        Conv(512),
        Conv(512),
        Conv(512),
        Conv(512),
        Pool,
    ];
    build_vgg("vgg19", &plan, 512, cfg)
}

/// AlexNet variant for CIFAR-sized inputs with 7 convolutions, matching
/// the 7 conv ids swept in the paper's Figure 8 (the original 5-conv
/// AlexNet is deepened to CIFAR scale as in common CIFAR adaptations).
///
/// # Errors
///
/// Returns an error only if the internal plan is inconsistent (a bug).
pub fn alexnet(cfg: &ZooConfig) -> Result<Model> {
    use VggItem::{Conv, Pool};
    let plan = [
        Conv(64),
        Pool,
        Conv(192),
        Pool,
        Conv(384),
        Conv(256),
        Conv(256),
        Pool,
        Conv(256),
        Conv(256),
        Pool,
    ];
    build_vgg("alexnet", &plan, 512, cfg)
}

/// Builds a model by name (`"alexnet"`, `"vgg16"`, `"vgg19"`).
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for unknown names.
pub fn by_name(name: &str, cfg: &ZooConfig) -> Result<Model> {
    match name {
        "alexnet" => alexnet(cfg),
        "vgg16" => vgg16(cfg),
        "vgg19" => vgg19(cfg),
        other => Err(NnError::BadConfig(format!("unknown model {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ZooConfig {
        ZooConfig { num_classes: 10, image_size: 32, width_div: 16, seed: 1 }
    }

    #[test]
    fn boundary_id_ordering_matches_paper() {
        assert!(BoundaryId::conv(7) < BoundaryId::relu(7));
        assert!(BoundaryId::relu(7) < BoundaryId::conv(8));
        assert_eq!(BoundaryId::relu(9).as_decimal(), 9.5);
        assert_eq!(BoundaryId::conv(13).as_decimal(), 13.0);
    }

    #[test]
    fn vgg16_has_13_convs() {
        let m = vgg16(&tiny_cfg()).unwrap();
        assert_eq!(m.num_convs(), 13);
        assert_eq!(m.cut_points().len(), 26); // conv + relu per conv id
    }

    #[test]
    fn vgg19_has_16_convs_and_alexnet_7() {
        assert_eq!(vgg19(&tiny_cfg()).unwrap().num_convs(), 16);
        assert_eq!(alexnet(&tiny_cfg()).unwrap().num_convs(), 7);
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut m = vgg16(&tiny_cfg()).unwrap();
        let x = Tensor::rand_uniform(&[2, 3, 32, 32], 0.0, 1.0, 3);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn cut_and_resume_equals_full_forward() {
        let mut m = alexnet(&tiny_cfg()).unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 4);
        let full = m.forward(&x).unwrap();
        for id in [BoundaryId::conv(3), BoundaryId::relu(3), BoundaryId::relu(5)] {
            let act = m.forward_to_cut(id, &x).unwrap();
            let resumed = m.forward_from_cut(id, &act).unwrap();
            for (a, b) in full.as_slice().iter().zip(resumed.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn relu_cut_is_nonnegative_conv_cut_is_not() {
        let mut m = vgg16(&tiny_cfg()).unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 5);
        let post = m.forward_to_cut(BoundaryId::relu(2), &x).unwrap();
        assert!(post.min() >= 0.0);
        let pre = m.forward_to_cut(BoundaryId::conv(2), &x).unwrap();
        assert!(pre.min() < 0.0);
    }

    #[test]
    fn unknown_cut_rejected() {
        let mut m = alexnet(&tiny_cfg()).unwrap();
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        assert!(m.forward_to_cut(BoundaryId::conv(99), &x).is_err());
    }

    #[test]
    fn split_at_partitions_layers() {
        let m = vgg16(&tiny_cfg()).unwrap();
        let (pre, post) = m.split_at(BoundaryId::relu(9)).unwrap();
        assert_eq!(pre.len() + post.len(), m.seq().len());
        let mut m2 = m.clone();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 6);
        let full = m2.forward(&x).unwrap();
        let mut pre = pre;
        let mut post = post;
        let mid = pre.forward(&x, false).unwrap();
        let out = post.forward(&mid, false).unwrap();
        for (a, b) in full.as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn activations_at_cuts_cover_all_ids() {
        let mut m = alexnet(&tiny_cfg()).unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 7);
        let acts = m.activations_at_cuts(&x).unwrap();
        assert_eq!(acts.len(), m.cut_points().len());
        // Spot check: the relu(1) activation matches forward_to_cut.
        let direct = m.forward_to_cut(BoundaryId::relu(1), &x).unwrap();
        let from_table = &acts.iter().find(|(id, _)| *id == BoundaryId::relu(1)).unwrap().1;
        assert_eq!(&direct, from_table);
    }

    #[test]
    fn predict_is_immutable_and_shareable_across_threads() {
        let mut m = alexnet(&tiny_cfg()).unwrap();
        let x = Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 8);
        let stateful = m.forward(&x).unwrap();
        m.seq_mut().clear_cache();
        let m = m; // freeze: predict needs no mutability
        let from_threads: Vec<Tensor> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2).map(|_| scope.spawn(|| m.predict(&x).unwrap())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for y in from_threads {
            for (a, b) in stateful.as_slice().iter().zip(y.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn by_name_dispatches() {
        assert!(by_name("vgg16", &tiny_cfg()).is_ok());
        assert!(by_name("resnet50", &tiny_cfg()).is_err());
    }

    #[test]
    fn width_div_shrinks_parameters() {
        let mut wide = vgg16(&ZooConfig { width_div: 4, ..tiny_cfg() }).unwrap();
        let mut narrow = vgg16(&ZooConfig { width_div: 32, ..tiny_cfg() }).unwrap();
        let count = |m: &mut Model| -> usize { m.seq_mut().params().iter().map(|p| p.len()).sum() };
        assert!(count(&mut wide) > count(&mut narrow));
    }
}
