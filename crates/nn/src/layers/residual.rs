//! ResNet basic block — the building block of the EINA and DINA
//! inversion models (He et al., CVPR 2016).

use crate::{Layer, LayerKind, NnError, Param, Result};
use c2pi_tensor::Tensor;

use super::{Conv2d, Relu};

/// A two-convolution residual block with ReLU activations:
///
/// `y = relu(conv2(relu(conv1(x))) + shortcut(x))`
///
/// where `shortcut` is the identity when the channel counts agree and a
/// 1×1 convolution otherwise. Both convolutions are 3×3, stride 1,
/// padding 1, so spatial dimensions are preserved.
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    relu1: Relu,
    conv2: Conv2d,
    shortcut: Option<Conv2d>,
    final_mask: Option<Vec<bool>>,
    out_dims: Vec<usize>,
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_channels` to `out_channels`.
    ///
    /// # Panics
    ///
    /// Panics if either channel count is zero.
    pub fn new(in_channels: usize, out_channels: usize, seed: u64) -> Self {
        let shortcut = if in_channels == out_channels {
            None
        } else {
            Some(Conv2d::new(in_channels, out_channels, 1, 1, 0, 1, seed.wrapping_add(2)))
        };
        ResidualBlock {
            conv1: Conv2d::new(in_channels, out_channels, 3, 1, 1, 1, seed),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, 1, 1, 1, seed.wrapping_add(1)),
            shortcut,
            final_mask: None,
            out_dims: Vec::new(),
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let h = self.conv1.forward(x, train)?;
        let h = self.relu1.forward(&h, train)?;
        let h = self.conv2.forward(&h, train)?;
        let skip = match &mut self.shortcut {
            Some(c) => c.forward(x, train)?,
            None => x.clone(),
        };
        let pre = h.add(&skip)?;
        let mask: Vec<bool> = pre.as_slice().iter().map(|&v| v > 0.0).collect();
        let y = pre.map(|v| if v > 0.0 { v } else { 0.0 });
        self.final_mask = Some(mask);
        self.out_dims = y.dims().to_vec();
        Ok(y)
    }

    fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        let h = self.conv1.forward_eval(x)?;
        let h = self.relu1.forward_eval(&h)?;
        let h = self.conv2.forward_eval(&h)?;
        let skip = match &self.shortcut {
            Some(c) => c.forward_eval(x)?,
            None => x.clone(),
        };
        let pre = h.add(&skip)?;
        Ok(pre.map(|v| if v > 0.0 { v } else { 0.0 }))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask =
            self.final_mask.take().ok_or(NnError::MissingCache { layer: "residual_block" })?;
        if grad_out.len() != mask.len() {
            return Err(NnError::BadConfig("residual backward shape mismatch".into()));
        }
        let gated = Tensor::from_vec(
            grad_out
                .as_slice()
                .iter()
                .zip(mask.iter())
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
            &self.out_dims,
        )?;
        // Main path.
        let g = self.conv2.backward(&gated)?;
        let g = self.relu1.backward(&g)?;
        let g_main = self.conv1.backward(&g)?;
        // Skip path.
        let g_skip = match &mut self.shortcut {
            Some(c) => c.backward(&gated)?,
            None => gated,
        };
        Ok(g_main.add(&g_skip)?)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut ps = self.conv1.params();
        ps.extend(self.conv2.params());
        if let Some(c) = &mut self.shortcut {
            ps.extend(c.params());
        }
        ps
    }

    fn kind(&self) -> LayerKind {
        LayerKind::NonLinear
    }

    fn describe(&self) -> String {
        format!(
            "residual_block({}->{}{})",
            self.conv1.in_channels(),
            self.conv1.out_channels(),
            if self.shortcut.is_some() { ", 1x1 shortcut" } else { "" }
        )
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.conv1.clear_cache();
        self.relu1.clear_cache();
        self.conv2.clear_cache();
        if let Some(c) = &mut self.shortcut {
            c.clear_cache();
        }
        self.final_mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_shortcut_preserves_shape() {
        let mut rb = ResidualBlock::new(4, 4, 0);
        let x = Tensor::rand_uniform(&[2, 4, 6, 6], -1.0, 1.0, 1);
        let y = rb.forward(&x, false).unwrap();
        assert_eq!(y.dims(), x.dims());
        assert!(rb.describe().contains("4->4"));
        assert_eq!(rb.params().len(), 4); // two convs, weight+bias each
    }

    #[test]
    fn projection_shortcut_changes_channels() {
        let mut rb = ResidualBlock::new(2, 6, 0);
        let x = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, 2);
        let y = rb.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 6, 5, 5]);
        assert_eq!(rb.params().len(), 6); // plus the 1x1 projection
    }

    #[test]
    fn output_is_nonnegative() {
        let mut rb = ResidualBlock::new(3, 3, 5);
        let x = Tensor::rand_uniform(&[1, 3, 4, 4], -2.0, 2.0, 3);
        let y = rb.forward(&x, false).unwrap();
        assert!(y.min() >= 0.0);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rb = ResidualBlock::new(2, 2, 7);
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, 8);
        let y = rb.forward(&x, true).unwrap();
        let gx = rb.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        let eps = 1e-2f32;
        for probe in [0usize, 13, x.len() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let numeric = (rb.forward(&xp, true).unwrap().sum()
                - rb.forward(&xm, true).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (numeric - gx.as_slice()[probe]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "probe {probe}: {} vs {}",
                numeric,
                gx.as_slice()[probe]
            );
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rb = ResidualBlock::new(2, 2, 9);
        assert!(rb.backward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
    }
}
