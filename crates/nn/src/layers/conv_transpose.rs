//! Transposed (fractionally strided) convolution, used by the inversion
//! networks to grow spatial resolution back toward the input image.

use crate::{Layer, LayerKind, NnError, Param, Result};
use c2pi_tensor::conv::{col2im, im2col, Conv2dGeom};
use c2pi_tensor::{matmul, Tensor};

/// Transposed 2-D convolution `[n, ic, h, w] -> [n, oc, oh, ow]` with
/// `oh = (h-1)·stride + kernel - 2·padding`.
///
/// Forward is exactly the input-gradient computation of an ordinary
/// convolution with the same geometry, and backward is that
/// convolution's forward — both expressed through `im2col`/`col2im`.
#[derive(Debug, Clone)]
pub struct ConvTranspose2d {
    in_channels: usize,
    out_channels: usize,
    geom: Conv2dGeom,
    /// Stored as the *forward-conv* weight layout `[ic, oc, k, k]`.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution with Kaiming-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if any of the channel counts, `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "channels must be positive");
        let geom = Conv2dGeom::new(kernel, stride, padding, 1);
        let fan_in = in_channels * kernel * kernel;
        ConvTranspose2d {
            in_channels,
            out_channels,
            geom,
            weight: Param::kaiming(&[in_channels, out_channels, kernel, kernel], fan_in, seed),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            cached_input: None,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let p = self.geom.padding;
        ((h - 1) * s + k - 2 * p, (w - 1) * s + k - 2 * p)
    }

    fn weight_mat(&self) -> Result<Tensor> {
        let k = self.geom.kernel;
        Ok(self.weight.value.reshape(&[self.in_channels, self.out_channels * k * k])?)
    }

    /// The forward computation, cache-free (shared by the training and
    /// immutable inference paths).
    fn compute(&self, x: &Tensor) -> Result<Tensor> {
        let (n, c, h, w) = x.shape().as_nchw()?;
        if c != self.in_channels {
            return Err(NnError::BadConfig(format!(
                "conv_transpose2d expects {} input channels, got {c}",
                self.in_channels
            )));
        }
        let (oh, ow) = self.output_hw(h, w);
        let wmat = self.weight_mat()?;
        let mut items = Vec::with_capacity(n);
        for b in 0..n {
            let xm = x.batch_item(b)?.reshape(&[self.in_channels, h * w])?;
            // cols = Wᵀ × x: [oc·k·k, h·w]
            let cols = matmul::matmul_at(&wmat, &xm)?;
            let mut out = col2im(&cols, self.out_channels, oh, ow, self.geom)?;
            for o in 0..self.out_channels {
                let bv = self.bias.value.as_slice()[o];
                for v in &mut out.as_mut_slice()[o * oh * ow..(o + 1) * oh * ow] {
                    *v += bv;
                }
            }
            items.push(out);
        }
        Ok(Tensor::stack_batch(&items)?)
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let y = self.compute(x)?;
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        self.compute(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x =
            self.cached_input.take().ok_or(NnError::MissingCache { layer: "conv_transpose2d" })?;
        let (n, _, h, w) = x.shape().as_nchw()?;
        let wmat = self.weight_mat()?;
        let k = self.geom.kernel;
        let mut grad_items = Vec::with_capacity(n);
        let mut wgrad = Tensor::zeros(&[self.in_channels, self.out_channels * k * k]);
        let mut bgrad = Tensor::zeros(&[self.out_channels]);
        let (_, goc, goh, gow) = grad_out.shape().as_nchw()?;
        if goc != self.out_channels {
            return Err(NnError::BadConfig("conv_transpose2d backward shape mismatch".into()));
        }
        for b in 0..n {
            let gb = grad_out.batch_item(b)?;
            let gcols = im2col(&gb, self.geom)?; // [oc·k·k, h·w]
            let xm = x.batch_item(b)?.reshape(&[self.in_channels, h * w])?;
            // dX = W × gcols (an ordinary conv forward on the gradient)
            let gx = wmat.matmul(&gcols)?;
            grad_items.push(gx.reshape(&[1, self.in_channels, h, w])?);
            // dW += x × gcolsᵀ
            wgrad.add_assign_scaled(&matmul::matmul_bt(&xm, &gcols)?, 1.0)?;
            // db += spatial sums of the output gradient
            for o in 0..self.out_channels {
                bgrad.as_mut_slice()[o] +=
                    gb.as_slice()[o * goh * gow..(o + 1) * goh * gow].iter().sum::<f32>();
            }
        }
        self.weight.grad.add_assign_scaled(
            &wgrad.reshape(&[self.in_channels, self.out_channels, k, k])?,
            1.0,
        )?;
        self.bias.grad.add_assign_scaled(&bgrad, 1.0)?;
        Ok(Tensor::stack_batch(&grad_items)?)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn describe(&self) -> String {
        format!(
            "conv_transpose2d({}->{}, k{} s{} p{})",
            self.in_channels,
            self.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding
        )
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_doubles_with_stride2_k2() {
        let ct = ConvTranspose2d::new(4, 2, 2, 2, 0, 0);
        assert_eq!(ct.output_hw(8, 8), (16, 16));
    }

    #[test]
    fn same_size_with_k3_s1_p1() {
        let ct = ConvTranspose2d::new(2, 2, 3, 1, 1, 0);
        assert_eq!(ct.output_hw(8, 8), (8, 8));
    }

    #[test]
    fn forward_shape_is_correct() {
        let mut ct = ConvTranspose2d::new(4, 2, 2, 2, 0, 1);
        let x = Tensor::rand_uniform(&[2, 4, 5, 5], -1.0, 1.0, 2);
        let y = ct.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 2, 10, 10]);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut ct = ConvTranspose2d::new(2, 3, 2, 2, 0, 3);
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, 4);
        let y = ct.forward(&x, true).unwrap();
        let gx = ct.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        let eps = 1e-2f32;
        for probe in [0usize, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let numeric = (ct.forward(&xp, true).unwrap().sum()
                - ct.forward(&xm, true).unwrap().sum())
                / (2.0 * eps);
            assert!(
                (numeric - gx.as_slice()[probe]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut ct = ConvTranspose2d::new(1, 1, 2, 2, 0, 5);
        let x = Tensor::rand_uniform(&[1, 1, 3, 3], -1.0, 1.0, 6);
        let y = ct.forward(&x, true).unwrap();
        ct.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        let analytic = ct.weight.grad.clone();
        let eps = 1e-2f32;
        for probe in 0..analytic.len() {
            let orig = ct.weight.value.as_slice()[probe];
            ct.weight.value.as_mut_slice()[probe] = orig + eps;
            let lp = ct.forward(&x, true).unwrap().sum();
            ct.weight.value.as_mut_slice()[probe] = orig - eps;
            let lm = ct.forward(&x, true).unwrap().sum();
            ct.weight.value.as_mut_slice()[probe] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - analytic.as_slice()[probe]).abs() < 2e-2 * (1.0 + numeric.abs()));
        }
    }

    #[test]
    fn transpose_inverts_conv_shape() {
        // conv k3 s2 p1 on 7x7 gives 4x4; the matching transpose maps back
        // to 7x7 when kernel/stride/padding chosen appropriately.
        let geom_down = Conv2dGeom::new(3, 2, 1, 1);
        let (oh, ow) = geom_down.output_hw(7, 7).unwrap();
        assert_eq!((oh, ow), (4, 4));
        let ct = ConvTranspose2d::new(1, 1, 3, 2, 1, 7);
        assert_eq!(ct.output_hw(oh, ow), (7, 7));
    }
}
