//! Fully connected layer.

use crate::layer::LayerSpec;
use crate::{Layer, LayerKind, NnError, Param, Result};
use c2pi_tensor::{matmul, Tensor};

/// A fully connected layer `[n, in] -> [n, out]` with bias.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights
    /// `[in, out]` and zero bias `[out]`.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "features must be positive");
        Linear {
            in_features,
            out_features,
            weight: Param::kaiming(&[in_features, out_features], in_features, seed),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight `[in, out]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let (n, f) = x.shape().as_matrix()?;
        if f != self.in_features {
            return Err(NnError::BadConfig(format!(
                "linear expects {} features, got {f}",
                self.in_features
            )));
        }
        let mut y = x.matmul(&self.weight.value)?;
        for i in 0..n {
            for (j, v) in y.as_mut_slice()[i * self.out_features..(i + 1) * self.out_features]
                .iter_mut()
                .enumerate()
            {
                *v += self.bias.value.as_slice()[j];
            }
        }
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.take().ok_or(NnError::MissingCache { layer: "linear" })?;
        let (n, _) = grad_out.shape().as_matrix()?;
        // dW += xᵀ × g  — matmul_at treats x as already-transposed.
        let wgrad = matmul::matmul_at(&x, grad_out)?;
        self.weight.grad.add_assign_scaled(&wgrad, 1.0)?;
        // db += column sums of g.
        for i in 0..n {
            for j in 0..self.out_features {
                self.bias.grad.as_mut_slice()[j] += grad_out.as_slice()[i * self.out_features + j];
            }
        }
        // dX = g × Wᵀ.
        Ok(matmul::matmul_bt(grad_out, &self.weight.value)?)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn describe(&self) -> String {
        format!("linear({}->{})", self.in_features, self.out_features)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Linear { weight: self.weight.value.clone(), bias: self.bias.value.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(2, 2, 0);
        l.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        l.bias.value = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = l.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut l = Linear::new(4, 3, 1);
        let x = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, 2);
        let y = l.forward(&x, true).unwrap();
        let gx = l.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        let eps = 1e-3f32;
        // input gradient
        for probe in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let numeric = (l.forward(&xp, true).unwrap().sum()
                - l.forward(&xm, true).unwrap().sum())
                / (2.0 * eps);
            assert!((numeric - gx.as_slice()[probe]).abs() < 1e-2);
        }
    }

    #[test]
    fn weight_grad_accumulates_across_backwards() {
        let mut l = Linear::new(2, 2, 3);
        let x = Tensor::rand_uniform(&[1, 2], -1.0, 1.0, 4);
        for _ in 0..2 {
            let y = l.forward(&x, true).unwrap();
            l.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        }
        let once = {
            let mut l2 = Linear::new(2, 2, 3);
            let y = l2.forward(&x, true).unwrap();
            l2.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
            l2.weight.grad.clone()
        };
        for (a, b) in l.weight.grad.as_slice().iter().zip(once.as_slice()) {
            assert!((a - 2.0 * b).abs() < 1e-5);
        }
    }

    #[test]
    fn feature_mismatch_rejected() {
        let mut l = Linear::new(4, 3, 5);
        assert!(l.forward(&Tensor::zeros(&[1, 5]), false).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = Linear::new(2, 2, 6);
        assert!(l.backward(&Tensor::zeros(&[1, 2])).is_err());
    }
}
