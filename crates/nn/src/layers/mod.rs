//! Layer implementations.
//!
//! Each submodule provides one layer family; everything is re-exported
//! flat so call sites read `layers::Conv2d`, `layers::Relu`, …

mod activation;
mod batchnorm;
mod conv;
mod conv_transpose;
mod flatten;
mod linear;
mod pool;
mod residual;
mod upsample;

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use conv_transpose::ConvTranspose2d;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::ResidualBlock;
pub use upsample::UpsampleNearest;
