//! 2-D batch normalisation.

use crate::layer::LayerSpec;
use crate::{Layer, LayerKind, NnError, Param, Result};
use c2pi_tensor::Tensor;

/// Per-channel batch normalisation over NCHW activations.
///
/// Training mode normalises with batch statistics and updates running
/// estimates; evaluation mode uses the running estimates, which lets the
/// PI engines fold the layer into the preceding convolution (it is a
/// per-channel affine map at inference time, hence [`LayerKind::Affine`]).
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            cache: None,
        }
    }

    /// The inference-time per-channel scale `gamma / sqrt(var + eps)`.
    pub fn folded_scale(&self) -> Vec<f32> {
        (0..self.channels)
            .map(|c| {
                self.gamma.value.as_slice()[c] / (self.running_var.as_slice()[c] + self.eps).sqrt()
            })
            .collect()
    }

    /// The inference-time per-channel shift `beta - mean * folded_scale`.
    pub fn folded_shift(&self) -> Vec<f32> {
        let scale = self.folded_scale();
        (0..self.channels)
            .map(|c| self.beta.value.as_slice()[c] - self.running_mean.as_slice()[c] * scale[c])
            .collect()
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, h, w) = x.shape().as_nchw()?;
        if c != self.channels {
            return Err(NnError::BadConfig(format!(
                "batchnorm expects {} channels, got {c}",
                self.channels
            )));
        }
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut out = Tensor::zeros(x.dims());
        if train {
            let mut x_hat = Tensor::zeros(x.dims());
            let mut inv_stds = vec![0.0f32; c];
            for (ch, inv_std_slot) in inv_stds.iter_mut().enumerate() {
                let mut mean = 0.0f32;
                for b in 0..n {
                    let off = (b * c + ch) * plane;
                    mean += x.as_slice()[off..off + plane].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for b in 0..n {
                    let off = (b * c + ch) * plane;
                    var += x.as_slice()[off..off + plane]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= count;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                *inv_std_slot = inv_std;
                let g = self.gamma.value.as_slice()[ch];
                let bta = self.beta.value.as_slice()[ch];
                for b in 0..n {
                    let off = (b * c + ch) * plane;
                    for i in 0..plane {
                        let xh = (x.as_slice()[off + i] - mean) * inv_std;
                        x_hat.as_mut_slice()[off + i] = xh;
                        out.as_mut_slice()[off + i] = g * xh + bta;
                    }
                }
                self.running_mean.as_mut_slice()[ch] =
                    (1.0 - self.momentum) * self.running_mean.as_slice()[ch] + self.momentum * mean;
                self.running_var.as_mut_slice()[ch] =
                    (1.0 - self.momentum) * self.running_var.as_slice()[ch] + self.momentum * var;
            }
            self.cache = Some(BnCache { x_hat, inv_std: inv_stds, dims: x.dims().to_vec() });
        } else {
            let scale = self.folded_scale();
            let shift = self.folded_shift();
            for b in 0..n {
                for ch in 0..c {
                    let off = (b * c + ch) * plane;
                    for i in 0..plane {
                        out.as_mut_slice()[off + i] = x.as_slice()[off + i] * scale[ch] + shift[ch];
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.take().ok_or(NnError::MissingCache { layer: "batchnorm2d" })?;
        let dims = cache.dims.clone();
        let (n, c, h, w) = c2pi_tensor::Shape::new(&dims).as_nchw()?;
        if grad_out.dims() != dims.as_slice() {
            return Err(NnError::BadConfig("batchnorm backward shape mismatch".into()));
        }
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(&dims);
        for ch in 0..c {
            let g = self.gamma.value.as_slice()[ch];
            let inv_std = cache.inv_std[ch];
            // Accumulate the three reduction terms of the BN backward formula.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for b in 0..n {
                let off = (b * c + ch) * plane;
                for i in 0..plane {
                    let dy = grad_out.as_slice()[off + i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.as_slice()[off + i];
                }
            }
            self.beta.grad.as_mut_slice()[ch] += sum_dy;
            self.gamma.grad.as_mut_slice()[ch] += sum_dy_xhat;
            for b in 0..n {
                let off = (b * c + ch) * plane;
                for i in 0..plane {
                    let dy = grad_out.as_slice()[off + i];
                    let xh = cache.x_hat.as_slice()[off + i];
                    grad_in.as_mut_slice()[off + i] =
                        g * inv_std * (dy - sum_dy / count - xh * sum_dy_xhat / count);
                }
            }
        }
        Ok(grad_in)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Affine
    }

    fn describe(&self) -> String {
        format!("batchnorm2d({})", self.channels)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Affine { scale: self.folded_scale(), shift: self.folded_shift() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_forward_normalises() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_uniform(&[4, 2, 3, 3], 5.0, 9.0, 0);
        let y = bn.forward(&x, true).unwrap();
        // Per-channel mean ~0, var ~1 after normalisation with unit gamma.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for i in 0..9 {
                    vals.push(y.at(&[b, ch, i / 3, i % 3]).unwrap());
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::rand_uniform(&[8, 1, 4, 4], 2.0, 4.0, 1);
        for _ in 0..60 {
            bn.forward(&x, true).unwrap();
            bn.clear_cache();
        }
        let y = bn.forward(&x, false).unwrap();
        assert!(y.mean().abs() < 0.3);
    }

    #[test]
    fn backward_sums_to_zero_per_channel() {
        // With gamma=1, the BN input gradient for a constant dy is exactly 0
        // (dy - mean(dy) - x_hat*mean(dy*x_hat) collapses).
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::rand_uniform(&[2, 1, 3, 3], -1.0, 1.0, 2);
        bn.forward(&x, true).unwrap();
        let g = bn.backward(&Tensor::full(&[2, 1, 3, 3], 1.0)).unwrap();
        assert!(g.as_slice().iter().all(|v| v.abs() < 1e-4));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::rand_uniform(&[1, 1, 2, 2], -1.0, 1.0, 3);
        // Use a non-uniform downstream gradient via L = sum(y * w).
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 1, 2, 2]).unwrap();
        bn.forward(&x, true).unwrap();
        let gx = bn.backward(&w).unwrap();
        let eps = 1e-3f32;
        for probe in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let mut bn2 = BatchNorm2d::new(1);
            let lp = bn2.forward(&xp, true).unwrap().mul(&w).unwrap().sum();
            let mut bn3 = BatchNorm2d::new(1);
            let lm = bn3.forward(&xm, true).unwrap().mul(&w).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.as_slice()[probe]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "probe {probe}: {} vs {}",
                numeric,
                gx.as_slice()[probe]
            );
        }
    }

    #[test]
    fn folded_affine_matches_eval_forward() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_uniform(&[4, 2, 3, 3], -2.0, 2.0, 4);
        bn.forward(&x, true).unwrap();
        bn.clear_cache();
        let y = bn.forward(&x, false).unwrap();
        let scale = bn.folded_scale();
        let shift = bn.folded_shift();
        for b in 0..4 {
            for ch in 0..2 {
                for i in 0..9 {
                    let expect = x.at(&[b, ch, i / 3, i % 3]).unwrap() * scale[ch] + shift[ch];
                    assert!((y.at(&[b, ch, i / 3, i % 3]).unwrap() - expect).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4]), true).is_err());
    }
}
