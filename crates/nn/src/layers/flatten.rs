//! Flatten: NCHW activations to `[n, c·h·w]` feature matrices.

use crate::layer::LayerSpec;
use crate::{Layer, LayerKind, NnError, Result};
use c2pi_tensor::Tensor;

/// Reshapes `[n, c, h, w]` into `[n, c·h·w]` for the classifier head.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let (n, c, h, w) = x.shape().as_nchw()?;
        self.input_dims = Some(x.dims().to_vec());
        Ok(x.reshape(&[n, c * h * w])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.take().ok_or(NnError::MissingCache { layer: "flatten" })?;
        Ok(grad_out.reshape(&dims)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Reshape
    }

    fn describe(&self) -> String {
        "flatten".to_string()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.input_dims = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Flatten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::rand_uniform(&[2, 3, 4, 4], -1.0, 1.0, 0);
        let y = f.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g, x);
    }

    #[test]
    fn rejects_non_nchw() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[2, 3]), false).is_err());
    }
}
