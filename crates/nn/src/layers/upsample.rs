//! Nearest-neighbour upsampling layer.

use crate::{Layer, LayerKind, NnError, Result};
use c2pi_tensor::pool;
use c2pi_tensor::Tensor;

/// Nearest-neighbour upsampling by an integer factor; the cheap
/// resolution-growing alternative to [`super::ConvTranspose2d`] used
/// inside the inversion networks.
#[derive(Debug, Clone)]
pub struct UpsampleNearest {
    factor: usize,
    did_forward: bool,
}

impl UpsampleNearest {
    /// Creates an upsampling layer.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "upsample factor must be positive");
        UpsampleNearest { factor, did_forward: false }
    }

    /// The upsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Layer for UpsampleNearest {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        self.did_forward = true;
        Ok(pool::upsample_nearest(x, self.factor)?)
    }

    fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        Ok(pool::upsample_nearest(x, self.factor)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if !self.did_forward {
            return Err(NnError::MissingCache { layer: "upsample_nearest" });
        }
        self.did_forward = false;
        Ok(pool::upsample_nearest_backward(grad_out, self.factor)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Reshape
    }

    fn describe(&self) -> String {
        format!("upsample_nearest(x{})", self.factor)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.did_forward = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_round_trip() {
        let mut up = UpsampleNearest::new(2);
        let x = Tensor::rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, 0);
        let y = up.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 2, 6, 6]);
        let g = up.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        assert!(g.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut up = UpsampleNearest::new(2);
        assert!(up.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
