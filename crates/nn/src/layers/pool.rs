//! Max and average pooling layers.

use crate::layer::LayerSpec;
use crate::{Layer, LayerKind, NnError, Result};
use c2pi_tensor::pool;
use c2pi_tensor::Tensor;

/// 2-D max pooling (square window, equal stride).
///
/// Max pooling is comparison-based, so like ReLU it belongs to the
/// expensive non-linear protocol class in the crypto phase.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "pool window/stride must be positive");
        MaxPool2d { window, stride, cache: None }
    }

    /// Window side length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let out = pool::max_pool2d(x, self.window, self.stride)?;
        self.cache = Some((out.argmax, x.dims().to_vec()));
        Ok(out.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (argmax, dims) =
            self.cache.take().ok_or(NnError::MissingCache { layer: "max_pool2d" })?;
        Ok(pool::max_pool2d_backward(grad_out, &argmax, &dims)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::NonLinear
    }

    fn describe(&self) -> String {
        format!("max_pool2d(w{} s{})", self.window, self.stride)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.cache = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::MaxPool2d { window: self.window, stride: self.stride }
    }
}

/// 2-D average pooling (square window, equal stride).
///
/// Linear in its input, so the PI engines treat it as a cheap affine
/// operation.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "pool window/stride must be positive");
        AvgPool2d { window, stride, input_dims: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let y = pool::avg_pool2d(x, self.window, self.stride)?;
        self.input_dims = Some(x.dims().to_vec());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.take().ok_or(NnError::MissingCache { layer: "avg_pool2d" })?;
        Ok(pool::avg_pool2d_backward(grad_out, &dims, self.window, self.stride)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Affine
    }

    fn describe(&self) -> String {
        format!("avg_pool2d(w{} s{})", self.window, self.stride)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.input_dims = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::AvgPool2d { window: self.window, stride: self.stride }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_halves_spatial_size() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, 0);
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn max_pool_gradient_is_sparse() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 1);
        let y = p.forward(&x, true).unwrap();
        let g = p.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        let nonzero = g.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4); // one winner per window
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::full(&[1, 1, 4, 4], 8.0);
        let y = p.forward(&x, true).unwrap();
        assert!(y.as_slice().iter().all(|&v| (v - 8.0).abs() < 1e-6));
        let g = p.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        assert!(g.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn kinds_reflect_protocol_class() {
        assert_eq!(MaxPool2d::new(2, 2).kind(), LayerKind::NonLinear);
        assert_eq!(AvgPool2d::new(2, 2).kind(), LayerKind::Affine);
    }

    #[test]
    fn backward_without_forward_errors() {
        assert!(MaxPool2d::new(2, 2).backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        assert!(AvgPool2d::new(2, 2).backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
