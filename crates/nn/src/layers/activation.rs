//! ReLU — the non-linearity whose MPC cost motivates the whole paper.

use crate::layer::LayerSpec;
use crate::{Layer, LayerKind, NnError, Result};
use c2pi_tensor::Tensor;

/// Rectified linear unit, `max(0, x)` elementwise.
///
/// In the crypto phase of a PI framework every ReLU costs a garbled
/// circuit (Delphi) or a batch of OTs (Cheetah); in C2PI's clear phase it
/// is a single comparison. The layer caches the sign mask for backward.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    dims: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let mask: Vec<bool> = x.as_slice().iter().map(|&v| v > 0.0).collect();
        let y = x.map(|v| if v > 0.0 { v } else { 0.0 });
        self.mask = Some(mask);
        self.dims = x.dims().to_vec();
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.take().ok_or(NnError::MissingCache { layer: "relu" })?;
        if grad_out.len() != mask.len() {
            return Err(NnError::BadConfig(format!(
                "relu backward: gradient has {} elements, cache has {}",
                grad_out.len(),
                mask.len()
            )));
        }
        let data = grad_out
            .as_slice()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(data, &self.dims)?)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::NonLinear
    }

    fn describe(&self) -> String {
        "relu".to_string()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.mask = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Relu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 3.0, 0.0], &[4]).unwrap();
        r.forward(&x, true).unwrap();
        let g = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[4]).unwrap();
        let gi = r.backward(&g).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // subgradient choice: ReLU'(0) = 0, matching the forward mask v > 0
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[2]), true).unwrap();
        let gi = r.backward(&Tensor::full(&[2], 1.0)).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn backward_twice_errors() {
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[2]), true).unwrap();
        r.backward(&Tensor::zeros(&[2])).unwrap();
        assert!(r.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn mismatched_gradient_rejected() {
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[4]), true).unwrap();
        assert!(r.backward(&Tensor::zeros(&[5])).is_err());
    }
}
