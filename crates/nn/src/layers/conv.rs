//! 2-D convolution (with optional dilation), the workhorse linear layer.

use crate::layer::LayerSpec;
use crate::{Layer, LayerKind, NnError, Param, Result};
use c2pi_tensor::conv::{col2im, im2col, Conv2dGeom};
use c2pi_tensor::{matmul, Tensor};

/// A 2-D convolution layer `[n, ic, h, w] -> [n, oc, oh, ow]`.
///
/// Supports stride, zero padding and dilation (DINA's basic inverse
/// blocks use dilated convolutions). Forward uses the im2col + matmul
/// fast path; backward recomputes the patch matrix rather than caching
/// it, trading FLOPs for memory — attack training holds many layers
/// alive at once.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geom: Conv2dGeom,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel`, `stride`
    /// is zero (dilation is validated by [`Conv2dGeom::new`]).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        dilation: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "channels must be positive");
        let geom = Conv2dGeom::new(kernel, stride, padding, dilation);
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            geom,
            weight: Param::kaiming(&[out_channels, in_channels, kernel, kernel], fan_in, seed),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            cached_input: None,
        }
    }

    /// The convolution geometry.
    pub fn geom(&self) -> Conv2dGeom {
        self.geom
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Immutable view of the weight tensor `[oc, ic, k, k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias tensor `[oc]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Replaces the weight tensor (used by tests and model surgery).
    ///
    /// # Errors
    ///
    /// Returns an error when the shape differs from `[oc, ic, k, k]`.
    pub fn set_weight(&mut self, weight: Tensor) -> Result<()> {
        if weight.dims() != self.weight.value.dims() {
            return Err(NnError::BadConfig(format!(
                "weight shape {:?} != {:?}",
                weight.dims(),
                self.weight.value.dims()
            )));
        }
        self.weight = Param::new(weight);
        Ok(())
    }

    fn weight_mat(&self) -> Result<Tensor> {
        let k = self.geom.kernel;
        Ok(self.weight.value.reshape(&[self.out_channels, self.in_channels * k * k])?)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Result<Tensor> {
        let (n, c, h, w) = x.shape().as_nchw()?;
        if c != self.in_channels {
            return Err(NnError::BadConfig(format!(
                "conv2d expects {} input channels, got {c}",
                self.in_channels
            )));
        }
        let (oh, ow) = self.geom.output_hw(h, w)?;
        let wmat = self.weight_mat()?;
        let mut items = Vec::with_capacity(n);
        for b in 0..n {
            let cols = im2col(&x.batch_item(b)?, self.geom)?;
            let mut prod = wmat.matmul(&cols)?;
            for o in 0..self.out_channels {
                let bv = self.bias.value.as_slice()[o];
                for v in &mut prod.as_mut_slice()[o * oh * ow..(o + 1) * oh * ow] {
                    *v += bv;
                }
            }
            items.push(prod.reshape(&[1, self.out_channels, oh, ow])?);
        }
        self.cached_input = Some(x.clone());
        Ok(Tensor::stack_batch(&items)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.take().ok_or(NnError::MissingCache { layer: "conv2d" })?;
        let (n, _, h, w) = x.shape().as_nchw()?;
        let (gn, goc, oh, ow) = grad_out.shape().as_nchw()?;
        if gn != n || goc != self.out_channels {
            return Err(NnError::BadConfig(format!(
                "conv2d backward: gradient shape {:?} incompatible",
                grad_out.dims()
            )));
        }
        let wmat = self.weight_mat()?;
        let k = self.geom.kernel;
        let ckk = self.in_channels * k * k;
        let mut grad_items = Vec::with_capacity(n);
        let mut wgrad = Tensor::zeros(&[self.out_channels, ckk]);
        let mut bgrad = Tensor::zeros(&[self.out_channels]);
        for b in 0..n {
            let cols = im2col(&x.batch_item(b)?, self.geom)?;
            let gmat = grad_out.batch_item(b)?.reshape(&[self.out_channels, oh * ow])?;
            // dW += g × colsᵀ
            wgrad.add_assign_scaled(&matmul::matmul_bt(&gmat, &cols)?, 1.0)?;
            // db += row sums of g
            for o in 0..self.out_channels {
                bgrad.as_mut_slice()[o] +=
                    gmat.as_slice()[o * oh * ow..(o + 1) * oh * ow].iter().sum::<f32>();
            }
            // dX = col2im(Wᵀ × g)
            let gcols = matmul::matmul_at(&wmat, &gmat)?;
            grad_items.push(col2im(&gcols, self.in_channels, h, w, self.geom)?);
        }
        self.weight.grad.add_assign_scaled(
            &wgrad.reshape(&[self.out_channels, self.in_channels, k, k])?,
            1.0,
        )?;
        self.bias.grad.add_assign_scaled(&bgrad, 1.0)?;
        Ok(Tensor::stack_batch(&grad_items)?)
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn describe(&self) -> String {
        format!(
            "conv2d({}->{}, k{} s{} p{} d{})",
            self.in_channels,
            self.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding,
            self.geom.dilation
        )
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv2d {
            weight: self.weight.value.clone(),
            bias: self.bias.value.clone(),
            geom: self.geom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c2pi_tensor::conv::conv2d_direct;

    fn finite_diff_check(layer: &mut Conv2d, x: &Tensor) {
        // Scalar loss L = sum(forward(x)); check dL/dx via finite differences.
        let y = layer.forward(x, true).unwrap();
        let grad_out = Tensor::full(y.dims(), 1.0);
        let gx = layer.backward(&grad_out).unwrap();
        let eps = 1e-2f32;
        for probe in [0usize, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let lp = layer.forward(&xp, true).unwrap().sum();
            let lm = layer.forward(&xm, true).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gx.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "probe {probe}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn forward_matches_direct_reference() {
        let mut layer = Conv2d::new(3, 5, 3, 1, 1, 1, 7);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, 1);
        let fast = layer.forward(&x, false).unwrap();
        let slow = conv2d_direct(&x, layer.weight(), layer.bias(), layer.geom()).unwrap();
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn dilated_forward_matches_reference() {
        let mut layer = Conv2d::new(2, 3, 3, 1, 2, 2, 9);
        let x = Tensor::rand_uniform(&[1, 2, 8, 8], -1.0, 1.0, 2);
        let fast = layer.forward(&x, false).unwrap();
        let slow = conv2d_direct(&x, layer.weight(), layer.bias(), layer.geom()).unwrap();
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut layer = Conv2d::new(2, 4, 3, 1, 1, 1, 3);
        let x = Tensor::rand_uniform(&[1, 2, 6, 6], -1.0, 1.0, 4);
        finite_diff_check(&mut layer, &x);
    }

    #[test]
    fn strided_input_gradient_matches_finite_differences() {
        let mut layer = Conv2d::new(2, 3, 3, 2, 1, 1, 5);
        let x = Tensor::rand_uniform(&[1, 2, 7, 7], -1.0, 1.0, 6);
        finite_diff_check(&mut layer, &x);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut layer = Conv2d::new(2, 2, 3, 1, 1, 1, 8);
        let x = Tensor::rand_uniform(&[1, 2, 5, 5], -1.0, 1.0, 9);
        let y = layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        let analytic = layer.weight.grad.clone();
        let eps = 1e-2f32;
        for probe in [0usize, 17, analytic.len() - 1] {
            let orig = layer.weight.value.as_slice()[probe];
            layer.weight.value.as_mut_slice()[probe] = orig + eps;
            let lp = layer.forward(&x, true).unwrap().sum();
            layer.weight.value.as_mut_slice()[probe] = orig - eps;
            let lm = layer.forward(&x, true).unwrap().sum();
            layer.weight.value.as_mut_slice()[probe] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[probe]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn bias_gradient_is_spatial_sum() {
        let mut layer = Conv2d::new(1, 2, 3, 1, 1, 1, 10);
        let x = Tensor::rand_uniform(&[2, 1, 4, 4], -1.0, 1.0, 11);
        let y = layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        // Each output position contributes gradient 1; bias sees n*oh*ow.
        assert_eq!(layer.bias.grad.as_slice(), &[32.0, 32.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Conv2d::new(1, 1, 3, 1, 1, 1, 12);
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::MissingCache { .. })
        ));
    }

    #[test]
    fn wrong_channel_count_rejected() {
        let mut layer = Conv2d::new(3, 4, 3, 1, 1, 1, 13);
        assert!(layer.forward(&Tensor::zeros(&[1, 2, 8, 8]), false).is_err());
    }
}
