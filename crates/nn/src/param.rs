//! Learnable parameters: a value tensor plus its accumulated gradient.

use c2pi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A learnable parameter: the current value and the gradient accumulated
/// by the most recent backward pass(es).
///
/// Optimizers consume `grad` and update `value`; [`Param::zero_grad`]
/// resets accumulation between steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Kaiming-He initialisation for a weight with `fan_in` inputs —
    /// the standard choice for ReLU networks like the paper's models.
    pub fn kaiming(dims: &[usize], fan_in: usize, seed: u64) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Param::new(Tensor::rand_normal(dims, 0.0, std, seed))
    }

    /// Xavier/Glorot uniform initialisation.
    pub fn xavier(dims: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Self {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        Param::new(Tensor::rand_uniform(dims, -bound, bound, seed))
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.dims());
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::full(&[3, 3], 1.0));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 9);
        assert!(!p.is_empty());
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let small_fan = Param::kaiming(&[64, 4], 4, 1);
        let large_fan = Param::kaiming(&[64, 400], 400, 1);
        let std = |t: &Tensor| {
            let m = t.mean();
            t.map(|v| (v - m) * (v - m)).mean().sqrt()
        };
        assert!(std(&small_fan.value) > std(&large_fan.value));
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::full(&[2], 5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn xavier_respects_bound() {
        let p = Param::xavier(&[100], 50, 50, 2);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(p.value.max() <= bound && p.value.min() >= -bound);
    }
}
