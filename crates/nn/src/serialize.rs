//! Checkpointing: save and load a model's parameters in a small
//! self-describing binary format (magic, version, tensor count, then
//! `rank, dims…, f32 data` per tensor, all little-endian).
//!
//! The format stores only the *state dict* — the architecture is code,
//! as in most deep-learning frameworks.

use crate::{NnError, Result, Sequential};
use c2pi_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"C2PICKPT";
const VERSION: u32 = 1;

/// Serializes a state dict to a writer.
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_state_dict<W: Write>(mut w: W, state: &[Tensor]) -> Result<()> {
    let io = |e: std::io::Error| NnError::BadConfig(format!("checkpoint write: {e}"));
    w.write_all(MAGIC).map_err(io)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io)?;
    w.write_all(&(state.len() as u64).to_le_bytes()).map_err(io)?;
    for t in state {
        w.write_all(&(t.dims().len() as u32).to_le_bytes()).map_err(io)?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes()).map_err(io)?;
        }
        for &v in t.as_slice() {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
    }
    Ok(())
}

/// Deserializes a state dict from a reader.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic/version, or a corrupt
/// layout.
pub fn read_state_dict<R: Read>(mut r: R) -> Result<Vec<Tensor>> {
    let io = |e: std::io::Error| NnError::BadConfig(format!("checkpoint read: {e}"));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    if &magic != MAGIC {
        return Err(NnError::BadConfig("not a c2pi checkpoint (bad magic)".into()));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4).map_err(io)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(NnError::BadConfig(format!("unsupported checkpoint version {version}")));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8).map_err(io)?;
    let count = u64::from_le_bytes(buf8) as usize;
    if count > 1 << 20 {
        return Err(NnError::BadConfig(format!("implausible tensor count {count}")));
    }
    let mut state = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut buf4).map_err(io)?;
        let rank = u32::from_le_bytes(buf4) as usize;
        if rank > 8 {
            return Err(NnError::BadConfig(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut buf8).map_err(io)?;
            dims.push(u64::from_le_bytes(buf8) as usize);
        }
        let volume: usize = dims.iter().product();
        if volume > 1 << 28 {
            return Err(NnError::BadConfig(format!("implausible tensor volume {volume}")));
        }
        let mut data = Vec::with_capacity(volume);
        for _ in 0..volume {
            r.read_exact(&mut buf4).map_err(io)?;
            data.push(f32::from_le_bytes(buf4));
        }
        state.push(Tensor::from_vec(data, &dims)?);
    }
    Ok(state)
}

/// Saves a network's parameters to a file.
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn save(net: &mut Sequential, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| NnError::BadConfig(format!("checkpoint create: {e}")))?;
    write_state_dict(std::io::BufWriter::new(file), &net.state_dict())
}

/// Loads parameters from a file into a network with matching
/// architecture.
///
/// # Errors
///
/// Returns an error on I/O failure or parameter-shape mismatch.
pub fn load(net: &mut Sequential, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::open(path)
        .map_err(|e| NnError::BadConfig(format!("checkpoint open: {e}")))?;
    let state = read_state_dict(std::io::BufReader::new(file))?;
    net.load_state_dict(&state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, Relu};

    fn net() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 2, 3, 1, 1, 1, 1));
        s.push(Relu::new());
        s.push(Flatten::new());
        s.push(Linear::new(2 * 4 * 4, 3, 2));
        s
    }

    #[test]
    fn round_trip_through_memory() {
        let mut a = net();
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &a.state_dict()).unwrap();
        let state = read_state_dict(buf.as_slice()).unwrap();
        let mut b = net();
        for p in b.params() {
            p.value.map_inplace(|v| v + 1.0);
        }
        b.load_state_dict(&state).unwrap();
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 3);
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("c2pi_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut a = net();
        save(&mut a, &path).unwrap();
        let mut b = net();
        for p in b.params() {
            p.value.map_inplace(|v| v * 2.0 + 0.5);
        }
        load(&mut b, &path).unwrap();
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 4);
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTACKPT\x01\x00\x00\x00".to_vec();
        assert!(read_state_dict(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut a = net();
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &a.state_dict()).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_state_dict(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_architecture_rejected_on_load() {
        let mut a = net();
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &a.state_dict()).unwrap();
        let state = read_state_dict(buf.as_slice()).unwrap();
        let mut tiny = Sequential::new();
        tiny.push(Linear::new(2, 2, 0));
        assert!(tiny.load_state_dict(&state).is_err());
    }
}
