//! The [`Layer`] trait: the unit of composition for every network in the
//! reproduction.

use crate::{Param, Result};
use c2pi_tensor::conv::Conv2dGeom;
use c2pi_tensor::Tensor;

/// A protocol-facing description of a layer: everything a private
/// inference engine needs to execute the layer under MPC (weights are
/// cloned, since the server party owns them).
#[derive(Debug, Clone)]
pub enum LayerSpec {
    /// 2-D convolution with server-held weights.
    Conv2d {
        /// Weight tensor `[oc, ic, k, k]`.
        weight: Tensor,
        /// Bias `[oc]`.
        bias: Tensor,
        /// Geometry.
        geom: Conv2dGeom,
    },
    /// Fully connected layer with server-held weights.
    Linear {
        /// Weight `[in, out]`.
        weight: Tensor,
        /// Bias `[out]`.
        bias: Tensor,
    },
    /// ReLU activation.
    Relu,
    /// Max pooling.
    MaxPool2d {
        /// Window side.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool2d {
        /// Window side.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Flatten to a feature vector.
    Flatten,
    /// Inference-time batch norm folded to a per-channel affine map.
    Affine {
        /// Per-channel scale.
        scale: Vec<f32>,
        /// Per-channel shift.
        shift: Vec<f32>,
    },
    /// A layer the PI engines cannot execute (description attached).
    Unsupported(String),
}

/// Classification of a layer, used by the PI engines to decide which MPC
/// protocol executes it and by the model zoo to assign paper-style conv
/// ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Linear operation evaluated with Beaver-triple / HE-style protocols
    /// (convolutions and fully connected layers).
    Linear,
    /// Non-linear comparison-based operation (ReLU, max pooling) requiring
    /// garbled circuits or OT in the crypto phase.
    NonLinear,
    /// Shape-only operation with no secure cost (flatten, upsample).
    Reshape,
    /// Local affine operation that folds into an adjacent linear layer
    /// (batch normalisation, average pooling).
    Affine,
}

/// A differentiable network layer.
///
/// `forward` caches whatever the corresponding `backward` needs;
/// `backward` consumes the most recent cache and returns the gradient
/// with respect to the layer input while accumulating parameter
/// gradients into [`Layer::params`].
///
/// Layers are `Send + Sync` — attack training shards batches across
/// threads, and serving shares a `&Model` between workers on the
/// immutable [`Layer::forward_eval`] path (layers hold plain data, no
/// interior mutability). Boxed layers are cloneable so models can be
/// split at a boundary without retraining.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Computes the layer output. `train` selects training behaviour
    /// (e.g. batch-norm statistics).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor>;

    /// Backpropagates `grad_out`, returning the gradient with respect to
    /// the input of the most recent `forward`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingCache`] when called before
    /// `forward`, or a tensor error on shape mismatch.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Mutable access to learnable parameters (empty for stateless
    /// layers).
    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// The protocol class of this layer.
    fn kind(&self) -> LayerKind;

    /// A short human-readable description, e.g. `conv2d(3->64, k3 s1 p1)`.
    fn describe(&self) -> String;

    /// Clones the layer behind a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Drops cached activations (frees memory between attack iterations).
    fn clear_cache(&mut self);

    /// Protocol-facing description for the PI engines. Layers without a
    /// secure execution default to [`LayerSpec::Unsupported`].
    fn spec(&self) -> LayerSpec {
        LayerSpec::Unsupported(self.describe())
    }

    /// Immutable inference-mode forward: evaluates the layer on scratch
    /// buffers without touching the backward cache. Defaults to the
    /// functional evaluation of [`Layer::spec`], so any layer with a
    /// secure execution gets the pure path for free.
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible shapes or layers without a
    /// functional description.
    fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        crate::functional::eval_spec(&self.spec(), x)
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Relu;

    #[test]
    fn boxed_layers_clone() {
        let layer: Box<dyn Layer> = Box::new(Relu::new());
        let copy = layer.clone();
        assert_eq!(copy.describe(), layer.describe());
        assert_eq!(copy.kind(), LayerKind::NonLinear);
    }
}
