//! Loss functions: value plus input gradient in one call.

use crate::{NnError, Result};
use c2pi_tensor::Tensor;

/// Mean-squared-error loss `L = mean((pred - target)²)`.
///
/// Returns `(loss, dL/dpred)`. This is the workhorse of every IDPA: MLA
/// minimises activation MSE, and the inversion attacks minimise image
/// (and distillation) MSE.
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    if pred.dims() != target.dims() {
        return Err(NnError::BadConfig(format!(
            "mse shapes differ: {:?} vs {:?}",
            pred.dims(),
            target.dims()
        )));
    }
    let n = pred.len().max(1) as f32;
    let loss = pred.mse(target)?;
    let grad = pred.sub(target)?.scale(2.0 / n);
    Ok((loss, grad))
}

/// Numerically stable row-wise softmax of a logits matrix `[n, k]`.
///
/// # Errors
///
/// Returns an error for non-rank-2 input.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let (n, k) = logits.shape().as_matrix()?;
    let mut out = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        for (j, e) in exps.iter().enumerate() {
            out.as_mut_slice()[i * k + j] = e / z;
        }
    }
    Ok(out)
}

/// Softmax cross-entropy over integer class labels.
///
/// Returns `(mean loss, dL/dlogits)` — the gradient is the standard
/// `(softmax - onehot) / n`.
///
/// # Errors
///
/// Returns an error when the label count differs from the batch size or
/// a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (n, k) = logits.shape().as_matrix()?;
    if labels.len() != n {
        return Err(NnError::BadConfig(format!("{} labels for batch of {n}", labels.len())));
    }
    let probs = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(NnError::BadConfig(format!("label {label} out of range {k}")));
        }
        let p = probs.as_slice()[i * k + label].max(1e-12);
        loss -= p.ln();
        grad.as_mut_slice()[i * k + label] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    Ok((loss * scale, grad.scale(scale)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_identical() {
        let t = Tensor::rand_uniform(&[4], -1.0, 1.0, 0);
        let (l, g) = mse(&t, &t).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(g.sq_norm(), 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let p = Tensor::rand_uniform(&[6], -1.0, 1.0, 1);
        let t = Tensor::rand_uniform(&[6], -1.0, 1.0, 2);
        let (_, g) = mse(&p, &t).unwrap();
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let numeric = (mse(&pp, &t).unwrap().0 - mse(&pm, &t).unwrap().0) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_rejects_shape_mismatch() {
        assert!(mse(&Tensor::zeros(&[3]), &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::rand_uniform(&[5, 7], -3.0, 3.0, 3);
        let p = softmax(&logits).unwrap();
        for i in 0..5 {
            let s: f32 = p.as_slice()[i * 7..(i + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.min() >= 0.0);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.map(|v| v + 100.0);
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Tensor::from_vec(vec![5.0, 0.0, 0.0], &[1, 3]).unwrap();
        let bad = Tensor::from_vec(vec![0.0, 5.0, 0.0], &[1, 3]).unwrap();
        let (lg, _) = softmax_cross_entropy(&good, &[0]).unwrap();
        let (lb, _) = softmax_cross_entropy(&bad, &[0]).unwrap();
        assert!(lg < lb);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, 4);
        let labels = [1usize, 3];
        let (_, g) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let numeric = (softmax_cross_entropy(&lp, &labels).unwrap().0
                - softmax_cross_entropy(&lm, &labels).unwrap().0)
                / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }
}
