//! Error type for network operations.

use c2pi_tensor::TensorError;
use std::fmt;

/// Error returned by fallible network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor kernel rejected its inputs.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activation).
    MissingCache {
        /// Layer whose cache was empty.
        layer: &'static str,
    },
    /// A model cut point / boundary id does not exist.
    UnknownCutPoint(String),
    /// A state dict being loaded does not match the model's parameters.
    StateDictMismatch {
        /// Number of parameter tensors the model has.
        expected: usize,
        /// Number supplied.
        found: usize,
    },
    /// Invalid configuration (e.g. zero channels).
    BadConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::MissingCache { layer } => {
                write!(f, "backward called before forward in {layer}")
            }
            NnError::UnknownCutPoint(id) => write!(f, "unknown cut point {id}"),
            NnError::StateDictMismatch { expected, found } => {
                write!(f, "state dict has {found} tensors, model expects {expected}")
            }
            NnError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::LengthMismatch { expected: 1, found: 2 });
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&NnError::MissingCache { layer: "relu" }).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
