//! Optimizers: SGD with momentum (used to train the paper's inversion
//! models) and Adam (used by MLA's input-space descent and classifier
//! training).

use crate::Param;
use c2pi_tensor::Tensor;

/// Stochastic gradient descent with classical momentum.
///
/// The paper trains EINA/DINA inversion models with SGD at learning rate
/// `0.001`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to `params` using their accumulated
    /// gradients, then leaves the gradients untouched (call `zero_grad`
    /// separately).
    ///
    /// # Panics
    ///
    /// Panics if the parameter set changes shape between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            assert_eq!(v.dims(), p.value.dims(), "parameter set changed between steps");
            for ((vi, &g), w) in v
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice().iter())
                .zip(p.value.as_mut_slice().iter_mut())
            {
                *vi = self.momentum * *vi + g;
                *w -= self.lr * *vi;
            }
        }
    }
}

/// Rescales all gradients so their global L2 norm is at most
/// `max_norm`, returning the pre-clip norm. Standard protection against
/// the exploding gradients of deep decoder training.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params.iter().map(|p| p.grad.sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad = p.grad.scale(scale);
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba) — used for MLA's 10 000-iteration
/// input-space optimisation where plain SGD converges too slowly.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam step.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set changes shape between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            assert_eq!(m.dims(), p.value.dims(), "parameter set changed between steps");
            for (((mi, vi), &g), w) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(p.grad.as_slice().iter())
                .zip(p.value.as_mut_slice().iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = (w - 3)² with each optimizer.
    fn quadratic_descent(optim: &mut dyn FnMut(&mut [&mut Param]), steps: usize) -> f32 {
        let mut p = Param::new(Tensor::zeros(&[1]));
        for _ in 0..steps {
            let w = p.value.as_slice()[0];
            p.grad = Tensor::from_vec(vec![2.0 * (w - 3.0)], &[1]).unwrap();
            optim(&mut [&mut p]);
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(&mut |ps| sgd.step(ps), 100);
        assert!((w - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut momentum = Sgd::new(0.01, 0.9);
        let w_plain = quadratic_descent(&mut |ps| plain.step(ps), 50);
        let w_mom = quadratic_descent(&mut |ps| momentum.step(ps), 50);
        assert!((w_mom - 3.0).abs() < (w_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.3);
        let w = quadratic_descent(&mut |ps| adam.step(ps), 200);
        assert!((w - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        // One coordinate gets gradients rarely; Adam should still move it.
        let mut adam = Adam::new(0.1);
        let mut p = Param::new(Tensor::zeros(&[2]));
        for t in 0..100 {
            let w = p.value.as_slice().to_vec();
            let g0 = 2.0 * (w[0] - 1.0);
            let g1 = if t % 10 == 0 { 2.0 * (w[1] - 1.0) } else { 0.0 };
            p.grad = Tensor::from_vec(vec![g0, g1], &[2]).unwrap();
            adam.step(&mut [&mut p]);
        }
        assert!((p.value.as_slice()[0] - 1.0).abs() < 0.05);
        assert!(p.value.as_slice()[1] > 0.3);
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut sgd = Sgd::new(0.0, 0.0);
        let mut p = Param::new(Tensor::zeros(&[1]));
        p.grad = Tensor::full(&[1], 1.0);
        sgd.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice()[0], 0.0); // lr 0: no movement
        sgd.set_lr(1.0);
        sgd.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice()[0], -1.0);
    }
}
