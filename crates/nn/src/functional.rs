//! Functional (immutable) layer evaluation from [`LayerSpec`]s.
//!
//! The [`crate::Layer::forward`] path takes `&mut self` because training
//! caches activations for the backward pass. Serving does not train, so
//! this module provides the pure path: evaluate a layer's
//! protocol-facing spec on an input with scratch buffers only. It backs
//! [`crate::Layer::forward_eval`], [`crate::Sequential::forward_eval`]
//! and [`crate::Model::predict`].

use crate::{LayerSpec, NnError, Result};
use c2pi_tensor::{conv::conv2d_im2col, pool, Tensor};

/// Evaluates one layer spec on `x` without mutating anything.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for shape mismatches and
/// [`NnError::BadConfig`] for [`LayerSpec::Unsupported`] layers (which
/// have no functional description).
pub fn eval_spec(spec: &LayerSpec, x: &Tensor) -> Result<Tensor> {
    match spec {
        LayerSpec::Conv2d { weight, bias, geom } => Ok(conv2d_im2col(x, weight, bias, *geom)?),
        LayerSpec::Linear { weight, bias } => {
            let (n, f) = x.shape().as_matrix()?;
            let (in_f, out_f) = weight.shape().as_matrix()?;
            if f != in_f {
                return Err(NnError::BadConfig(format!("linear expects {in_f} features, got {f}")));
            }
            let mut y = x.matmul(weight)?;
            for i in 0..n {
                for (j, v) in y.as_mut_slice()[i * out_f..(i + 1) * out_f].iter_mut().enumerate() {
                    *v += bias.as_slice()[j];
                }
            }
            Ok(y)
        }
        LayerSpec::Relu => Ok(x.map(|v| if v > 0.0 { v } else { 0.0 })),
        LayerSpec::MaxPool2d { window, stride } => {
            Ok(pool::max_pool2d(x, *window, *stride)?.output)
        }
        LayerSpec::AvgPool2d { window, stride } => Ok(pool::avg_pool2d(x, *window, *stride)?),
        LayerSpec::Flatten => {
            let (n, c, h, w) = x.shape().as_nchw()?;
            Ok(x.reshape(&[n, c * h * w])?)
        }
        LayerSpec::Affine { scale, shift } => {
            let (n, c, h, w) = x.shape().as_nchw()?;
            if scale.len() != c || shift.len() != c {
                return Err(NnError::BadConfig(format!(
                    "affine expects {} channels, got {c}",
                    scale.len()
                )));
            }
            let plane = h * w;
            let mut out = x.clone();
            let data = out.as_mut_slice();
            for b in 0..n {
                for ch in 0..c {
                    let off = (b * c + ch) * plane;
                    for v in &mut data[off..off + plane] {
                        *v = scale[ch] * *v + shift[ch];
                    }
                }
            }
            Ok(out)
        }
        LayerSpec::Unsupported(d) => {
            Err(NnError::BadConfig(format!("layer {d} has no functional evaluation")))
        }
    }
}

/// Evaluates a spec stack front to back.
///
/// # Errors
///
/// Propagates the first layer error.
pub fn eval_specs(specs: &[LayerSpec], x: &Tensor) -> Result<Tensor> {
    let mut cur = x.clone();
    for spec in specs {
        cur = eval_spec(spec, &cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use crate::{Layer, Sequential};

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn eval_matches_stateful_forward_for_all_supported_layers() {
        let mut seq = Sequential::new();
        seq.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
        seq.push(Relu::new());
        seq.push(MaxPool2d::new(2, 2));
        seq.push(Conv2d::new(3, 2, 3, 1, 1, 1, 2));
        seq.push(AvgPool2d::new(2, 2));
        seq.push(Flatten::new());
        seq.push(Linear::new(2 * 2 * 2, 5, 3));
        let x = Tensor::rand_uniform(&[2, 1, 8, 8], -1.0, 1.0, 4);
        let stateful = seq.forward(&x, false).unwrap();
        let specs: Vec<LayerSpec> = seq.layers().iter().map(|l| l.spec()).collect();
        let functional = eval_specs(&specs, &x).unwrap();
        assert_close(&stateful, &functional, 1e-5);
    }

    #[test]
    fn eval_matches_batchnorm_inference() {
        let mut bn = BatchNorm2d::new(2);
        let warm = Tensor::rand_uniform(&[4, 2, 6, 6], -1.0, 2.0, 5);
        for _ in 0..20 {
            bn.forward(&warm, true).unwrap();
            bn.clear_cache();
        }
        let x = Tensor::rand_uniform(&[1, 2, 6, 6], -1.0, 1.0, 6);
        let stateful = bn.forward(&x, false).unwrap();
        let functional = eval_spec(&bn.spec(), &x).unwrap();
        assert_close(&stateful, &functional, 1e-4);
    }

    #[test]
    fn spec_free_layers_have_forward_eval_overrides() {
        // ResidualBlock, ConvTranspose2d and UpsampleNearest have no
        // protocol-facing spec (the PI engines reject them) but still
        // support the immutable path, so clear-segment suffixes and
        // Model::predict work on generator-style models.
        use crate::layers::{ConvTranspose2d, ResidualBlock, UpsampleNearest};
        let mut seq = Sequential::new();
        seq.push(ResidualBlock::new(2, 4, 1));
        seq.push(UpsampleNearest::new(2));
        seq.push(ConvTranspose2d::new(4, 2, 2, 2, 0, 2));
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, 3);
        let stateful = seq.forward(&x, false).unwrap();
        let immutable = seq.forward_eval(&x).unwrap();
        assert_close(&stateful, &immutable, 1e-5);
    }

    #[test]
    fn unsupported_spec_is_rejected() {
        let spec = LayerSpec::Unsupported("gelu".into());
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(eval_spec(&spec, &x).is_err());
    }
}
