//! A sequential container of boxed layers with range-wise execution —
//! the substrate for splitting a model into crypto and clear segments.

use crate::{Layer, NnError, Param, Result};
use c2pi_tensor::Tensor;

/// An ordered stack of layers executed front to back.
///
/// Beyond plain `forward`/`backward`, the container supports **range
/// execution** (`forward_range`, `backward_range`): C2PI's pipeline runs
/// layers `[0, boundary]` under MPC and `(boundary, n)` in the clear, and
/// MLA backpropagates through a prefix only.
#[derive(Debug, Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownCutPoint`] if `i` is out of range.
    pub fn layer_mut(&mut self, i: usize) -> Result<&mut Box<dyn Layer>> {
        let n = self.layers.len();
        self.layers
            .get_mut(i)
            .ok_or_else(|| NnError::UnknownCutPoint(format!("layer index {i} of {n}")))
    }

    /// Full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        self.forward_range(0, self.layers.len(), x, train)
    }

    /// Runs layers `start..end` (half-open) on `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownCutPoint`] for an invalid range, or the
    /// first layer error.
    pub fn forward_range(
        &mut self,
        start: usize,
        end: usize,
        x: &Tensor,
        train: bool,
    ) -> Result<Tensor> {
        if start > end || end > self.layers.len() {
            return Err(NnError::UnknownCutPoint(format!(
                "range {start}..{end} of {}",
                self.layers.len()
            )));
        }
        let mut cur = x.clone();
        for layer in &mut self.layers[start..end] {
            cur = layer.forward(&cur, train)?;
        }
        Ok(cur)
    }

    /// Immutable inference-mode forward pass: evaluates every layer
    /// through [`Layer::forward_eval`], leaving backward caches and
    /// layer state untouched. The path serving uses.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward_eval(&self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward_eval(&cur)?;
        }
        Ok(cur)
    }

    /// Full forward pass that also returns the output of every layer
    /// (used to read distillation points and boundary activations).
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward_collect(&mut self, x: &Tensor, train: bool) -> Result<Vec<Tensor>> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train)?;
            outs.push(cur.clone());
        }
        Ok(outs)
    }

    /// Backpropagates through layers `start..end` in reverse, returning
    /// the gradient with respect to the input of layer `start`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid range or a missing cache.
    pub fn backward_range(&mut self, start: usize, end: usize, grad: &Tensor) -> Result<Tensor> {
        if start > end || end > self.layers.len() {
            return Err(NnError::UnknownCutPoint(format!(
                "range {start}..{end} of {}",
                self.layers.len()
            )));
        }
        let mut g = grad.clone();
        for layer in self.layers[start..end].iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Full backward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        self.backward_range(0, self.layers.len(), grad)
    }

    /// All learnable parameters, in layer order.
    pub fn params(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Drops all cached activations.
    pub fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    /// Snapshot of all parameter values in layer order.
    pub fn state_dict(&mut self) -> Vec<Tensor> {
        self.params().into_iter().map(|p| p.value.clone()).collect()
    }

    /// Restores parameter values from a [`Sequential::state_dict`]
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] when the tensor count or any
    /// shape differs.
    pub fn load_state_dict(&mut self, state: &[Tensor]) -> Result<()> {
        let params = self.params();
        if params.len() != state.len() {
            return Err(NnError::StateDictMismatch { expected: params.len(), found: state.len() });
        }
        for (p, s) in params.into_iter().zip(state.iter()) {
            if p.value.dims() != s.dims() {
                return Err(NnError::StateDictMismatch { expected: p.value.len(), found: s.len() });
            }
            p.value = s.clone();
        }
        Ok(())
    }

    /// One-line-per-layer architecture summary.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{i:>3}: {}", l.describe()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};

    fn tiny_net() -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::new(1, 2, 3, 1, 1, 1, 0));
        s.push(Relu::new());
        s.push(MaxPool2d::new(2, 2));
        s.push(Flatten::new());
        s.push(Linear::new(2 * 2 * 2, 3, 1));
        s
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_net();
        let x = Tensor::rand_uniform(&[2, 1, 4, 4], -1.0, 1.0, 2);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn range_split_equals_full_forward() {
        let mut net = tiny_net();
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 3);
        let full = net.forward(&x, false).unwrap();
        let mid = net.forward_range(0, 2, &x, false).unwrap();
        let rest = net.forward_range(2, 5, &mid, false).unwrap();
        assert_eq!(full, rest);
    }

    #[test]
    fn forward_collect_matches_layerwise() {
        let mut net = tiny_net();
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 4);
        let outs = net.forward_collect(&x, false).unwrap();
        assert_eq!(outs.len(), 5);
        assert_eq!(outs[4], net.forward(&x, false).unwrap());
        assert_eq!(outs[1], net.forward_range(0, 2, &x, false).unwrap());
    }

    #[test]
    fn invalid_range_rejected() {
        let mut net = tiny_net();
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(net.forward_range(3, 2, &x, false).is_err());
        assert!(net.forward_range(0, 99, &x, false).is_err());
    }

    #[test]
    fn backward_through_whole_net_returns_input_grad() {
        let mut net = tiny_net();
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 5);
        let y = net.forward(&x, true).unwrap();
        let gx = net.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn state_dict_round_trip() {
        let mut a = tiny_net();
        let mut b = tiny_net();
        // Perturb b so it differs.
        for p in b.params() {
            p.value.map_inplace(|v| v + 1.0);
        }
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 6);
        assert_ne!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
        let sd = a.state_dict();
        b.load_state_dict(&sd).unwrap();
        assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
    }

    #[test]
    fn load_state_dict_rejects_wrong_count() {
        let mut net = tiny_net();
        assert!(matches!(
            net.load_state_dict(&[Tensor::zeros(&[1])]),
            Err(NnError::StateDictMismatch { .. })
        ));
    }

    #[test]
    fn zero_grad_resets_all() {
        let mut net = tiny_net();
        let x = Tensor::rand_uniform(&[1, 1, 4, 4], -1.0, 1.0, 7);
        let y = net.forward(&x, true).unwrap();
        net.backward(&Tensor::full(y.dims(), 1.0)).unwrap();
        assert!(net.params().iter().any(|p| p.grad.sq_norm() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad.sq_norm() == 0.0));
    }

    #[test]
    fn summary_lists_layers() {
        let net = tiny_net();
        let s = net.summary();
        assert!(s.contains("conv2d"));
        assert!(s.contains("relu"));
        assert!(s.contains("linear"));
        assert_eq!(s.lines().count(), 5);
    }
}
