//! Integration tests for the silent-preprocessing subsystem: the
//! seed-compression acceptance ratio, and crash recovery through the
//! persistent `MaterialStore` — kill the pool without a drain, restart,
//! and the served outputs must be bit-for-bit what an uninterrupted run
//! produces, with exact ledger totals and no re-preprocessing.

use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
use c2pi_nn::Sequential;
use c2pi_pi::engine::specs_of;
use c2pi_pi::{PiBackend, PiConfig, PiOutcome, PiSession};
use c2pi_tensor::Tensor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tiny_prefix() -> Sequential {
    let mut s = Sequential::new();
    s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
    s.push(Relu::new());
    s.push(MaxPool2d::new(2, 2));
    s
}

fn tmp(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "c2pi-recovery-{}-{}-{name}.bin",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn reconstruct(out: &PiOutcome) -> Vec<u64> {
    c2pi_mpc::share::reconstruct(&out.client_share, &out.server_share)
}

/// Acceptance criterion: seed-compressed dealing cuts the dealt bytes
/// per Delphi inference by at least 50× versus expanded dealing.
#[test]
fn delphi_dealt_bytes_drop_50x_under_seed_compression() {
    let cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
    let mut session = PiSession::new(&specs_of(&tiny_prefix()), [1, 8, 8], cfg).unwrap();
    session.preprocess(1).unwrap();
    let ledger = session.ledger();
    assert!(ledger.seed_bytes > 0, "dealt seeds must be accounted");
    assert!(
        ledger.expanded_bytes >= 50 * ledger.seed_bytes,
        "seed compression ratio too small: {} expanded vs {} dealt",
        ledger.expanded_bytes,
        ledger.seed_bytes
    );
    // And the compact artifact really is "hundreds of bytes" territory.
    assert!(ledger.seed_bytes < 1024, "dealt artifact unexpectedly large: {}", ledger.seed_bytes);
}

/// The crash-recovery contract, end to end:
///
/// 1. an uninterrupted reference run preprocesses 4 sets and serves 4
///    inferences;
/// 2. the crash run attaches a store, preprocesses the same 4 sets,
///    serves 2, and is then dropped *without* a graceful drain (the
///    store has no flush record — exactly the kill -9 shape, since
///    records are appended eagerly);
/// 3. a fresh session warm-boots from the store: it must restore the 2
///    unconsumed sets without re-preprocessing, resume the exact
///    ledger, and serve the remaining 2 inferences bit-for-bit
///    identically to the reference.
#[test]
fn killed_pool_restarts_from_store_with_identical_outputs() {
    let cfg = PiConfig::default();
    let specs = specs_of(&tiny_prefix());
    let inputs: Vec<Tensor> =
        (0..4).map(|i| Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 90 + i)).collect();

    // 1. Uninterrupted reference.
    let reference = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
    reference.preprocess(4).unwrap();
    let want: Vec<Vec<u64>> =
        inputs.iter().map(|x| reconstruct(&reference.infer(x).unwrap())).collect();

    // 2. Crash run: preprocess 4, serve 2, die without drain.
    let path = tmp("crash");
    {
        let crashed = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
        let boot = crashed.pool().attach_store(&path).unwrap();
        assert_eq!(boot.restored, 0, "fresh store restores nothing");
        crashed.preprocess(4).unwrap();
        assert_eq!(reconstruct(&crashed.infer(&inputs[0]).unwrap()), want[0]);
        assert_eq!(reconstruct(&crashed.infer(&inputs[1]).unwrap()), want[1]);
        // Dropped here: no shutdown, no flush_store — the "kill".
    }

    // 3. Warm boot.
    let restarted = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
    let boot = restarted.pool().attach_store(&path).unwrap();
    assert_eq!(boot.restored, 2, "the two unconsumed sets come back");
    assert_eq!(boot.drawn, 4, "seed stream fast-forwarded past all drawn seeds");
    assert!(!boot.truncated_tail, "eager appends leave no torn tail on a plain drop");
    let ledger = restarted.ledger();
    assert_eq!(ledger.generated_offline, 4, "resumed, not re-preprocessed");
    assert_eq!(ledger.generated_inline, 0);
    assert_eq!(ledger.consumed, 2);
    assert_eq!(ledger.available, 2);
    assert_eq!(ledger.restored, 2);

    assert_eq!(reconstruct(&restarted.infer(&inputs[2]).unwrap()), want[2], "bit-for-bit");
    assert_eq!(reconstruct(&restarted.infer(&inputs[3]).unwrap()), want[3], "bit-for-bit");

    // No new material was ever generated after the restart, and the
    // books still sum exactly.
    let ledger = restarted.ledger();
    assert_eq!(ledger.generated_offline, 4);
    assert_eq!(ledger.generated_inline, 0, "serving after warm boot needed no inline dealing");
    assert_eq!(ledger.consumed, 4);
    assert_eq!(ledger.available, 0);
    assert_eq!(
        ledger.generated_offline + ledger.generated_inline,
        ledger.consumed + ledger.available
    );
    // The reference and recovered runs agree on the full ledger shape.
    let ref_ledger = reference.ledger();
    assert_eq!(ref_ledger.consumed, ledger.consumed);
    assert_eq!(ref_ledger.generated_offline, ledger.generated_offline);
    assert_eq!(ref_ledger.seed_bytes, ledger.seed_bytes);
    assert_eq!(ref_ledger.expanded_bytes, ledger.expanded_bytes);

    std::fs::remove_file(&path).unwrap();
}

/// A graceful drain (flush + sync) and a kill land in the same restored
/// state — the flush only adds durability, never changes the replay.
#[test]
fn graceful_flush_and_plain_drop_restore_identically() {
    let cfg = PiConfig::default();
    let specs = specs_of(&tiny_prefix());
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 123);
    let run = |flush: bool| {
        let path = tmp(if flush { "flush" } else { "drop" });
        {
            let s = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
            s.pool().attach_store(&path).unwrap();
            s.preprocess(3).unwrap();
            s.infer(&x).unwrap();
            if flush {
                s.pool().flush_store().unwrap();
            }
        }
        let s = PiSession::new(&specs, [1, 8, 8], cfg).unwrap().into_shared();
        let boot = s.pool().attach_store(&path).unwrap();
        let out = reconstruct(&s.infer(&x).unwrap());
        std::fs::remove_file(&path).unwrap();
        (boot.restored, s.ledger(), out)
    };
    let (restored_a, mut ledger_a, out_a) = run(true);
    let (restored_b, mut ledger_b, out_b) = run(false);
    assert_eq!(restored_a, 2);
    assert_eq!(restored_b, 2);
    // Generation time is wall-clock and legitimately differs; every
    // counted field must agree exactly.
    assert!(ledger_a.generation_seconds > 0.0);
    ledger_a.generation_seconds = 0.0;
    ledger_b.generation_seconds = 0.0;
    assert_eq!(ledger_a, ledger_b);
    assert_eq!(out_a, out_b);
}

/// A store written by one deployment must refuse to warm-boot another
/// (the no-cross-session-reuse guarantee).
#[test]
fn store_rejects_a_different_deployment() {
    let specs = specs_of(&tiny_prefix());
    let path = tmp("xdeploy");
    {
        let s = PiSession::new(&specs, [1, 8, 8], PiConfig::default()).unwrap().into_shared();
        s.pool().attach_store(&path).unwrap();
        s.preprocess(1).unwrap();
    }
    let other_cfg = PiConfig { backend: PiBackend::Delphi, ..Default::default() };
    let s = PiSession::new(&specs, [1, 8, 8], other_cfg).unwrap().into_shared();
    let err = s.pool().attach_store(&path).unwrap_err();
    assert!(err.to_string().contains("different deployment"), "got: {err}");
    std::fs::remove_file(&path).unwrap();
}
