//! Stress tests for the sharded material pool: N worker threads homed
//! on different shards, with the stock deliberately concentrated so the
//! work-stealing path carries most of the load.
//!
//! Three properties are pinned down exactly:
//!
//! * **ledger exactness across shards under stealing** — every shard's
//!   `generated_offline + generated_inline == consumed + available`
//!   invariant holds under its own lock, and the deployment-wide sums
//!   are exact (a steal consumes through the *victim's* pool, so
//!   nothing is lost or double-counted when takes cross shards);
//! * **bit-for-bit equivalence with the sequential path** — all shards
//!   draw from one serialized seed allocator, so the multiset of
//!   outputs a sharded concurrent run serves is identical to what an
//!   unsharded sequential session produces from the same master seed
//!   (see DESIGN.md §8);
//! * **crash recovery over segmented stores** — kill a sharded pool
//!   without a drain and a fresh pool warm-boots from the
//!   `<base>.shard<i>` segments: unconsumed sets come back without
//!   re-preprocessing and the remaining inferences are bit-for-bit what
//!   the uninterrupted reference serves.
//!
//! Inferences run over the dealt contract ([`SessionCore::serve_prepared`]
//! on caller-taken material + [`SharedPiSession::request_one`] on the
//! other end of an in-memory channel) — the exact path the `c2pi-core`
//! reactor drives in production.

use c2pi_nn::layers::{Conv2d, MaxPool2d, Relu};
use c2pi_nn::Sequential;
use c2pi_pi::engine::specs_of;
use c2pi_pi::{
    InferenceMaterial, PiConfig, PiSession, PoolTake, SessionCore, ShardedMaterialPool,
    SharedPiSession,
};
use c2pi_tensor::Tensor;
use c2pi_transport::channel_pair;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 4;
const PER_THREAD: usize = 4;
const SHARDS: usize = 3;

fn tiny_prefix() -> Sequential {
    let mut s = Sequential::new();
    s.push(Conv2d::new(1, 3, 3, 1, 1, 1, 1));
    s.push(Relu::new());
    s.push(MaxPool2d::new(2, 2));
    s
}

fn shared_session(cfg: PiConfig) -> SharedPiSession {
    PiSession::new(&specs_of(&tiny_prefix()), [1, 8, 8], cfg).unwrap().into_shared()
}

fn tmp(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "c2pi-shard-{}-{}-{name}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Serves one inference from caller-taken `material` over an in-memory
/// channel pair — the reactor's serving shape, both parties in-process —
/// and returns the reconstructed boundary activation.
fn serve_one(
    core: &SessionCore,
    client: &SharedPiSession,
    material: InferenceMaterial,
    x: &Tensor,
) -> Vec<u64> {
    let (cch, sch, _counter) = channel_pair();
    std::thread::scope(|scope| {
        let request = scope.spawn(move || client.request_one(&cch, x).unwrap().share);
        let server_share = core.serve_prepared(&sch, material).unwrap();
        let client_share = request.join().expect("client party");
        c2pi_mpc::share::reconstruct(&client_share, &server_share)
    })
}

fn take_material(pool: &ShardedMaterialPool, home: usize) -> Box<InferenceMaterial> {
    match pool.try_take(home).unwrap() {
        PoolTake::Material(m) => m,
        other => panic!("expected material, got {other:?}"),
    }
}

#[test]
fn sharded_concurrent_outputs_are_a_permutation_of_sequential() {
    let total = THREADS * PER_THREAD;
    let cfg = PiConfig::default();
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 77);

    // Sequential reference: one unsharded session, same master seed,
    // draining its pool in order.
    let sequential = shared_session(cfg);
    sequential.preprocess(total).unwrap();
    let mut want: Vec<Vec<u64>> = (0..total)
        .map(|_| {
            let out = sequential.infer(&x).unwrap();
            c2pi_mpc::share::reconstruct(&out.client_share, &out.server_share)
        })
        .collect();

    // Sharded run: the whole stock lands in shard 0, so every take by a
    // worker homed on shard 1 or 2 must steal — the worst-case stealing
    // regime, not the steady state.
    let server = shared_session(cfg);
    let core = Arc::clone(server.core());
    let pool = ShardedMaterialPool::new(Arc::clone(&core), SHARDS);
    pool.shard(0).preprocess(total).unwrap();
    let client = shared_session(cfg);

    let mut got: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|home| {
                let (pool, core, client, x) = (&pool, &core, &client, &x);
                scope.spawn(move || {
                    (0..PER_THREAD)
                        .map(|_| serve_one(core, client, *take_material(pool, home), x))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // Steal accounting: homes 1 and 2 never had stock, so each of their
    // takes crossed shards; homes 0 and 3 (≡ 0 mod 3) never did.
    assert_eq!(pool.steals(), (2 * PER_THREAD) as u64);

    // Ledger exactness, per shard and in aggregate. Steals consume
    // through the victim, so shard 0 carries every count and the
    // others stay zero.
    for (i, l) in pool.shard_ledgers().iter().enumerate() {
        assert_eq!(
            l.generated_offline + l.generated_inline,
            l.consumed + l.available,
            "shard {i} invariant"
        );
    }
    let ledger = pool.ledger();
    assert_eq!(ledger.consumed, total as u64, "every take consumed exactly one set");
    assert_eq!(ledger.generated_offline, total as u64);
    assert_eq!(ledger.generated_inline, 0, "the sharded pool never deals inline");
    assert_eq!(ledger.available, 0);
    assert_eq!(pool.shard_ledgers()[0].consumed, total as u64);
    // The dealt contract regenerates the client half inline, once per
    // request — the client's books must balance too.
    assert_eq!(client.ledger().generated_inline, total as u64);

    // Bit-for-bit: same allocator prefix, so the output multisets match.
    want.sort();
    got.sort();
    assert_eq!(want, got, "sharded outputs must be a permutation of the sequential outputs");
}

#[test]
fn killed_sharded_pool_warm_boots_from_segments_bit_for_bit() {
    let total = 6usize;
    let cfg = PiConfig::default();
    let x = Tensor::rand_uniform(&[1, 1, 8, 8], -1.0, 1.0, 123);

    // Uninterrupted reference: want[i] is the output of seed i.
    let reference = shared_session(cfg);
    reference.preprocess(total).unwrap();
    let want: Vec<Vec<u64>> = (0..total)
        .map(|_| {
            let out = reference.infer(&x).unwrap();
            c2pi_mpc::share::reconstruct(&out.client_share, &out.server_share)
        })
        .collect();

    let base = tmp("crash");
    let server = shared_session(cfg);
    let core = Arc::clone(server.core());
    let client = shared_session(cfg);

    // Crash run: attach segments, preprocess 6 (round-robin: shard 0
    // holds seeds 0/2/4, shard 1 holds 1/3/5), serve two from home 0
    // (seeds 0 and 2), die without a flush — the kill -9 shape, since
    // records are appended eagerly.
    {
        let pool = ShardedMaterialPool::new(Arc::clone(&core), 2);
        let boot = pool.attach_stores(&base).unwrap();
        assert_eq!(boot.restored, 0, "fresh segments restore nothing");
        assert!(pool.has_stores());
        pool.preprocess(total).unwrap();
        assert_eq!(pool.depths(), vec![3, 3]);
        for i in [0usize, 2] {
            assert_eq!(
                serve_one(&core, &client, *take_material(&pool, 0), &x),
                want[i],
                "crash-run output {i} bit-for-bit"
            );
        }
    }

    // Warm boot from the segments: the four unconsumed sets come back,
    // the shared seed stream fast-forwards once to the watermark, and
    // nothing is re-preprocessed.
    let pool = ShardedMaterialPool::new(Arc::clone(&core), 2);
    let boot = pool.attach_stores(&base).unwrap();
    assert_eq!(boot.restored, 4, "the four unconsumed sets come back");
    assert_eq!(boot.drawn, 6, "allocator fast-forwarded to the global watermark");
    assert!(!boot.truncated_tail, "eager appends leave no torn tail on a plain drop");
    let ledger = pool.ledger();
    assert_eq!(ledger.generated_offline, 6, "resumed, not re-preprocessed");
    assert_eq!(ledger.generated_inline, 0);
    assert_eq!(ledger.consumed, 2);
    assert_eq!(ledger.available, 4);
    assert_eq!(ledger.restored, 4);
    assert_eq!(pool.depths(), vec![1, 3], "per-segment replay restores each shard's own tail");

    // Serve the rest (stealing once shard 0 runs dry) and compare
    // multisets against the reference outputs not consumed pre-crash.
    let mut got: Vec<Vec<u64>> =
        (0..4).map(|home| serve_one(&core, &client, *take_material(&pool, home), &x)).collect();
    assert!(matches!(pool.try_take(0).unwrap(), PoolTake::Empty));
    let mut rest = vec![want[1].clone(), want[3].clone(), want[4].clone(), want[5].clone()];
    got.sort();
    rest.sort();
    assert_eq!(got, rest, "recovered outputs bit-for-bit");

    let ledger = pool.ledger();
    assert_eq!(ledger.consumed, 6);
    assert_eq!(ledger.available, 0);
    assert_eq!(
        ledger.generated_offline + ledger.generated_inline,
        ledger.consumed + ledger.available
    );

    for i in 0..2 {
        std::fs::remove_file(ShardedMaterialPool::segment_path(&base, i)).unwrap();
    }
}

#[test]
fn attach_stores_refuses_a_pool_that_already_drew_seeds() {
    let server = shared_session(PiConfig::default());
    let pool = ShardedMaterialPool::new(Arc::clone(server.core()), 2);
    pool.preprocess(1).unwrap();
    let err = pool.attach_stores(tmp("used")).unwrap_err();
    assert!(err.to_string().contains("fresh sharded pool"), "got: {err}");
}
